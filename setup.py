"""Setuptools shim for legacy editable installs (pip --no-use-pep517).

All project metadata lives in pyproject.toml; this file only exists so the
package can be installed in environments without the `wheel` package.
"""

from setuptools import setup

setup()
