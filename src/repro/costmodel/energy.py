"""Simple energy model for sub-accelerators.

The paper's objective is throughput, but M3E explicitly supports energy and
energy-delay-product objectives (Section IV-C).  This module provides the
per-access energy accounting needed for those objectives, using widely cited
relative access costs (a DRAM access is roughly two orders of magnitude more
expensive than a MAC; scratchpad accesses sit in between).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy consumed by one layer execution, split by component (joules)."""

    mac_joules: float
    sl_joules: float
    sg_joules: float
    dram_joules: float

    @property
    def total_joules(self) -> float:
        """Total energy across compute and the memory hierarchy."""
        return self.mac_joules + self.sl_joules + self.sg_joules + self.dram_joules

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every component multiplied by *factor*."""
        return EnergyBreakdown(
            mac_joules=self.mac_joules * factor,
            sl_joules=self.sl_joules * factor,
            sg_joules=self.sg_joules * factor,
            dram_joules=self.dram_joules * factor,
        )


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs (picojoules), with sensible accelerator defaults.

    The default values follow the commonly used 45 nm estimates: ~1 pJ per
    8-bit MAC, ~1-2 pJ per local scratchpad byte, ~6 pJ per global scratchpad
    byte, and ~200 pJ per DRAM byte.
    """

    mac_pj: float = 1.0
    sl_access_pj_per_byte: float = 1.5
    sg_access_pj_per_byte: float = 6.0
    dram_access_pj_per_byte: float = 200.0

    def estimate(
        self,
        macs: float,
        dram_bytes: float,
        sg_bytes_accessed: float,
        sl_bytes_accessed: float,
    ) -> EnergyBreakdown:
        """Estimate energy from event counts.

        Parameters
        ----------
        macs:
            Number of multiply-accumulate operations.
        dram_bytes:
            Bytes moved between DRAM and the accelerator.
        sg_bytes_accessed:
            Bytes read/written at the global scratchpad.
        sl_bytes_accessed:
            Bytes read/written at the PE-local scratchpads.
        """
        pj_to_j = 1e-12
        return EnergyBreakdown(
            mac_joules=macs * self.mac_pj * pj_to_j,
            sl_joules=sl_bytes_accessed * self.sl_access_pj_per_byte * pj_to_j,
            sg_joules=sg_bytes_accessed * self.sg_access_pj_per_byte * pj_to_j,
            dram_joules=dram_bytes * self.dram_access_pj_per_byte * pj_to_j,
        )
