"""Analytical accelerator cost model (MAESTRO-like substitute).

Given a DNN layer shape, a sub-accelerator hardware configuration (PE array,
buffer sizes), and a dataflow style, the model estimates:

* **no-stall latency** — cycles to run the layer assuming unlimited memory
  bandwidth,
* **required (no-stall) bandwidth** — the minimum DRAM bandwidth needed so
  the layer stays compute-bound,
* **DRAM traffic** and a simple **energy** estimate.

These are exactly the quantities MAGMA's Job Analysis Table consumes
(Section IV-D of the paper).
"""

from repro.costmodel.dataflow import DataflowStyle, Dataflow, HB_DATAFLOW, LB_DATAFLOW, get_dataflow
from repro.costmodel.maestro import CostEstimate, AnalyticalCostModel
from repro.costmodel.flexible import FlexibleArrayCostModel, best_array_shape
from repro.costmodel.energy import EnergyModel, EnergyBreakdown

__all__ = [
    "DataflowStyle",
    "Dataflow",
    "HB_DATAFLOW",
    "LB_DATAFLOW",
    "get_dataflow",
    "CostEstimate",
    "AnalyticalCostModel",
    "FlexibleArrayCostModel",
    "best_array_shape",
    "EnergyModel",
    "EnergyBreakdown",
]
