"""Flexible (configurable-shape) PE arrays — Section VI-F of the paper.

FPGAs, CGRAs, and programmable accelerators can re-shape their PE array per
layer.  The paper's strategy picks, for each layer, the array shape that
maximises utilisation by aligning the array dimensions to factors of the
layer's parallelised dimensions, evaluating the candidates with the cost
model and keeping the lowest-latency one.

:class:`FlexibleArrayCostModel` wraps :class:`AnalyticalCostModel` and applies
that per-layer shape search while keeping the total PE count fixed, so the
fixed-vs-flexible comparison of Fig. 14 is an apples-to-apples one.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.costmodel.dataflow import Dataflow, DataflowStyle, get_dataflow
from repro.costmodel.energy import EnergyModel
from repro.costmodel.maestro import AnalyticalCostModel, CostEstimate
from repro.exceptions import CostModelError
from repro.utils.units import DEFAULT_BYTES_PER_ELEMENT, DEFAULT_FREQUENCY_HZ
from repro.workloads.layers import LayerShape


def _factor_pairs(total: int) -> List[Tuple[int, int]]:
    """All (rows, cols) factorisations of *total*, rows ascending."""
    pairs: List[Tuple[int, int]] = []
    divisor = 1
    while divisor * divisor <= total:
        if total % divisor == 0:
            pairs.append((divisor, total // divisor))
            if divisor != total // divisor:
                pairs.append((total // divisor, divisor))
        divisor += 1
    return sorted(pairs)


def best_array_shape(
    layer: LayerShape,
    total_pes: int,
    dataflow: Dataflow | DataflowStyle | str,
    sg_bytes: int = 0,
    sl_bytes: int = 0,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    bytes_per_element: int = DEFAULT_BYTES_PER_ELEMENT,
    max_candidates: int = 64,
) -> Tuple[Tuple[int, int], CostEstimate]:
    """Pick the (rows, cols) shape of a *total_pes* array minimising latency.

    Implements the paper's flexible-accelerator dataflow strategy: enumerate
    the factorisations of the PE budget, evaluate each with the cost model,
    and return the lowest-latency configuration together with its estimate.
    """
    if total_pes <= 0:
        raise CostModelError(f"total_pes must be positive, got {total_pes}")
    flow = dataflow if isinstance(dataflow, Dataflow) else get_dataflow(dataflow)
    candidates = _factor_pairs(total_pes)
    if len(candidates) > max_candidates:
        # Keep the most balanced shapes; extreme aspect ratios are never
        # optimal for the dataflows we model.
        candidates = sorted(candidates, key=lambda rc: abs(rc[0] - rc[1]))[:max_candidates]

    best_shape: Optional[Tuple[int, int]] = None
    best_estimate: Optional[CostEstimate] = None
    for rows, cols in candidates:
        model = AnalyticalCostModel(
            pe_rows=rows,
            pe_cols=cols,
            dataflow=flow,
            sg_bytes=sg_bytes,
            sl_bytes=sl_bytes,
            frequency_hz=frequency_hz,
            bytes_per_element=bytes_per_element,
        )
        estimate = model.evaluate(layer)
        if best_estimate is None or estimate.no_stall_latency_cycles < best_estimate.no_stall_latency_cycles:
            best_shape = (rows, cols)
            best_estimate = estimate
    assert best_shape is not None and best_estimate is not None
    return best_shape, best_estimate


class FlexibleArrayCostModel:
    """Cost model for a sub-accelerator whose PE-array shape is configurable.

    The PE budget, scratchpad sizes, and dataflow style are fixed; the array
    aspect ratio is re-optimised per layer.  The interface mirrors
    :class:`AnalyticalCostModel.evaluate` so the Job Analyzer can use either
    interchangeably.
    """

    def __init__(
        self,
        total_pes: int,
        dataflow: Dataflow | DataflowStyle | str,
        sg_bytes: int = 0,
        sl_bytes: int = 0,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
        bytes_per_element: int = DEFAULT_BYTES_PER_ELEMENT,
        energy_model: Optional[EnergyModel] = None,
    ):
        if total_pes <= 0:
            raise CostModelError(f"total_pes must be positive, got {total_pes}")
        self.total_pes_budget = total_pes
        self.dataflow = dataflow if isinstance(dataflow, Dataflow) else get_dataflow(dataflow)
        self.sg_bytes = sg_bytes
        self.sl_bytes = sl_bytes
        self.frequency_hz = frequency_hz
        self.bytes_per_element = bytes_per_element
        self.energy_model = energy_model or EnergyModel()
        self._shape_cache: dict[LayerShape, Tuple[Tuple[int, int], CostEstimate]] = {}

    @property
    def total_pes(self) -> int:
        """Total PE budget (constant regardless of the chosen shape)."""
        return self.total_pes_budget

    def chosen_shape(self, layer: LayerShape) -> Tuple[int, int]:
        """The (rows, cols) shape the model selects for *layer*."""
        return self._evaluate_cached(layer)[0]

    def evaluate(self, layer: LayerShape) -> CostEstimate:
        """Evaluate *layer* with the per-layer optimal array shape."""
        return self._evaluate_cached(layer)[1]

    def _evaluate_cached(self, layer: LayerShape) -> Tuple[Tuple[int, int], CostEstimate]:
        if layer not in self._shape_cache:
            self._shape_cache[layer] = best_array_shape(
                layer,
                total_pes=self.total_pes_budget,
                dataflow=self.dataflow,
                sg_bytes=self.sg_bytes,
                sl_bytes=self.sl_bytes,
                frequency_hz=self.frequency_hz,
                bytes_per_element=self.bytes_per_element,
            )
        return self._shape_cache[layer]
