"""Dataflow styles for sub-accelerators.

The paper's heterogeneous platforms mix two dataflow styles (Section VI-A3):

* **HB** — a High-Bandwidth-usage style inspired by NVDLA's weight-stationary
  dataflow.  It parallelizes across the input/output *channel* dimensions,
  which makes it compute-efficient for channel-rich layers (late CNN layers,
  FC/GEMM layers) but demands a lot of DRAM bandwidth because activations
  stream through with little on-chip reuse.
* **LB** — a relatively Low-Bandwidth-usage style inspired by Eyeriss'
  row-stationary dataflow.  It parallelizes across *activation* (spatial)
  dimensions, maximising on-chip reuse (low bandwidth need) at the price of
  poor utilisation — and therefore long latency — on layers with little
  spatial extent (FC, attention, recommendation MLPs).

A :class:`Dataflow` captures which layer dimensions a style maps spatially
onto the 2-D PE array and how it re-fetches tensors from DRAM, which is all
the analytical model needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import CostModelError
from repro.workloads.layers import LayerShape, LayerType


class DataflowStyle(enum.Enum):
    """Identifier of the two dataflow styles used in the paper's evaluations."""

    HB = "HB"
    LB = "LB"


@dataclass(frozen=True)
class Dataflow:
    """A dataflow style and its spatial-mapping rules.

    Attributes
    ----------
    style:
        Which named style this is (HB or LB).
    description:
        Human-readable description for reports.
    """

    style: DataflowStyle
    description: str

    #: Upper bounds on the DRAM re-fetch multipliers for GEMM-shaped layers.
    #: A real mapper blocks the GEMM once the operands exceed the scratchpad,
    #: so the re-read traffic saturates instead of growing with the fold count.
    _MAX_INPUT_REFETCH: int = 6
    _MAX_OUTPUT_REFETCH: int = 5

    # ------------------------------------------------------------------
    # Spatial mapping
    # ------------------------------------------------------------------
    def spatial_dims(self, layer: LayerShape) -> Tuple[int, int]:
        """Sizes of the two layer dimensions mapped onto the PE array rows/cols.

        HB maps (output channels K, input channels C); LB maps (output rows Y,
        input channels C) — the latter gives Eyeriss-like behaviour where
        spatially small layers (FC) can only occupy a thin slice of the array.

        Depth-wise convolutions are special: each output channel reads only its
        own input channel, so there is no input-channel dimension to
        parallelise over.  Both styles fall back to the kernel window (R*S) on
        the second array dimension, which is why depth-wise layers utilise the
        array poorly and are comparatively memory-intensive (as the paper
        notes in Section IV-D1).
        """
        if layer.layer_type is LayerType.DEPTHWISE_CONV2D:
            window = layer.r * layer.s
            if self.style is DataflowStyle.HB:
                return layer.k, window
            return layer.y, window
        if self.style is DataflowStyle.HB:
            return layer.k, layer.c
        return layer.y, layer.c

    def mapped_pes(self, layer: LayerShape, rows: int, cols: int) -> int:
        """Number of PEs that hold useful work for *layer* on a rows x cols array."""
        if rows <= 0 or cols <= 0:
            raise CostModelError(f"PE array must be positive, got {rows}x{cols}")
        dim_row, dim_col = self.spatial_dims(layer)
        return min(dim_row, rows) * min(dim_col, cols)

    def temporal_folds(self, layer: LayerShape, rows: int, cols: int) -> int:
        """How many times the spatial tile must be replayed to cover the layer."""
        dim_row, dim_col = self.spatial_dims(layer)
        folds_row = -(-dim_row // rows)  # ceil division
        folds_col = -(-dim_col // cols)
        return folds_row * folds_col

    # ------------------------------------------------------------------
    # DRAM re-fetch behaviour
    # ------------------------------------------------------------------
    def input_refetch_factor(self, layer: LayerShape, rows: int, cols: int, sg_bytes: int,
                             bytes_per_element: int) -> float:
        """How many times input activations are read from DRAM.

        With the HB (weight-stationary) style, each pass over a new slice of
        output channels re-reads the input activations that did not stay
        resident in the (double-buffered) global scratchpad.  Convolutional
        layers tile well over their spatial dimensions, so the mapper can
        always find a tiling in which inputs are fetched once; GEMM-shaped
        layers (FC, attention, embedding projections) have no spatial
        dimension to tile over, so when both operands exceed the scratchpad
        the inputs are re-streamed once per output-channel fold.  This is the
        asymmetry that makes language and recommendation jobs far more
        bandwidth-hungry than vision jobs on the HB style (paper Fig. 7).
        The LB style keeps activations stationary, so inputs are read once.
        """
        if self.style is DataflowStyle.LB:
            return 1.0
        if layer.layer_type.is_convolutional:
            return 1.0
        input_bytes = layer.input_elements * bytes_per_element
        if sg_bytes > 0 and input_bytes <= sg_bytes / 2:
            return 1.0
        dim_row, _ = self.spatial_dims(layer)
        # The re-fetch count is bounded: beyond a handful of folds the mapper
        # can always block the GEMM so that most of the re-reads hit the
        # scratchpad instead of DRAM.
        return float(min(-(-dim_row // rows), self._MAX_INPUT_REFETCH))

    def weight_refetch_factor(self, layer: LayerShape, rows: int, cols: int, sg_bytes: int,
                              bytes_per_element: int) -> float:
        """How many times weights are read from DRAM.

        Weight-stationary HB reads weights exactly once.  The LB style keeps
        activations resident and streams weights per spatial fold — unless the
        weights fit in half the global scratchpad.
        """
        if self.style is DataflowStyle.HB:
            return 1.0
        weight_bytes = layer.weight_elements * bytes_per_element
        if sg_bytes > 0 and weight_bytes <= sg_bytes / 2:
            return 1.0
        dim_row, _ = self.spatial_dims(layer)
        return float(-(-dim_row // rows))

    def output_refetch_factor(self, layer: LayerShape, rows: int, cols: int, sg_bytes: int,
                              bytes_per_element: int) -> float:
        """How many times outputs / partial sums cross the DRAM interface.

        The HB style folds the input-channel dimension temporally across the
        array columns; for GEMM-shaped layers whose output tile (the partial
        sums being accumulated) does not fit in half the global scratchpad,
        every fold spills the partial sums out and reads them back, so the
        output traffic grows with the number of folds.  Convolutional layers
        accumulate their partial sums within a spatial tile that always fits,
        and the LB style accumulates partial sums locally by construction, so
        both write outputs exactly once.
        """
        if self.style is DataflowStyle.LB or layer.layer_type.is_convolutional:
            return 1.0
        output_bytes = layer.output_elements * bytes_per_element
        if sg_bytes > 0 and output_bytes <= sg_bytes / 2:
            return 1.0
        _, dim_col = self.spatial_dims(layer)
        folds = -(-dim_col // cols)
        # Each extra fold writes the partial sums out and reads them back,
        # bounded by the same blocking argument as the input re-fetch.
        return float(min(2 * folds - 1, self._MAX_OUTPUT_REFETCH))

    def compute_efficiency(self, layer: LayerShape) -> float:
        """Per-style multiplier on effective MAC throughput.

        Captures second-order effects the spatial mapping alone misses: the LB
        style pays extra cycles orchestrating partial-sum reduction for layers
        with no spatial reuse to exploit (FC-like layers), which is why the
        paper's Fig. 7 shows such a large latency gap for language and
        recommendation models on LB.
        """
        if self.style is DataflowStyle.HB:
            return 1.0
        if layer.layer_type.is_convolutional:
            return 0.85
        # FC / attention / embedding on a row-stationary array: poor fit.
        return 0.25


HB_DATAFLOW = Dataflow(
    style=DataflowStyle.HB,
    description="NVDLA-inspired weight-stationary, channel-parallel (high bandwidth usage)",
)

LB_DATAFLOW = Dataflow(
    style=DataflowStyle.LB,
    description="Eyeriss-inspired row-stationary, activation-parallel (low bandwidth usage)",
)

_DATAFLOWS = {DataflowStyle.HB: HB_DATAFLOW, DataflowStyle.LB: LB_DATAFLOW}


def get_dataflow(style: DataflowStyle | str) -> Dataflow:
    """Look up a dataflow by :class:`DataflowStyle` or its string name."""
    if isinstance(style, str):
        try:
            style = DataflowStyle(style.upper())
        except ValueError as exc:
            raise CostModelError(f"unknown dataflow style {style!r}; expected 'HB' or 'LB'") from exc
    return _DATAFLOWS[style]
