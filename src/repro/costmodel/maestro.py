"""Analytical, tile-based cost model for a single sub-accelerator.

This module plays the role MAESTRO plays in the paper: given a layer shape,
the sub-accelerator's hardware resources, and a dataflow, it produces the two
scalars the scheduler consumes (no-stall latency and required bandwidth) plus
traffic and energy estimates for reporting.

The model is intentionally analytical rather than cycle-accurate: the global
mapping problem only depends on the *relative* latency/bandwidth profile of
each (job, sub-accelerator) pair, which this model reproduces (see Fig. 7 of
the paper and `benchmarks/test_fig07_job_analysis.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.costmodel.dataflow import Dataflow, DataflowStyle, get_dataflow
from repro.costmodel.energy import EnergyBreakdown, EnergyModel
from repro.exceptions import CostModelError
from repro.utils.units import (
    BYTES_PER_GB,
    DEFAULT_BYTES_PER_ELEMENT,
    DEFAULT_FREQUENCY_HZ,
)
from repro.workloads.layers import LayerShape


@dataclass(frozen=True)
class CostEstimate:
    """Result of evaluating one layer on one sub-accelerator configuration.

    Attributes
    ----------
    no_stall_latency_cycles:
        Cycles to execute the layer assuming memory never stalls the array.
    required_bw_gbps:
        Minimum DRAM/host bandwidth (GB/s) for the layer to remain
        compute-bound at that latency (the paper's "no-stall bandwidth").
    dram_traffic_bytes:
        Total bytes moved between DRAM and the sub-accelerator.
    utilized_pes:
        Number of PEs holding useful work in the steady state.
    total_pes:
        Size of the PE array.
    energy:
        Energy breakdown estimate (compute + memory hierarchy).
    """

    no_stall_latency_cycles: float
    required_bw_gbps: float
    dram_traffic_bytes: float
    utilized_pes: int
    total_pes: int
    energy: EnergyBreakdown

    @property
    def utilization(self) -> float:
        """Fraction of the PE array doing useful work."""
        if self.total_pes == 0:
            return 0.0
        return self.utilized_pes / self.total_pes

    @property
    def energy_joules(self) -> float:
        """Total energy of the layer execution."""
        return self.energy.total_joules


class AnalyticalCostModel:
    """MAESTRO-like analytical model for one sub-accelerator configuration.

    Parameters
    ----------
    pe_rows, pe_cols:
        Dimensions of the 2-D PE array.
    dataflow:
        Dataflow style (``"HB"``/``"LB"`` or a :class:`Dataflow`).
    sg_bytes:
        Capacity of the shared global scratchpad (double-buffered).
    sl_bytes:
        Capacity of each PE's local scratchpad.  Used for validation and the
        energy model's reuse accounting.
    frequency_hz:
        Clock frequency (paper default: 200 MHz).
    bytes_per_element:
        Operand width (paper default: 1 byte).
    """

    #: Default number of same-layer mini-batch jobs that share one weight fetch.
    #: The paper targets batched-job workloads where hundreds of mini-batches of
    #: the same model are queued (Section III); a deployment that keeps a
    #: layer's weights resident across consecutive same-layer jobs can raise
    #: this above 1 to amortise the weight traffic.  The default of 1 charges
    #: every job its full weight traffic (the conservative assumption).
    DEFAULT_WEIGHT_REUSE_JOBS: float = 1.0

    def __init__(
        self,
        pe_rows: int,
        pe_cols: int,
        dataflow: Dataflow | DataflowStyle | str,
        sg_bytes: int = 0,
        sl_bytes: int = 0,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
        bytes_per_element: int = DEFAULT_BYTES_PER_ELEMENT,
        energy_model: Optional[EnergyModel] = None,
        weight_reuse_jobs: Optional[float] = None,
    ):
        if pe_rows <= 0 or pe_cols <= 0:
            raise CostModelError(f"PE array dimensions must be positive, got {pe_rows}x{pe_cols}")
        if sg_bytes < 0 or sl_bytes < 0:
            raise CostModelError("buffer sizes must be non-negative")
        if frequency_hz <= 0:
            raise CostModelError(f"frequency must be positive, got {frequency_hz}")
        if bytes_per_element <= 0:
            raise CostModelError(f"bytes_per_element must be positive, got {bytes_per_element}")
        self.pe_rows = pe_rows
        self.pe_cols = pe_cols
        self.dataflow = dataflow if isinstance(dataflow, Dataflow) else get_dataflow(dataflow)
        self.sg_bytes = sg_bytes
        self.sl_bytes = sl_bytes
        self.frequency_hz = frequency_hz
        self.bytes_per_element = bytes_per_element
        self.energy_model = energy_model or EnergyModel()
        if weight_reuse_jobs is None:
            weight_reuse_jobs = self.DEFAULT_WEIGHT_REUSE_JOBS
        if weight_reuse_jobs < 1:
            raise CostModelError(
                f"weight_reuse_jobs must be at least 1, got {weight_reuse_jobs}"
            )
        self.weight_reuse_jobs = float(weight_reuse_jobs)

    # ------------------------------------------------------------------
    @property
    def total_pes(self) -> int:
        """Total number of processing elements in the array."""
        return self.pe_rows * self.pe_cols

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnalyticalCostModel({self.pe_rows}x{self.pe_cols}, "
            f"{self.dataflow.style.value}, SG={self.sg_bytes}B)"
        )

    # ------------------------------------------------------------------
    def evaluate(self, layer: LayerShape) -> CostEstimate:
        """Estimate latency, bandwidth, traffic and energy for *layer*."""
        latency = self._no_stall_latency(layer)
        traffic = self._dram_traffic_bytes(layer)
        bw_gbps = self._required_bandwidth_gbps(traffic, latency)
        utilized = self.dataflow.mapped_pes(layer, self.pe_rows, self.pe_cols)
        energy = self.energy_model.estimate(
            macs=layer.macs,
            dram_bytes=traffic,
            sg_bytes_accessed=layer.total_elements * self.bytes_per_element,
            sl_bytes_accessed=2.0 * layer.macs * self.bytes_per_element,
        )
        return CostEstimate(
            no_stall_latency_cycles=latency,
            required_bw_gbps=bw_gbps,
            dram_traffic_bytes=traffic,
            utilized_pes=utilized,
            total_pes=self.total_pes,
            energy=energy,
        )

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    def _no_stall_latency(self, layer: LayerShape) -> float:
        """Cycles to execute *layer* with unlimited memory bandwidth.

        The spatially mapped dimensions run in parallel on the PE array; the
        remaining loop volume is executed temporally.  A per-style compute
        efficiency factor models reduction/orchestration overheads.
        """
        mapped = self.dataflow.mapped_pes(layer, self.pe_rows, self.pe_cols)
        if mapped <= 0:
            raise CostModelError(f"layer {layer.describe()} maps to zero PEs")
        efficiency = self.dataflow.compute_efficiency(layer)
        ideal_cycles = layer.macs / (mapped * efficiency)
        # Pipeline fill/drain and tile-switch overhead: one array pass per
        # temporal fold costs a handful of extra cycles.
        folds = self.dataflow.temporal_folds(layer, self.pe_rows, self.pe_cols)
        overhead_cycles = 8.0 * folds
        return max(1.0, ideal_cycles + overhead_cycles)

    # ------------------------------------------------------------------
    # Traffic and bandwidth
    # ------------------------------------------------------------------
    def _dram_traffic_bytes(self, layer: LayerShape) -> float:
        """Bytes moved between DRAM/host memory and the sub-accelerator."""
        b = self.bytes_per_element
        input_refetch = self.dataflow.input_refetch_factor(
            layer, self.pe_rows, self.pe_cols, self.sg_bytes, b
        )
        weight_refetch = self.dataflow.weight_refetch_factor(
            layer, self.pe_rows, self.pe_cols, self.sg_bytes, b
        )
        output_refetch = self.dataflow.output_refetch_factor(
            layer, self.pe_rows, self.pe_cols, self.sg_bytes, b
        )
        input_bytes = layer.input_elements * b * input_refetch
        # Weights are amortised across the same-layer mini-batch jobs of the
        # batched-job workload (see DEFAULT_WEIGHT_REUSE_JOBS).
        weight_bytes = layer.weight_elements * b * weight_refetch / self.weight_reuse_jobs
        output_bytes = layer.output_elements * b * output_refetch
        return input_bytes + weight_bytes + output_bytes

    def _required_bandwidth_gbps(self, traffic_bytes: float, latency_cycles: float) -> float:
        """Bandwidth needed to stream *traffic_bytes* within the compute time."""
        if latency_cycles <= 0:
            raise CostModelError("latency must be positive to derive bandwidth")
        seconds = latency_cycles / self.frequency_hz
        return traffic_bytes / seconds / BYTES_PER_GB

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    def latency_with_bandwidth(self, layer: LayerShape, available_bw_gbps: float) -> float:
        """Actual latency (cycles) when only *available_bw_gbps* is granted.

        If the granted bandwidth is below the layer's no-stall requirement,
        execution becomes memory-bound and the latency scales with the
        bandwidth deficit — the same relationship Algorithm 1 (the BW
        allocator) uses at the schedule level.
        """
        if available_bw_gbps <= 0:
            raise CostModelError(f"available bandwidth must be positive, got {available_bw_gbps}")
        estimate = self.evaluate(layer)
        if available_bw_gbps >= estimate.required_bw_gbps:
            return estimate.no_stall_latency_cycles
        slowdown = estimate.required_bw_gbps / available_bw_gbps
        return estimate.no_stall_latency_cycles * slowdown

    def roofline_attainable_flops(self, layer: LayerShape, available_bw_gbps: float) -> float:
        """Attainable FLOP/s under the classic roofline bound for this layer."""
        peak_flops = 2.0 * self.total_pes * self.frequency_hz
        intensity = layer.flops / max(1.0, self._dram_traffic_bytes(layer))
        bandwidth_bound = intensity * available_bw_gbps * BYTES_PER_GB
        return min(peak_flops, bandwidth_bound)
