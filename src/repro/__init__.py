"""repro — a reproduction of MAGMA (HPCA 2022).

The package implements the M3E optimization framework for mapping multiple
DNNs onto multi-core accelerators, the MAGMA genetic algorithm, the baseline
optimizers and manual mappers the paper compares against, and the substrates
they need (DNN model zoo, analytical cost model, bandwidth-allocation
simulator).

Quickstart
----------
>>> from repro import M3E, build_setting, build_task_workload, TaskType
>>> platform = build_setting("S2", system_bandwidth_gbps=16)
>>> group = build_task_workload(TaskType.MIX, group_size=20, seed=0,
...                             num_sub_accelerators=platform.num_sub_accelerators)[0]
>>> explorer = M3E(platform, sampling_budget=500)
>>> result = explorer.search(group, optimizer="magma", seed=0)
>>> result.throughput_gflops > 0
True
"""

from repro.version import __version__
from repro.exceptions import (
    ReproError,
    ConfigurationError,
    WorkloadError,
    CostModelError,
    EncodingError,
    SchedulingError,
    OptimizationError,
    ExperimentError,
    ServiceError,
)
from repro.workloads import (
    TaskType,
    WorkloadSpec,
    BenchmarkBuilder,
    build_task_workload,
    Job,
    JobBatch,
    JobGroup,
    partition_into_groups,
    get_model,
    list_models,
)
from repro.accelerator import (
    SubAcceleratorConfig,
    AcceleratorPlatform,
    build_setting,
    list_settings,
)
from repro.costmodel import AnalyticalCostModel, FlexibleArrayCostModel, DataflowStyle
from repro.core import (
    M3E,
    SearchResult,
    Mapping,
    MappingCodec,
    JobAnalyzer,
    JobAnalysisTable,
    BandwidthAllocator,
    Schedule,
    MappingEvaluator,
    get_objective,
)

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "WorkloadError",
    "CostModelError",
    "EncodingError",
    "SchedulingError",
    "OptimizationError",
    "ExperimentError",
    "ServiceError",
    # workloads
    "TaskType",
    "WorkloadSpec",
    "BenchmarkBuilder",
    "build_task_workload",
    "Job",
    "JobBatch",
    "JobGroup",
    "partition_into_groups",
    "get_model",
    "list_models",
    # accelerator
    "SubAcceleratorConfig",
    "AcceleratorPlatform",
    "build_setting",
    "list_settings",
    # cost model
    "AnalyticalCostModel",
    "FlexibleArrayCostModel",
    "DataflowStyle",
    # core
    "M3E",
    "SearchResult",
    "Mapping",
    "MappingCodec",
    "JobAnalyzer",
    "JobAnalysisTable",
    "BandwidthAllocator",
    "Schedule",
    "MappingEvaluator",
    "get_objective",
]
