"""Pluggable store backends: one protocol, three transports, one URL grammar.

Every durable store in the system — the mapping service's
:class:`~repro.service.store.SolutionStore`, the campaign engine's
:class:`~repro.experiments.campaign.CampaignResultsStore`, and the
:class:`~repro.service.warmlib.WarmStartLibrary` — persists JSON records
keyed by a deterministic content fingerprint (or task key) and resolves
duplicates by *fitness* so a store only ever improves.  Historically all
three were hard-wired to one implementation, the single-host append-only
JSONL file, which is why ``repro-magma serve`` could not run as N replicas
behind a load balancer: no two replicas could share a store.

This module extracts the storage contract those stores actually rely on into
:class:`StoreBackend` and addresses backends by URL:

================  ====================================  =========================
URL               backend                               sharing model
================  ====================================  =========================
``jsonl:PATH``    append-only JSONL file (the default;  one process (in-process
(or a bare path)  byte-compatible with every store      thread-safe appends)
                  file written before this existed)
``sqlite:PATH``   SQLite database in WAL mode           N processes on one host
                                                        (concurrent local
                                                        replicas)
``tcp://H:P``     network store client speaking the     N processes on N hosts
                  token-authenticated frame protocol    (``repro-magma store
                  of :mod:`repro.core.rpc`              serve`` is the server)
================  ====================================  =========================

The protocol is deliberately small — append one record, iterate records in
append order, scan fingerprints cheaply, repair torn writes, resolve
best-fitness duplicates, compact — because that is everything the three
stores (and campaign ``--resume``) have ever needed.  Records are JSON-safe
dicts on every transport; the network backend never pickles anything.

Compaction (:class:`CompactionPolicy`) bounds a store that append-only
semantics would otherwise grow forever: keep only the best record per
fingerprint, and/or only the newest N records / newest ``max_bytes`` bytes.
"Age" is append order, never wall-clock — store records must stay
byte-identical across resumed runs (docs/DETERMINISM.md), so no timestamp
ever lands in one.
"""

from __future__ import annotations

import json
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ConfigurationError
from repro.obs.metrics import Counter, get_metrics

#: URL schemes understood by :func:`parse_store_url`.
STORE_SCHEMES: Tuple[str, ...] = ("jsonl", "sqlite", "tcp")

#: Store operations counted in ``repro_store_ops_total{backend,op}``.
_STORE_OPS: Tuple[str, ...] = (
    "append", "scan", "lookup", "repair", "compact", "truncate",
)


# ----------------------------------------------------------------------
# URL grammar
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreUrl:
    """A parsed store address (see :func:`parse_store_url` for the grammar)."""

    kind: str
    path: str = ""
    host: str = ""
    port: int = 0
    token: Optional[str] = None

    def render(self) -> str:
        """The canonical URL string for this address (token elided)."""
        if self.kind == "tcp":
            return f"tcp://{self.host}:{self.port}"
        return f"{self.kind}:{self.path}"


def parse_store_url(spec: str) -> StoreUrl:
    """Parse one store address into a :class:`StoreUrl`.

    Grammar (the single parser behind ``--store``, ``--warm-store`` and
    ``--out`` everywhere):

    * ``jsonl:PATH`` — append-only JSONL file at ``PATH``.
    * ``sqlite:PATH`` — SQLite (WAL) database at ``PATH``.
    * ``tcp://HOST:PORT[?token=SECRET]`` — a running network store server
      (``repro-magma store serve``); with no ``token`` the client falls back
      to ``$REPRO_RPC_TOKEN``.
    * anything else — a bare filesystem path, meaning ``jsonl:`` (so every
      pre-existing path keeps working unchanged).

    Unknown *explicit* schemes fail loudly: a typo'd ``sqlit:db`` must not be
    silently treated as a weirdly named JSONL file.
    """
    spec = str(spec)
    if not spec:
        raise ConfigurationError("empty store URL")
    if spec.startswith("tcp://"):
        parts = urlsplit(spec)
        if not parts.hostname or parts.port is None:
            raise ConfigurationError(
                f"network store URL {spec!r} is not of the form tcp://HOST:PORT[?token=...]"
            )
        token_values = parse_qs(parts.query).get("token")
        return StoreUrl(
            kind="tcp",
            host=parts.hostname,
            port=int(parts.port),
            token=token_values[0] if token_values else None,
        )
    scheme, sep, rest = spec.partition(":")
    if sep and scheme in ("jsonl", "sqlite"):
        # Tolerate the optional URL-style double slash (``sqlite://db`` and
        # ``sqlite:db`` address the same file) but keep absolute paths: the
        # third slash of ``sqlite:///x.db`` is the path root.
        if rest.startswith("//"):
            rest = rest[2:]
        if not rest:
            raise ConfigurationError(f"store URL {spec!r} names no path")
        return StoreUrl(kind=scheme, path=rest)
    if sep and scheme.isalpha() and len(scheme) > 1 and "/" not in scheme and "\\" not in scheme:
        raise ConfigurationError(
            f"unknown store scheme {scheme!r} in {spec!r}; "
            f"available: {', '.join(STORE_SCHEMES)} (a bare path means jsonl:)"
        )
    return StoreUrl(kind="jsonl", path=spec)


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompactionPolicy:
    """How to bound an append-only store.

    ``keep_best_per_fingerprint`` keeps only the best-fitness record per
    ``key`` value (ties keep the earliest record, matching lookup
    semantics); records without the key are always kept.  ``max_records``
    then keeps only the newest N survivors, and ``max_bytes`` drops the
    oldest survivors until the rendered JSONL size fits.  "Newest" is append
    order — records carry no timestamps by design.
    """

    keep_best_per_fingerprint: bool = True
    max_records: Optional[int] = None
    max_bytes: Optional[int] = None
    key: str = "fingerprint"

    def __post_init__(self) -> None:
        if self.max_records is not None and self.max_records < 0:
            raise ConfigurationError(f"max_records must be >= 0, got {self.max_records}")
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ConfigurationError(f"max_bytes must be >= 0, got {self.max_bytes}")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompactionPolicy":
        """Rebuild a policy from its JSON form (the network store op payload)."""
        known = {"keep_best_per_fingerprint", "max_records", "max_bytes", "key"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown compaction policy fields: {sorted(unknown)}")
        return cls(**data)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (sent to the network store server)."""
        return {
            "keep_best_per_fingerprint": self.keep_best_per_fingerprint,
            "max_records": self.max_records,
            "max_bytes": self.max_bytes,
            "key": self.key,
        }

    def survivors(self, records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """The records (in append order) this policy keeps.

        Deterministic and idempotent: compacting an already-compacted store
        keeps every record.
        """
        kept = list(records)
        if self.keep_best_per_fingerprint:
            best: Dict[str, int] = {}
            for index, record in enumerate(kept):
                value = record.get(self.key)
                if value is None:
                    continue
                current = best.get(str(value))
                if current is None or record_fitness(record) > record_fitness(kept[current]):
                    best[str(value)] = index
            winners = set(best.values())
            kept = [
                record
                for index, record in enumerate(kept)
                if record.get(self.key) is None or index in winners
            ]
        if self.max_records is not None and len(kept) > self.max_records:
            kept = kept[len(kept) - self.max_records:]
        if self.max_bytes is not None:
            sizes = [len(render_record(record).encode("utf-8")) + 1 for record in kept]
            total = sum(sizes)
            drop = 0
            while drop < len(kept) and total > self.max_bytes:
                total -= sizes[drop]
                drop += 1
            kept = kept[drop:]
        return kept


def record_fitness(record: Dict[str, Any]) -> float:
    """The fitness duplicate resolution ranks a record by (``-inf`` if absent).

    Solution/campaign records carry it at ``result.best_fitness``; warm-start
    records carry a top-level ``fitness``.
    """
    result = record.get("result")
    if isinstance(result, dict):
        try:
            return float(result["best_fitness"])
        except (KeyError, TypeError, ValueError):
            return float("-inf")
    try:
        return float(record["fitness"])
    except (KeyError, TypeError, ValueError):
        return float("-inf")


def render_record(record: Dict[str, Any]) -> str:
    """The canonical single-line JSON form every backend stores records in.

    Sorted keys and no trailing whitespace, exactly what
    :func:`repro.utils.serialization.dump_jsonl_line` writes — the SQLite and
    network backends round-trip through this same rendering so a store
    migrated between backends stays byte-identical record for record.
    """
    return json.dumps(record, sort_keys=True)


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------
class StoreBackend(ABC):
    """Contract every store transport implements.

    Records are JSON-safe dicts.  Append order is the only order; a record's
    identity is its top-level ``"fingerprint"`` (stores that key on something
    else, like the warm library's ``task_key``, simply have fingerprint-less
    records).  Duplicate fingerprints are legal — readers resolve them by
    :func:`record_fitness`, ties keeping the earliest record.
    """

    #: Short backend discriminator (``"jsonl"``, ``"sqlite"``, ``"tcp"``).
    kind: str = "abstract"
    #: True when several replicas (processes) can safely share this backend.
    shared: bool = False

    def __init__(self) -> None:
        registry = get_metrics()
        self._op_counters: Dict[str, Counter] = {
            op: registry.counter(
                "repro_store_ops_total",
                "Store-backend operations, by backend kind and operation.",
                labels={"backend": self.kind, "op": op},
            )
            for op in _STORE_OPS
        }

    def _count_op(self, op: str, amount: int = 1) -> None:
        counter = self._op_counters.get(op)
        if counter is not None:
            counter.inc(amount)

    # ------------------------------------------------------------------
    # Abstract surface
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def url(self) -> str:
        """Canonical URL of this backend (``kind:path`` or ``tcp://host:port``)."""

    @abstractmethod
    def append_record(self, record: Dict[str, Any]) -> None:
        """Durably append one record (atomic: readers never see a torn record)."""

    @abstractmethod
    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Yield every record in append order (an empty store yields nothing)."""

    @abstractmethod
    def fingerprints(self) -> Set[str]:
        """Fingerprints of every durably stored record (cheaper than a full parse)."""

    @abstractmethod
    def repair(self) -> int:
        """Drop any partially written state; return the number of intact records.

        Idempotent, and a no-op on healthy stores.
        """

    @abstractmethod
    def truncate(self) -> None:
        """Delete every record (the store itself remains usable)."""

    @abstractmethod
    def _replace_records(self, records: List[Dict[str, Any]]) -> None:
        """Atomically replace the whole record stream (compaction commit)."""

    @abstractmethod
    def close(self) -> None:
        """Release OS resources (idempotent; a closed backend must not be used)."""

    # ------------------------------------------------------------------
    # Shared behaviour
    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """All records, in append order."""
        return list(self.iter_records())

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())

    def lookup(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The best-fitness record for *fingerprint* (ties earliest), or ``None``."""
        self._count_op("lookup")
        best: Optional[Dict[str, Any]] = None
        for record in self.iter_records():
            if record.get("fingerprint") != fingerprint:
                continue
            if best is None or record_fitness(record) > record_fitness(best):
                best = record
        return best

    def best_records(self, key: str = "fingerprint") -> Dict[str, Dict[str, Any]]:
        """The best-fitness record per *key* value, in one pass (ties earliest)."""
        self._count_op("scan")
        best: Dict[str, Dict[str, Any]] = {}
        for record in self.iter_records():
            value = record.get(key)
            if not value:
                continue
            current = best.get(str(value))
            if current is None or record_fitness(record) > record_fitness(current):
                best[str(value)] = record
        return best

    def compact(self, policy: Optional[CompactionPolicy] = None) -> Tuple[int, int]:
        """Apply *policy* (default: keep best per fingerprint); ``(kept, dropped)``.

        Deterministic and idempotent: survivors keep their append order, so
        compacting twice drops nothing the second time.
        """
        policy = policy if policy is not None else CompactionPolicy()
        before = self.records()
        kept = policy.survivors(before)
        if len(kept) != len(before):
            self._replace_records(kept)
        self._count_op("compact")
        return len(kept), len(before) - len(kept)

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary (``repro-magma store info``)."""
        records = self.records()
        fingerprints = {
            str(record["fingerprint"])
            for record in records
            if record.get("fingerprint") is not None
        }
        return {
            "url": self.url,
            "kind": self.kind,
            "shared": self.shared,
            "records": len(records),
            "fingerprints": len(fingerprints),
        }

    def __enter__(self) -> "StoreBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
def open_store_backend(spec: "str | StoreUrl | StoreBackend") -> StoreBackend:
    """Open the backend a store address names.

    Accepts an already-open backend (returned as-is — the caller keeps
    ownership), a parsed :class:`StoreUrl`, or any string
    :func:`parse_store_url` understands.
    """
    if isinstance(spec, StoreBackend):
        return spec
    url = spec if isinstance(spec, StoreUrl) else parse_store_url(spec)
    if url.kind == "jsonl":
        from repro.utils.jsonl_store import AppendOnlyJsonlStore

        return AppendOnlyJsonlStore(url.path)
    if url.kind == "sqlite":
        from repro.utils.sqlite_store import SqliteStoreBackend

        return SqliteStoreBackend(url.path)
    if url.kind == "tcp":
        # The network client lives in the service layer (it rides the RPC
        # framing); imported lazily so plain file-backed stores never pay
        # for the socket machinery.
        from repro.service.netstore import NetworkStoreBackend

        return NetworkStoreBackend(url.host, url.port, token=url.token)
    raise ConfigurationError(f"unknown store backend kind {url.kind!r}")


class BackedStore:
    """Composition base for domain stores over any :class:`StoreBackend`.

    The domain stores (solution store, campaign results store, warm-start
    library) define *record schemas*; this base gives them the transport:
    construct from an open backend, a parsed :class:`StoreUrl`, or any URL
    string / bare path, and delegate the protocol surface.  A store opened
    from a URL owns its backend and closes it; a store handed an already
    open backend leaves ownership with the caller.
    """

    def __init__(self, backend: "str | StoreUrl | StoreBackend") -> None:
        self._owns_backend = not isinstance(backend, StoreBackend)
        self._backend = open_store_backend(backend)

    @property
    def backend(self) -> StoreBackend:
        """The transport this store persists through."""
        return self._backend

    @property
    def url(self) -> str:
        return self._backend.url

    @property
    def kind(self) -> str:
        return self._backend.kind

    @property
    def shared(self) -> bool:
        """True when several replicas can safely share this store."""
        return self._backend.shared

    @property
    def path(self) -> str:
        """Filesystem path for file-backed stores; the URL otherwise.

        Kept for compatibility: callers (and tests) of the historically
        JSONL-only stores open ``store.path`` directly.
        """
        return str(getattr(self._backend, "path", self._backend.url))

    # Delegated protocol surface -------------------------------------
    def append_record(self, record: Dict[str, Any]) -> None:
        self._backend.append_record(record)

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        return self._backend.iter_records()

    def records(self) -> List[Dict[str, Any]]:
        return self._backend.records()

    def fingerprints(self) -> Set[str]:
        return self._backend.fingerprints()

    def repair(self) -> int:
        return self._backend.repair()

    def truncate(self) -> None:
        self._backend.truncate()

    def compact(self, policy: Optional[CompactionPolicy] = None) -> Tuple[int, int]:
        return self._backend.compact(policy)

    def __len__(self) -> int:
        return len(self._backend)

    def close(self) -> None:
        """Close the backend if this store opened it (idempotent)."""
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "BackedStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = [
    "BackedStore",
    "CompactionPolicy",
    "STORE_SCHEMES",
    "StoreBackend",
    "StoreUrl",
    "open_store_backend",
    "parse_store_url",
    "record_fitness",
    "render_record",
]
