"""JSON serialization helpers shared by the CLI and the campaign engine.

Experiment runners return plain-ish data structures that still contain NumPy
arrays, enums, dataclasses (convergence curves, Gantt entries), and full
:class:`~repro.core.framework.SearchResult` objects.  :func:`jsonable`
converts any of those into JSON-safe values with explicit, type-directed
rules (the previous CLI-private helper fell back to ``vars(obj)``, which
broke on ``__slots__`` classes and serialized enums as their internal
member ``__dict__``).

:class:`SearchResultSummary` is the durable subset of a search result — the
record the campaign results store writes one JSONL line per cell from — with
a proper dump/load round trip.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # runtime import stays deferred: core.framework imports utils
    from repro.core.framework import SearchResult


def payload_fingerprint(payload: Dict[str, Any]) -> str:
    """Deterministic content fingerprint of a JSON-safe payload.

    Canonical JSON (sorted keys, no whitespace) hashed with SHA-256 and
    truncated to 32 hex characters — the identity scheme shared by campaign
    search cells and mapping-service requests, so equal work is recognised
    across processes and store files.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def jsonable(value: Any) -> Any:
    """Convert *value* into JSON-safe data (dicts/lists/strings/numbers).

    Handles nested containers, NumPy arrays and scalars, enums (by value),
    dataclasses (by field), :class:`SearchResult` (via
    :class:`SearchResultSummary`), and objects exposing ``to_dict()``.
    Anything unrecognised is rendered with ``str`` rather than guessed at.
    """
    # Imported here: core.framework imports utils transitively.
    from repro.core.framework import SearchResult

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return jsonable(value.value)
    if isinstance(value, dict):
        return {_key(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, SearchResult):
        return SearchResultSummary.from_result(value).to_dict()
    if isinstance(value, SearchResultSummary):
        # Route through to_dict() so the telemetry-exclusion default applies;
        # the generic dataclass branch below would leak the diagnostic block.
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return jsonable(to_dict())
    return str(value)


def _key(key: Any) -> str:
    """Render a dict key for JSON (enum keys by value, everything else via str)."""
    if isinstance(key, enum.Enum):
        return str(key.value)
    if isinstance(key, (np.floating, np.integer)):
        key = key.item()
    return str(key)


@dataclass
class SearchResultSummary:
    """The JSON-durable subset of a :class:`~repro.core.framework.SearchResult`.

    Carries everything downstream analysis needs — the winning encoding, its
    fitness/objective value, the throughput and makespan of its schedule, the
    convergence history, and the samples spent — without the decoded mapping
    and schedule objects (both are reconstructable from the encoding via
    ``MappingEvaluator.schedule_for``).
    """

    optimizer_name: str
    best_fitness: float
    objective_value: float
    throughput_gflops: float
    makespan_cycles: float
    samples_used: int
    best_encoding: List[float]
    history: List[float]
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: Optional flight-recorder block (docs/OBSERVABILITY.md): wall/cpu per
    #: phase, eval counts, cache hit rate.  Diagnostic, never durable —
    #: ``compare=False`` and excluded from :meth:`to_dict` by default, so
    #: stores, fingerprints, and the tracing-on/off bit-identity property
    #: tests never see wall-clock values.
    telemetry: Optional[Dict[str, Any]] = field(default=None, compare=False)

    @classmethod
    def from_result(cls, result: "SearchResult") -> "SearchResultSummary":
        """Summarise a full search result."""
        telemetry = getattr(result, "telemetry", None)
        return cls(
            optimizer_name=result.optimizer_name,
            best_fitness=float(result.best_fitness),
            objective_value=float(result.objective_value),
            throughput_gflops=float(result.throughput_gflops),
            makespan_cycles=float(result.schedule.makespan_cycles),
            samples_used=int(result.samples_used),
            best_encoding=[float(v) for v in np.asarray(result.best_encoding, dtype=float)],
            history=[float(v) for v in result.history],
            metadata=jsonable(result.metadata),
            telemetry=None if telemetry is None else jsonable(telemetry),
        )

    def to_dict(self, include_telemetry: bool = False) -> Dict[str, Any]:
        """Plain-dict form, safe for ``json.dumps``.

        The ``telemetry`` block is excluded unless explicitly requested:
        the durable record (stores, campaign resume, equality tests) must
        stay byte-identical whether or not the producing search was traced.
        """
        data = dataclasses.asdict(self)
        if not (include_telemetry and self.telemetry is not None):
            data.pop("telemetry", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchResultSummary":
        """Inverse of :meth:`to_dict` (unknown keys are rejected loudly)."""
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown SearchResultSummary fields: {sorted(unknown)}")
        return cls(**data)


def dump_jsonl_line(record: Dict[str, Any], stream: IO[str]) -> None:
    """Append one record to a JSONL stream (sorted keys, flushed)."""
    stream.write(json.dumps(jsonable(record), sort_keys=True) + "\n")
    stream.flush()


def load_jsonl(path: str) -> Iterator[Dict[str, Any]]:
    """Yield the records of a JSONL file (missing file yields nothing)."""
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
