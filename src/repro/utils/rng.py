"""Helpers for deterministic random number generation.

Every stochastic component in the library accepts either a seed or an already
constructed :class:`numpy.random.Generator`.  Using these helpers keeps the
behaviour consistent across optimizers, workload generators, and tests.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` produces a non-deterministic generator, an ``int`` or
    ``SeedSequence`` produces a deterministic one, and an existing generator is
    returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Spawn *count* independent generators derived from *seed*.

    The child generators are statistically independent, which lets parallel
    experiment arms (e.g. different optimizers in one figure) avoid sharing a
    random stream while still being reproducible from one top-level seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from *rng* (useful for sub-components)."""
    return int(rng.integers(0, 2**31 - 1))
