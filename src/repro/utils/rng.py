"""The library's single random-number policy.

Every stochastic component resolves its randomness through
:class:`SeedPolicy`, which implements one documented precedence order
(see ``docs/DETERMINISM.md``):

1. **Explicit per-call seed** — an ``int``, :class:`numpy.random.Generator`,
   :class:`numpy.random.SeedSequence`, or an existing :class:`SeedPolicy`
   passed directly to the consumer (``M3E.search(seed=...)``,
   ``build_optimizer(seed=...)``, ``MappingRequest.seed``).
2. **Session seed** — installed once per process by the CLI's ``--seed``
   flag via :func:`set_global_seed`, or read from the ``REPRO_SEED``
   environment variable.  Each unseeded consumer receives an *independent*
   substream of the session seed, so two unseeded optimizers in one process
   never share a stream.
3. **Unset** — requesting randomness with no seed resolved anywhere is an
   error under pytest (silent nondeterminism in tests is the SimCash bug
   class: a displayed value and a decision computed under different seeds)
   and a once-per-process :class:`RuntimeWarning` elsewhere, falling back to
   OS entropy.

Deterministic *substreams* are derived by name via
:meth:`SeedPolicy.stream`:  ``policy.stream("optimizer/magma")`` keys a
:class:`numpy.random.SeedSequence` spawn off a stable hash of the name, so
adding a new named consumer never perturbs the streams existing consumers
see.  For bases that are already :class:`~numpy.random.Generator` instances
(the legacy "hand me a generator" path) substreams are drawn sequentially
from that generator's bit stream instead — deterministic, but order-
sensitive, exactly as the historical ``spawn_rngs`` behaviour.

Bit-compatibility: for any non-``None`` seed, :func:`ensure_rng` and
:func:`spawn_rngs` produce exactly the generators they always did, so stored
campaign fingerprints and recorded results stay valid.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from typing import List, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError

#: Environment variable supplying the session seed when no explicit seed and
#: no CLI-installed seed is present (precedence level 2).
SEED_ENV_VAR = "REPRO_SEED"

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence, "SeedPolicy"]

#: The session-wide policy installed by the CLI / env var (level 2).
_GLOBAL_POLICY: Optional["SeedPolicy"] = None

#: Warn-once latch for unseeded randomness outside pytest.
_UNSEEDED_WARNED = False


def _under_pytest() -> bool:
    """Whether code is executing inside a pytest test."""
    return "PYTEST_CURRENT_TEST" in os.environ


def _stream_key(name: str) -> int:
    """Stable 32-bit spawn key for a substream name.

    ``SeedSequence`` spawn keys must fit in ``uint32``; hashing the name
    (rather than numbering consumers) is what makes substreams insensitive
    to the order consumers are added in.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class SeedPolicy:
    """A resolved seed plus the machinery to derive named substreams.

    Instances are produced by :meth:`resolve`, which applies the precedence
    order documented in the module docstring.  A policy carries:

    ``resolved_seed``
        The concrete integer session/explicit seed, when one is known
        (``None`` for generator-based and unset policies).  This is what
        result metadata, campaign cells, and service payloads record.
    ``source``
        Where the seed came from: ``"explicit"``, ``"cli"``, ``"env"``, or
        ``"unset"``.
    """

    def __init__(
        self,
        base: "None | int | np.random.Generator | np.random.SeedSequence",
        source: str,
        resolved_seed: Optional[int] = None,
    ) -> None:
        self._base = base
        self.source = source
        self.resolved_seed = resolved_seed
        # Counter behind _anonymous_child(): each unseeded consumer of a
        # session policy gets its own substream, in resolution order.
        self._auto_counter = 0

    # ------------------------------------------------------------------
    # Resolution (the precedence order)
    # ------------------------------------------------------------------
    @classmethod
    def resolve(cls, seed: SeedLike = None) -> "SeedPolicy":
        """Apply the precedence order and return the governing policy.

        Explicit seeds win; otherwise the session policy (CLI-installed or
        ``REPRO_SEED``) hands out an independent substream; otherwise the
        policy is *unset* and the first randomness request raises (under
        pytest) or warns once (elsewhere).
        """
        if isinstance(seed, SeedPolicy):
            return seed
        if isinstance(seed, np.random.Generator):
            return cls(seed, "explicit")
        if isinstance(seed, np.random.SeedSequence):
            entropy = seed.entropy if isinstance(seed.entropy, int) else None
            resolved = entropy if not seed.spawn_key else None
            return cls(seed, "explicit", resolved_seed=resolved)
        if seed is not None:
            value = int(seed)
            return cls(value, "explicit", resolved_seed=value)
        session = _session_policy()
        if session is not None:
            return session._anonymous_child()
        return cls(None, "unset")

    def _anonymous_child(self) -> "SeedPolicy":
        """An independent substream policy for one unseeded consumer.

        Children are numbered in resolution order — deterministic for a
        fixed program, while guaranteeing two unseeded consumers never share
        a stream.  The child keeps the session's ``resolved_seed`` so result
        metadata still records the seed that governs the run.
        """
        sequence = self.stream_sequence(f"auto/{self._auto_counter}")
        self._auto_counter += 1
        return SeedPolicy(sequence, self.source, resolved_seed=self.resolved_seed)

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def generator(self) -> np.random.Generator:
        """The policy's root generator.

        Bit-identical to ``numpy.random.default_rng(seed)`` for explicit
        integer seeds (and to the generator itself for generator bases), so
        refactoring a consumer onto a policy never changes its stream.
        """
        base = self._require_base("root generator")
        if isinstance(base, np.random.Generator):
            return base
        return np.random.default_rng(base)

    def stream_sequence(self, name: str) -> np.random.SeedSequence:
        """The :class:`~numpy.random.SeedSequence` of the named substream."""
        base = self._require_base(name)
        if isinstance(base, np.random.Generator):
            # Legacy generator base: draw the child's entropy from the
            # generator's own bit stream (order-sensitive by nature).
            return np.random.SeedSequence(int(base.integers(0, 2**63 - 1)))
        if isinstance(base, np.random.SeedSequence):
            return np.random.SeedSequence(
                entropy=base.entropy,
                spawn_key=tuple(base.spawn_key) + (_stream_key(name),),
            )
        return np.random.SeedSequence(int(base), spawn_key=(_stream_key(name),))

    def stream(self, name: str) -> np.random.Generator:
        """An independent, name-keyed generator (e.g. ``"optimizer/magma"``).

        For integer/SeedSequence bases the same name always yields the same
        stream, and distinct names yield independent streams — adding a new
        consumer never perturbs existing ones.
        """
        return np.random.default_rng(self.stream_sequence(name))

    def stream_seed(self, name: str) -> int:
        """A non-negative 63-bit integer seed for the named substream.

        For handing a derived seed across a process boundary (parallel / RPC
        worker bootstrap) without pickling generator state.
        """
        state = self.stream_sequence(name).generate_state(1, np.uint64)[0]
        return int(state >> np.uint64(1))

    # ------------------------------------------------------------------
    def _require_base(self, consumer: str) -> "int | np.random.Generator | np.random.SeedSequence":
        """The entropy base, enforcing the unset-is-error-in-tests rule."""
        if self._base is not None:
            return self._base
        if _under_pytest():
            raise ConfigurationError(
                f"no random seed resolved for {consumer!r}: pass an explicit "
                f"seed, use --seed, or set {SEED_ENV_VAR} — unseeded "
                f"randomness is an error under pytest (docs/DETERMINISM.md)"
            )
        global _UNSEEDED_WARNED
        if not _UNSEEDED_WARNED:
            _UNSEEDED_WARNED = True
            warnings.warn(
                f"no random seed resolved for {consumer!r}; falling back to OS "
                f"entropy (results are not reproducible — pass --seed or set "
                f"{SEED_ENV_VAR})",
                RuntimeWarning,
                stacklevel=3,
            )
        return np.random.SeedSequence()  # repro-lint: disable=RPL103 — deliberate OS-entropy fallback, warned above

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedPolicy(source={self.source!r}, resolved_seed={self.resolved_seed!r})"


# ----------------------------------------------------------------------
# Session policy (precedence level 2)
# ----------------------------------------------------------------------
def set_global_seed(seed: int, source: str = "cli") -> SeedPolicy:
    """Install the session seed (CLI ``--seed`` / ``REPRO_SEED``).

    Every subsequent unseeded consumer resolves to an independent substream
    of this seed.  Returns the installed policy.
    """
    global _GLOBAL_POLICY
    value = int(seed)
    _GLOBAL_POLICY = SeedPolicy(value, source, resolved_seed=value)
    return _GLOBAL_POLICY


def clear_global_seed() -> None:
    """Remove the session policy (test isolation hook)."""
    global _GLOBAL_POLICY
    _GLOBAL_POLICY = None


def global_policy() -> Optional[SeedPolicy]:
    """The installed session policy, if any (does not consult the env var)."""
    return _GLOBAL_POLICY


def _session_policy() -> Optional[SeedPolicy]:
    """The session policy, materialising one from ``REPRO_SEED`` on demand."""
    if _GLOBAL_POLICY is not None:
        return _GLOBAL_POLICY
    raw = os.environ.get(SEED_ENV_VAR)
    if raw is None or raw == "":
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SEED_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    return set_global_seed(value, source="env")


def resolve_seed(explicit: Optional[int] = None, default: Optional[int] = None) -> Optional[int]:
    """The concrete integer seed governing a run, by precedence.

    ``explicit`` wins, then the session seed (installed or ``REPRO_SEED``),
    then ``default``.  Used where an *integer* is needed up front — CLI
    commands and service requests that fingerprint the resolved seed.
    """
    if explicit is not None:
        return int(explicit)
    session = _session_policy()
    if session is not None and session.resolved_seed is not None:
        return session.resolved_seed
    return default


# ----------------------------------------------------------------------
# Legacy-compatible helpers (the whole library funnels through these)
# ----------------------------------------------------------------------
def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Non-``None`` seeds behave exactly as ``numpy.random.default_rng`` (an
    existing generator is returned unchanged); ``None`` resolves through
    :class:`SeedPolicy` — session substream if a session seed is installed,
    error under pytest / warn-once elsewhere otherwise.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, SeedPolicy):
        return seed.generator()
    if seed is None:
        return SeedPolicy.resolve(None).generator()
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Spawn *count* independent generators derived from *seed*.

    The child generators are statistically independent, which lets parallel
    experiment arms (e.g. different optimizers in one figure) avoid sharing a
    random stream while still being reproducible from one top-level seed.
    Non-``None`` seeds keep their historical bit-exact derivation; ``None``
    resolves through :class:`SeedPolicy` first.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, SeedPolicy):
        seed = seed._base if seed._base is not None else None
    if seed is None:
        policy = SeedPolicy.resolve(None)
        seed = policy._require_base("spawn_rngs")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from *rng* (useful for sub-components)."""
    return int(rng.integers(0, 2**31 - 1))
