"""Append-only JSONL stores with crash repair and a fast fingerprint scan.

Two subsystems persist results as one-JSON-object-per-line files keyed by a
deterministic content fingerprint: the campaign results store
(:class:`~repro.experiments.campaign.CampaignResultsStore`, one line per
completed search cell) and the mapping service's solution store
(:class:`~repro.service.store.SolutionStore`, one line per solved request).
This module owns the mechanics they share:

* **Crash-safe appends** — every record is rendered to a single string and
  written in one flushed ``write`` on a file opened in append mode, behind a
  process-local lock, so concurrent writers in one process never interleave
  partial lines and a hard kill can tear at most the final line.
* **Torn-line repair** — :meth:`AppendOnlyJsonlStore.repair` drops an
  incomplete trailing line (the only corruption a crashed append can leave)
  by atomically rewriting the store to its valid prefix.
* **Fast fingerprint scan** — :meth:`AppendOnlyJsonlStore.fingerprints`
  extracts the top-level ``"fingerprint"`` key with a compiled regex instead
  of parsing every full record; on stores whose records carry whole search
  summaries (encodings + convergence histories) this is an order of
  magnitude cheaper than ``json.loads`` per line, which is what resuming a
  large campaign or warming a service pays at startup.

Since the store-backend split (:mod:`repro.utils.storage`) this class is the
``jsonl:`` implementation of :class:`~repro.utils.storage.StoreBackend` —
the default backend, byte-compatible with every store file written before
backends existed.  It remains single-process (appends are thread-safe, but
two OS processes appending to one file race); multi-replica deployments use
the ``sqlite:`` or ``tcp://`` backends instead.
"""

from __future__ import annotations

import json
import os
import re
import threading
from typing import Any, Dict, Iterator, List, Set

from repro.utils.serialization import dump_jsonl_line, load_jsonl
from repro.utils.storage import StoreBackend

#: Matches the *top-level* fingerprint key of a record rendered by
#: :func:`~repro.utils.serialization.dump_jsonl_line` (sorted keys).  The
#: stores built on this module never nest a ``"fingerprint"`` key inside a
#: sub-object that sorts before the top-level one, so the first match on a
#: line is the record's identity.  ``fingerprints`` still falls back to a
#: full parse for any line the regex does not match.
_FINGERPRINT_RE = re.compile(r'"fingerprint":\s*"([^"]*)"')


class AppendOnlyJsonlStore(StoreBackend):
    """The ``jsonl:`` store backend: an append-only, single-file JSONL store."""

    kind = "jsonl"
    shared = False

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = str(path)
        self._lock = threading.Lock()

    @property
    def url(self) -> str:
        return f"jsonl:{self.path}"

    def close(self) -> None:
        """Nothing to release: appends open and close the file per record."""

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Yield every record in append order (missing file yields nothing)."""
        return load_jsonl(self.path)

    def records(self) -> List[Dict[str, Any]]:
        """All records, in append order."""
        return list(self.iter_records())

    def fingerprints(self) -> Set[str]:
        """Fingerprints of every record, without parsing full records.

        A torn trailing line (no final newline) is ignored rather than
        trusted: its fingerprint may belong to a record that was never
        durably written, and :meth:`repair` would drop it.
        """
        self._count_op("scan")
        fingerprints: Set[str] = set()
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return fingerprints
        complete = raw if raw.endswith("\n") else raw[: raw.rfind("\n") + 1]
        for line in complete.splitlines():
            line = line.strip()
            if not line:
                continue
            match = _FINGERPRINT_RE.search(line)
            if match is not None:
                fingerprints.add(match.group(1))
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            fingerprint = record.get("fingerprint")
            if fingerprint is not None:
                fingerprints.add(str(fingerprint))
        return fingerprints

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _ensure_parent(self) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)

    def truncate(self) -> None:  # acquires-lock: _lock
        """Start the store afresh."""
        self._count_op("truncate")
        with self._lock:
            self._ensure_parent()
            open(self.path, "w", encoding="utf-8").close()

    def append_record(self, record: Dict[str, Any]) -> None:  # acquires-lock: _lock
        """Append one record as a single flushed line (crash/thread-safe)."""
        self._count_op("append")
        with self._lock:
            self._ensure_parent()
            with open(self.path, "a", encoding="utf-8") as handle:
                dump_jsonl_line(record, handle)

    def _replace_records(self, records: List[Dict[str, Any]]) -> None:  # acquires-lock: _lock
        """Atomically replace the whole file (compaction commit path)."""
        with self._lock:
            self._ensure_parent()
            temp_path = self.path + ".compact"
            with open(temp_path, "w", encoding="utf-8") as handle:
                for record in records:
                    dump_jsonl_line(record, handle)
            os.replace(temp_path, self.path)

    def repair(self) -> int:  # acquires-lock: _lock
        """Drop a torn trailing line left by a hard mid-write interruption.

        Appends are single flushed writes, so the only corruption an
        interrupted writer can leave is an incomplete *last* line (or a
        complete one missing its newline).  Both would poison later appends;
        this rewrites the store to its valid prefix.  Returns the number of
        intact records kept.
        """
        self._count_op("repair")
        with self._lock:
            try:
                with open(self.path, "r", encoding="utf-8") as handle:
                    raw = handle.read()
            except FileNotFoundError:
                return 0
            records: List[Dict[str, Any]] = []
            torn = False
            for line in raw.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    torn = True
                    break
            if torn or (raw and not raw.endswith("\n")):
                # Rewrite atomically: a crash during repair must not turn one
                # torn line into the loss of every completed record.
                temp_path = self.path + ".repair"
                with open(temp_path, "w", encoding="utf-8") as handle:
                    for record in records:
                        dump_jsonl_line(record, handle)
                os.replace(temp_path, self.path)
            return len(records)
