"""Unit conversions used throughout the cost model and scheduler.

The paper evaluates accelerators running at 200 MHz with 1-byte operands
(Section VI-A3).  These constants centralise that assumption so the scheduler,
cost model, and reporting all agree on how cycles, seconds, bytes, and FLOPs
relate to each other.
"""

from __future__ import annotations

#: Default accelerator clock frequency in Hz (paper: 200 MHz).
DEFAULT_FREQUENCY_HZ: float = 200e6

#: Operand width in bytes (paper: 1 byte / INT8-style operands).
DEFAULT_BYTES_PER_ELEMENT: int = 1

#: Bytes in a gigabyte as used for bandwidth figures (GB/s).
BYTES_PER_GB: float = 1e9


def cycles_to_seconds(cycles: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> float:
    """Convert a cycle count to wall-clock seconds at *frequency_hz*."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency_hz must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> float:
    """Convert wall-clock seconds to a cycle count at *frequency_hz*."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency_hz must be positive, got {frequency_hz}")
    return seconds * frequency_hz


def gbps_to_bytes_per_cycle(gbps: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> float:
    """Convert a bandwidth in GB/s to bytes transferred per accelerator cycle."""
    return gbps * BYTES_PER_GB / frequency_hz


def bytes_per_cycle_to_gbps(bytes_per_cycle: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ) -> float:
    """Convert bytes-per-cycle into GB/s."""
    return bytes_per_cycle * frequency_hz / BYTES_PER_GB


def macs_to_flops(macs: float) -> float:
    """A multiply-accumulate counts as two floating point operations."""
    return 2.0 * macs
