"""Shared utilities: RNG handling, unit conversions, and table formatting."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.units import (
    BYTES_PER_GB,
    DEFAULT_FREQUENCY_HZ,
    cycles_to_seconds,
    gbps_to_bytes_per_cycle,
    bytes_per_cycle_to_gbps,
    macs_to_flops,
)
from repro.utils.tables import format_table, geometric_mean, unique_key
from repro.utils.serialization import SearchResultSummary, jsonable

__all__ = [
    "SearchResultSummary",
    "jsonable",
    "ensure_rng",
    "spawn_rngs",
    "BYTES_PER_GB",
    "DEFAULT_FREQUENCY_HZ",
    "cycles_to_seconds",
    "gbps_to_bytes_per_cycle",
    "bytes_per_cycle_to_gbps",
    "macs_to_flops",
    "format_table",
    "geometric_mean",
    "unique_key",
]
