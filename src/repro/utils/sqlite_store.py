"""The ``sqlite:`` store backend — concurrent local replicas over one file.

The JSONL backend is single-process by construction: two OS processes
appending to one file race each other and the torn-write repair.  SQLite in
WAL (write-ahead-log) mode gives N local ``repro-magma serve`` replicas a
shared store with the durability semantics the protocol demands for free:
writers append to the WAL under SQLite's own file locking, readers never
block writers, and a hard kill can never leave a torn record — an
uncommitted transaction simply never happened, which is why
:meth:`SqliteStoreBackend.repair` is a (counted) no-op.

Records stay the same JSON documents the JSONL backend stores, one per row,
rendered through the canonical :func:`~repro.utils.storage.render_record`
form — so migrating a store between ``jsonl:`` and ``sqlite:`` preserves
every record byte for byte.  The top-level fingerprint is mirrored into an
indexed column so the fingerprint scan and per-fingerprint lookup that
campaign ``--resume`` and the service index lean on stay cheap at 10⁵+
records without parsing every document.

``sqlite3`` is stdlib; this module adds no dependency.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Any, Dict, Iterator, List, Optional, Set

from repro.utils.storage import StoreBackend, record_fitness, render_record

#: How long a writer waits on a competing replica's write lock before
#: failing, in seconds.  WAL commits are milliseconds, so this is generous.
_BUSY_TIMEOUT_SECONDS = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint TEXT,
    record TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_fingerprint
    ON records (fingerprint) WHERE fingerprint IS NOT NULL;
"""


class SqliteStoreBackend(StoreBackend):
    """A :class:`~repro.utils.storage.StoreBackend` over a SQLite-WAL file."""

    kind = "sqlite"
    shared = True

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = str(path)
        self._lock = threading.Lock()
        # One connection shared across the service's worker threads, handed
        # out only under _lock (check_same_thread would otherwise reject the
        # handoff); cross-*process* isolation is SQLite's own locking.
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(  # guarded-by: _lock
            self.path, timeout=_BUSY_TIMEOUT_SECONDS, check_same_thread=False
        )
        try:
            with self._lock:
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
                self._conn.executescript(_SCHEMA)
                self._conn.commit()
        except BaseException:
            self._conn.close()
            self._conn = None
            raise

    @property
    def url(self) -> str:
        return f"sqlite:{self.path}"

    def close(self) -> None:  # acquires-lock: _lock
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def _connection(self) -> sqlite3.Connection:
        # holds-lock: _lock
        if self._conn is None:
            raise RuntimeError(f"store backend {self.url} is closed")
        return self._conn

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def iter_records(self) -> Iterator[Dict[str, Any]]:  # acquires-lock: _lock
        # Materialized under the lock: the shared connection cannot stream
        # rows concurrently with another thread's append, and stores are
        # read in full at well-defined points (startup index, resume scan).
        with self._lock:
            rows = self._connection().execute(
                "SELECT record FROM records ORDER BY seq"
            ).fetchall()
        for (raw,) in rows:
            yield json.loads(raw)

    def __len__(self) -> int:  # acquires-lock: _lock
        with self._lock:
            row = self._connection().execute("SELECT COUNT(*) FROM records").fetchone()
        return int(row[0])

    def fingerprints(self) -> Set[str]:  # acquires-lock: _lock
        self._count_op("scan")
        with self._lock:
            rows = self._connection().execute(
                "SELECT DISTINCT fingerprint FROM records WHERE fingerprint IS NOT NULL"
            ).fetchall()
        return {str(value) for (value,) in rows}

    def lookup(self, fingerprint: str) -> Optional[Dict[str, Any]]:  # acquires-lock: _lock
        """Best-fitness record for *fingerprint* via the index (ties earliest)."""
        self._count_op("lookup")
        with self._lock:
            rows = self._connection().execute(
                "SELECT record FROM records WHERE fingerprint = ? ORDER BY seq",
                (fingerprint,),
            ).fetchall()
        best: Optional[Dict[str, Any]] = None
        for (raw,) in rows:
            record = json.loads(raw)
            if best is None or record_fitness(record) > record_fitness(best):
                best = record
        return best

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append_record(self, record: Dict[str, Any]) -> None:  # acquires-lock: _lock
        self._count_op("append")
        fingerprint = record.get("fingerprint")
        rendered = render_record(record)
        with self._lock:
            conn = self._connection()
            conn.execute(
                "INSERT INTO records (fingerprint, record) VALUES (?, ?)",
                (None if fingerprint is None else str(fingerprint), rendered),
            )
            conn.commit()

    def append_many(self, records: List[Dict[str, Any]]) -> None:  # acquires-lock: _lock
        """Append a batch in one transaction (bulk load / benchmark seeding)."""
        self._count_op("append", len(records))
        rows = [
            (
                None if record.get("fingerprint") is None else str(record["fingerprint"]),
                render_record(record),
            )
            for record in records
        ]
        with self._lock:
            conn = self._connection()
            conn.executemany("INSERT INTO records (fingerprint, record) VALUES (?, ?)", rows)
            conn.commit()

    def truncate(self) -> None:  # acquires-lock: _lock
        self._count_op("truncate")
        with self._lock:
            conn = self._connection()
            conn.execute("DELETE FROM records")
            conn.commit()

    def _replace_records(self, records: List[Dict[str, Any]]) -> None:  # acquires-lock: _lock
        rows = [
            (
                None if record.get("fingerprint") is None else str(record["fingerprint"]),
                render_record(record),
            )
            for record in records
        ]
        with self._lock:
            conn = self._connection()
            with conn:  # one transaction: compaction is all-or-nothing
                conn.execute("DELETE FROM records")
                conn.executemany(
                    "INSERT INTO records (fingerprint, record) VALUES (?, ?)", rows
                )

    def repair(self) -> int:
        """WAL atomicity means no torn records can exist; report the count."""
        self._count_op("repair")
        return len(self)


__all__ = ["SqliteStoreBackend"]
