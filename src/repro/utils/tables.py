"""Small text-reporting helpers shared by the CLI, examples, and benchmarks."""

from __future__ import annotations

import math
from typing import Container, Iterable, Sequence


def unique_key(name: str, existing: Container[str]) -> str:
    """Return *name*, suffixed ``#2``/``#3``/... if it collides with *existing*.

    Shared by every results-dict builder (``M3E.compare``,
    ``run_method_comparison``, ``ComparisonReport.add``) so two optimizers
    with the same display name are reported side by side instead of silently
    overwriting each other — and so the collision policy lives in one place.
    """
    if name not in existing:
        return name
    suffix = 2
    while f"{name}#{suffix}" in existing:
        suffix += 1
    return f"{name}#{suffix}"


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    The paper reports most headline speedups as geometric means across tasks;
    this helper mirrors that aggregation.  Raises ``ValueError`` on empty input
    or non-positive entries.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric_mean() requires at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean() requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render *rows* as a fixed-width ASCII table with *headers*.

    Numbers are formatted compactly; everything else is converted with
    ``str``.  Used by examples and the CLI to print experiment summaries.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            magnitude = abs(cell)
            if magnitude >= 1e5 or magnitude < 1e-3:
                return f"{cell:.3e}"
            return f"{cell:.4g}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in text_rows)
    return "\n".join(body)


def normalize_by(values: dict[str, float], reference_key: str) -> dict[str, float]:
    """Normalise a mapping of label -> value by the value at *reference_key*.

    Mirrors the paper's figures, where throughputs are normalised by MAGMA's.
    """
    if reference_key not in values:
        raise KeyError(f"reference key {reference_key!r} not present in values")
    reference = values[reference_key]
    if reference == 0:
        raise ValueError("reference value is zero; cannot normalise")
    return {k: v / reference for k, v in values.items()}
