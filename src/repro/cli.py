"""Command-line interface for the MAGMA reproduction.

Examples
--------
List the available building blocks::

    repro-magma list

Search a mapping for a Mix workload on the S2 accelerator with MAGMA::

    repro-magma search --setting S2 --bandwidth 16 --task mix --optimizer magma

Run one registered scenario (a paper figure/table or a custom sweep) at a
chosen scale::

    repro-magma experiment fig8 --scale small
    repro-magma experiment objective-sweep --scale smoke --seed 1

Run a whole campaign of scenarios as one resumable, deduplicated stream of
search cells, with per-cell results appended to a JSONL store::

    repro-magma campaign fig8 fig12 --out campaign.jsonl
    repro-magma campaign --grid grid.json --jobs 4 --out campaign.jsonl
    repro-magma campaign fig8 fig12 --out campaign.jsonl --resume

Fitness evaluation defaults to the vectorized ``batch`` backend; pass
``--eval-backend scalar`` to force the one-encoding-at-a-time reference
oracle (bit-identical, much slower), or ``--eval-backend parallel`` to shard
the batch sweep across worker processes (``--eval-workers N`` sizes the
pool, default one per CPU core)::

    repro-magma search --setting S2 --task mix --eval-backend scalar
    repro-magma experiment fig9 --eval-backend parallel --eval-workers 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.accelerator import build_setting, list_settings
from repro.analysis.gantt import render_ascii_gantt
from repro.analysis.reporting import ComparisonReport
from repro.core.evaluator import DEFAULT_EVAL_BACKEND, EVAL_BACKENDS
from repro.core.framework import M3E
from repro.exceptions import ExperimentError
from repro.experiments import (
    CampaignRunner,
    get_scale,
    get_scenario,
    list_scenarios,
    run_method_comparison,
    run_scenario,
    spec_from_grid,
)
from repro.experiments.settings import list_scales
from repro.optimizers import list_optimizers
from repro.utils.serialization import jsonable
from repro.workloads import TaskType, build_task_workload, list_models


def _cmd_list(_: argparse.Namespace) -> int:
    """Print the registered models, accelerator settings, optimizers, and scenarios."""
    print("Accelerator settings:", ", ".join(list_settings()))
    print("Optimizers:", ", ".join(list_optimizers()))
    print("Scenarios:")
    for name in list_scenarios():
        print(f"  - {name}: {get_scenario(name).description}")
    print("Models:")
    for name in list_models():
        print(f"  - {name}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    """Run a single mapping search and print the result summary."""
    platform = build_setting(args.setting, args.bandwidth)
    task = TaskType(args.task)
    group = build_task_workload(
        task,
        group_size=args.group_size,
        seed=args.seed,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    explorer = M3E(
        platform,
        sampling_budget=args.budget,
        eval_backend=args.eval_backend,
        eval_workers=args.eval_workers,
    )
    result = explorer.search(group, optimizer=args.optimizer, seed=args.seed)
    print(platform.describe())
    print(
        f"optimizer={result.optimizer_name} throughput={result.throughput_gflops:.2f} GFLOP/s "
        f"makespan={result.schedule.makespan_cycles:.3e} cycles samples={result.samples_used}"
    )
    if args.show_schedule:
        print(render_ascii_gantt(result.schedule, group))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Compare several optimizers on one problem and print a table."""
    scale = get_scale(args.scale)
    results = run_method_comparison(
        args.setting,
        args.bandwidth,
        TaskType(args.task),
        methods=args.optimizers,
        scale=scale,
        seed=args.seed,
        eval_backend=args.eval_backend,
        eval_workers=args.eval_workers,
    )
    report = ComparisonReport(
        title=f"{args.task} on {args.setting} (BW={args.bandwidth} GB/s, scale={scale.name})"
    )
    for name, result in results.items():
        report.add(result, name=name)
    print(report.to_text())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    """Run one registered scenario and print the result as JSON.

    Every scenario — paper figure/table or custom sweep — goes through the
    registry, so ``--scale``, ``--seed``, ``--eval-backend``, and
    ``--eval-workers`` apply uniformly.
    """
    output = run_scenario(
        args.name,
        scale=args.scale,
        seed=args.seed,
        eval_backend=args.eval_backend,
        eval_workers=args.eval_workers,
    )
    print(json.dumps(jsonable(output), indent=2, sort_keys=True))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Expand scenarios into search cells and stream results to a JSONL store."""
    scenarios: list = list(args.scenarios)
    if args.grid:
        with open(args.grid, "r", encoding="utf-8") as handle:
            scenarios.append(spec_from_grid(json.load(handle)))
    if not scenarios:
        raise ExperimentError("campaign needs scenario names and/or --grid")

    eval_backend = args.eval_backend
    eval_workers = args.eval_workers
    if args.jobs is not None and args.jobs > 1 and eval_backend == DEFAULT_EVAL_BACKEND:
        eval_backend = "parallel"
        eval_workers = eval_workers or args.jobs

    engine = CampaignRunner(
        scale=args.scale,
        eval_backend=eval_backend,
        eval_workers=eval_workers,
    )
    report = engine.run(
        scenarios,
        store=args.out,
        resume=args.resume,
        base_seed=args.seed,
        progress=print,
    )
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0


def _add_eval_backend_options(parser: argparse.ArgumentParser) -> None:
    """The evaluation-backend flags shared by every search-running command."""
    parser.add_argument(
        "--eval-backend",
        default=DEFAULT_EVAL_BACKEND,
        choices=list(EVAL_BACKENDS),
        help="fitness evaluation path: vectorized 'batch' (default), multi-process "
        "'parallel', or the 'scalar' oracle",
    )
    parser.add_argument(
        "--eval-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --eval-backend parallel (default: one per CPU core)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro-magma", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list models, settings, optimizers, scenarios")
    list_parser.set_defaults(func=_cmd_list)

    search = subparsers.add_parser("search", help="run one mapping search")
    search.add_argument("--setting", default="S2", choices=list_settings())
    search.add_argument("--bandwidth", type=float, default=16.0)
    search.add_argument("--task", default="mix", choices=[t.value for t in TaskType])
    search.add_argument("--optimizer", default="magma")
    search.add_argument("--group-size", type=int, default=100)
    search.add_argument("--budget", type=int, default=10_000)
    search.add_argument("--seed", type=int, default=0)
    _add_eval_backend_options(search)
    search.add_argument("--show-schedule", action="store_true")
    search.set_defaults(func=_cmd_search)

    compare = subparsers.add_parser("compare", help="compare optimizers on one problem")
    compare.add_argument("--setting", default="S2", choices=list_settings())
    compare.add_argument("--bandwidth", type=float, default=16.0)
    compare.add_argument("--task", default="mix", choices=[t.value for t in TaskType])
    compare.add_argument("--optimizers", nargs="+", default=["herald-like", "ai-mt-like", "stdga", "magma"])
    compare.add_argument("--scale", default=None, choices=list_scales())
    compare.add_argument("--seed", type=int, default=0)
    _add_eval_backend_options(compare)
    compare.set_defaults(func=_cmd_compare)

    experiment = subparsers.add_parser("experiment", help="run one registered scenario")
    experiment.add_argument("name", choices=list_scenarios())
    experiment.add_argument("--scale", default=None, choices=list_scales())
    experiment.add_argument("--seed", type=int, default=0)
    _add_eval_backend_options(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    campaign = subparsers.add_parser(
        "campaign", help="run scenarios as one resumable stream of search cells"
    )
    campaign.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help=f"registered scenario names to include (available: {', '.join(list_scenarios())})",
    )
    campaign.add_argument(
        "--grid", default=None, metavar="FILE",
        help="JSON file describing an ad-hoc grid scenario "
        "(settings/bandwidths/tasks/methods/objectives/seeds/group_size/budget)",
    )
    campaign.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shorthand for '--eval-backend parallel --eval-workers N' (when N > 1)",
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="skip cells whose fingerprints are already in the --out store",
    )
    campaign.add_argument(
        "--out", default="campaign_results.jsonl", metavar="PATH",
        help="JSONL results store (default: campaign_results.jsonl)",
    )
    campaign.add_argument("--scale", default=None, choices=list_scales())
    campaign.add_argument("--seed", type=int, default=0)
    _add_eval_backend_options(campaign)
    campaign.set_defaults(func=_cmd_campaign)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
