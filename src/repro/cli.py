"""Command-line interface for the MAGMA reproduction.

Examples
--------
List the available building blocks::

    repro-magma list

Search a mapping for a Mix workload on the S2 accelerator with MAGMA::

    repro-magma search --setting S2 --bandwidth 16 --task mix --optimizer magma

Run one registered scenario (a paper figure/table or a custom sweep) at a
chosen scale::

    repro-magma experiment fig8 --scale small
    repro-magma experiment objective-sweep --scale smoke --seed 1

Run a whole campaign of scenarios as one resumable, deduplicated stream of
search cells, with per-cell results appended to a JSONL store::

    repro-magma campaign fig8 fig12 --out campaign.jsonl
    repro-magma campaign --grid grid.json --jobs 4 --out campaign.jsonl
    repro-magma campaign fig8 fig12 --out campaign.jsonl --resume

Fitness evaluation defaults to the vectorized ``batch`` backend; pass
``--eval-backend scalar`` to force the one-encoding-at-a-time reference
oracle (bit-identical, much slower), or ``--eval-backend parallel`` to shard
the batch sweep across worker processes (``--eval-workers N`` sizes the
pool, default one per CPU core)::

    repro-magma search --setting S2 --task mix --eval-backend scalar
    repro-magma experiment fig9 --eval-backend parallel --eval-workers 4

To scale past one machine, start evaluation workers on other hosts and point
any search-running command at them with ``--eval-backend rpc`` (results stay
bit-identical; dead workers are re-dispatched and, in the worst case, the
coordinator evaluates locally)::

    export REPRO_RPC_TOKEN=shared-secret                   # both sides
    repro-magma eval-worker --listen 0.0.0.0:9123          # on each worker host
    repro-magma search --task mix --eval-backend rpc \
        --eval-hosts hostA:9123,hostB:9123

(Workers refuse to listen on a non-loopback address without a token: the
post-auth protocol is pickle, so the token is the only gate.)

Run the mapping service — repeated requests are answered from the persistent
solution store in milliseconds, and new same-task requests warm-start from
remembered solutions (Table V) — then submit queries to it::

    repro-magma serve --store solutions.jsonl --warm-store warm.jsonl
    repro-magma submit --task vision --setting S2 --wait

Scale the service tier out to N replicas by pointing them at one shared
store — ``sqlite:PATH`` for replicas on one host, or a ``tcp://`` store
server for a fleet (every ``--store``/``--warm-store``/``--out`` accepts
these URLs; bare paths mean ``jsonl:``; see docs/SERVICE.md)::

    repro-magma store serve --listen 127.0.0.1:9917 --backing sqlite:shared.sqlite3
    repro-magma serve --port 8787 --store tcp://127.0.0.1:9917 --replica-id a
    repro-magma serve --port 8788 --store tcp://127.0.0.1:9917 --replica-id b
    repro-magma store info tcp://127.0.0.1:9917
    repro-magma store compact sqlite:shared.sqlite3 --max-records 100000

Any search-running command accepts ``--warm-store PATH`` to read/extend the
same cross-run warm-start library::

    repro-magma search --task vision --warm-store warm.jsonl

Observability (docs/OBSERVABILITY.md): ``--trace PATH`` records a structured
JSONL trace of any search-running command (bit-identical results, traced or
not), ``trace summarize`` renders it as a per-phase timeline table, and
``metrics`` dumps the Prometheus-text metrics of this process or of a
running service::

    repro-magma search --task mix --trace search_trace.jsonl
    repro-magma trace summarize search_trace.jsonl
    repro-magma metrics --url http://127.0.0.1:8787
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.accelerator import build_setting, list_settings
from repro.analysis.gantt import render_ascii_gantt
from repro.analysis.reporting import ComparisonReport
from repro.core.evalconfig import DEFAULT_EVAL_BACKEND, EVAL_BACKENDS, EvalConfig
from repro.core.framework import M3E
from repro.core.objectives import list_objectives
from repro.exceptions import ConfigurationError, ExperimentError, ServiceError
from repro.experiments import (
    CampaignRunner,
    get_scale,
    get_scenario,
    list_scenarios,
    run_method_comparison,
    run_scenario,
    spec_from_grid,
)
from repro.experiments.settings import list_scales
from repro.experiments.stats import (
    aggregate_cells,
    cross_seed_agreement,
    replicate_table,
    rows_from_store,
)
from repro.optimizers import list_optimizers
from repro.utils.rng import resolve_seed, set_global_seed
from repro.utils.serialization import jsonable
from repro.workloads import TaskType, build_task_workload, list_models


def _cmd_list(_: argparse.Namespace) -> int:
    """Print every registered building block a search or service can be configured from."""
    print("Accelerator settings:", ", ".join(list_settings()))
    print("Optimizers:", ", ".join(list_optimizers()))
    print("Objectives:", ", ".join(list_objectives()))
    print(
        "Evaluation backends:",
        ", ".join(EVAL_BACKENDS),
        f"(default: {DEFAULT_EVAL_BACKEND})",
    )
    print("Scales:", ", ".join(list_scales()), f"(default: {get_scale().name})")
    print("Scenarios:")
    for name in list_scenarios():
        print(f"  - {name}: {get_scenario(name).description}")
    print("Models:")
    for name in list_models():
        print(f"  - {name}")
    return 0


def _session_seed(args: argparse.Namespace) -> int:
    """The run's governing seed: ``--seed`` → ``REPRO_SEED`` → 0.

    The resolved value is installed as the session seed so every seed
    consumer of the command — including any left unseeded — derives from
    the same documented policy (see ``docs/DETERMINISM.md``).
    """
    seed = resolve_seed(getattr(args, "seed", None), default=0)
    set_global_seed(seed, source="cli")
    return seed


def _configure_trace(args: argparse.Namespace) -> None:
    """Honour ``--trace PATH``: enable tracing with a JSONL file sink."""
    path = getattr(args, "trace", None)
    if path:
        from repro.obs import configure_tracing

        configure_tracing(enabled=True, sink_path=path)


def _cmd_search(args: argparse.Namespace) -> int:
    """Run a single mapping search and print the result summary."""
    _configure_trace(args)
    seed = _session_seed(args)
    platform = build_setting(args.setting, args.bandwidth)
    task = TaskType(args.task)
    group = build_task_workload(
        task,
        group_size=args.group_size,
        seed=seed,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    explorer = M3E(
        platform,
        sampling_budget=args.budget,
        warm_store=_warm_library(args),
        eval_config=_eval_config(args),
    )
    result = explorer.search(group, optimizer=args.optimizer, seed=seed)
    print(platform.describe())
    print(
        f"optimizer={result.optimizer_name} throughput={result.throughput_gflops:.2f} GFLOP/s "
        f"makespan={result.schedule.makespan_cycles:.3e} cycles samples={result.samples_used}"
    )
    if args.show_schedule:
        print(render_ascii_gantt(result.schedule, group))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Compare several optimizers on one problem and print a table."""
    _configure_trace(args)
    scale = get_scale(args.scale)
    results = run_method_comparison(
        args.setting,
        args.bandwidth,
        TaskType(args.task),
        methods=args.optimizers,
        scale=scale,
        seed=_session_seed(args),
        eval_config=_eval_config(args),
    )
    report = ComparisonReport(
        title=f"{args.task} on {args.setting} (BW={args.bandwidth} GB/s, scale={scale.name})"
    )
    for name, result in results.items():
        report.add(result, name=name)
    print(report.to_text())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    """Run one registered scenario and print the result as JSON.

    Every scenario — paper figure/table or custom sweep — goes through the
    registry, so ``--scale``, ``--seed``, ``--eval-backend``, and
    ``--eval-workers`` apply uniformly.
    """
    _configure_trace(args)
    output = run_scenario(
        args.name,
        scale=args.scale,
        seed=_session_seed(args),
        warm_store=_warm_library(args),
        eval_config=_eval_config(args),
    )
    print(json.dumps(jsonable(output), indent=2, sort_keys=True))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Expand scenarios into search cells and stream results to a JSONL store."""
    _configure_trace(args)
    scenarios: list = list(args.scenarios)
    if args.grid:
        with open(args.grid, "r", encoding="utf-8") as handle:
            scenarios.append(spec_from_grid(json.load(handle)))
    if not scenarios:
        raise ExperimentError("campaign needs scenario names and/or --grid")

    eval_config = _eval_config(args)
    if args.jobs is not None and args.jobs > 1 and eval_config.backend == DEFAULT_EVAL_BACKEND:
        eval_config = EvalConfig(backend="parallel", workers=args.eval_workers or args.jobs)

    engine = CampaignRunner(
        scale=args.scale,
        warm_store=_warm_library(args),
        eval_config=eval_config,
    )
    report = engine.run(
        scenarios,
        store=args.out,
        resume=args.resume,
        base_seed=_session_seed(args),
        seed_replicates=args.seeds,
        progress=print,
    )
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    if args.seeds:
        rows = rows_from_store(args.out)
        print(replicate_table(
            aggregate_cells(rows),
            title=f"throughput_gflops across {args.seeds} seed replicates (mean ± std)",
        ))
        for key, info in cross_seed_agreement(rows).items():
            print(
                f"agreement {key}: winner={info['winner']} "
                f"agreement={info['agreement']:.2f} over {info['num_seeds']} seed(s)"
            )
    return 0


def _warm_library(args: argparse.Namespace):
    """The persistent warm-start library named by ``--warm-store``, if any."""
    path = getattr(args, "warm_store", None)
    if not path:
        return None
    from repro.service.warmlib import WarmStartLibrary

    return WarmStartLibrary(path)


def _cmd_eval_worker(args: argparse.Namespace) -> int:
    """Run one RPC evaluation worker until interrupted.

    The worker is problem-agnostic: every coordinator connection bootstraps
    its own evaluation state, so one long-lived worker serves any number of
    searches, campaigns, or mapping services pointing ``--eval-hosts`` at it.
    """
    import signal

    from repro.core.rpc import serve_worker

    def _announce(server: Any) -> None:
        print(f"eval worker listening on {server.address}", flush=True)

    def _graceful(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _graceful)
    try:
        serve_worker(args.listen, token=args.token, ready=_announce)
    except KeyboardInterrupt:
        print("\neval worker shutting down")
    return 0


def _cmd_store_serve(args: argparse.Namespace) -> int:
    """Serve one local store to the network (the ``tcp://`` backend's server).

    Any number of ``repro-magma serve`` replicas — on any host — can then
    share the store by pointing ``--store tcp://HOST:PORT`` at it.
    """
    import signal

    from repro.service.netstore import NetworkStoreServer, serve_store

    def _announce(server: NetworkStoreServer) -> None:
        print(
            f"store server listening on {server.url} "
            f"(backing: {server.backing.url})",
            flush=True,
        )

    def _graceful(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _graceful)
    try:
        serve_store(args.listen, args.backing, token=args.token, ready=_announce)
    except KeyboardInterrupt:
        print("\nstore server shutting down")
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    """Apply a compaction policy to a store and print what it dropped."""
    from repro.utils.storage import CompactionPolicy, open_store_backend

    policy = CompactionPolicy(
        keep_best_per_fingerprint=not args.no_keep_best,
        max_records=args.max_records,
        max_bytes=args.max_bytes,
    )
    with open_store_backend(args.store) as backend:
        backend.repair()
        kept, dropped = backend.compact(policy)
        print(json.dumps(
            {"store": backend.url, "kept": kept, "dropped": dropped, "policy": policy.to_dict()},
            indent=2, sort_keys=True,
        ))
    return 0


def _cmd_store_info(args: argparse.Namespace) -> int:
    """Print a JSON summary of a store (any backend URL)."""
    from repro.utils.storage import open_store_backend

    with open_store_backend(args.store) as backend:
        print(json.dumps(jsonable(backend.describe()), indent=2, sort_keys=True))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the mapping service behind the localhost HTTP JSON API."""
    _configure_trace(args)
    import signal

    from repro.service import MappingService, create_server

    service = MappingService(
        store=args.store,
        warm_store=args.warm_store,
        scale=args.scale,
        workers=args.workers,
        eval_config=_eval_config(args),
        replica_id=args.replica_id,
    )
    try:
        server = create_server(service, host=args.host, port=args.port, quiet=False)
    except OSError:
        # Port in use etc.: without this, the service's worker threads would
        # linger after the bind failure (found by the repro-lint review).
        service.close(wait=False)
        raise
    host, port = server.server_address[:2]
    print(f"mapping service listening on http://{host}:{port}")
    print(f"  replica: {service.replica_id}")
    print(f"  solution store: {service.store.url}")
    if service.warm_store is not None:
        print(f"  warm-start library: {service.warm_store.url}")

    def _graceful(signum: int, frame: Any) -> None:
        # SIGTERM (docker stop, kill) drains like Ctrl-C instead of dying
        # mid-job; appends are atomic either way, so even SIGKILL cannot
        # corrupt the store — this just avoids abandoning queued work.
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _graceful)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (draining running jobs)...")
    finally:
        server.server_close()
        service.close(wait=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one mapping request to a running service and print the reply."""
    import time
    import urllib.error
    import urllib.request

    request = {
        "setting": args.setting,
        "bandwidth_gbps": args.bandwidth,
        "task": args.task,
        "objective": args.objective,
        "method": args.optimizer,
        # Resolve client-side so the submitted (and fingerprinted) payload
        # reflects this client's --seed/REPRO_SEED, not the server's.
        "seed": resolve_seed(args.seed, default=0),
    }
    if args.group_size is not None:
        request["group_size"] = args.group_size
    if args.budget is not None:
        request["budget"] = args.budget

    base = args.url.rstrip("/")

    def call(path: str, body: Optional[dict] = None) -> dict:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        http_request = urllib.request.Request(
            base + path, data=data, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(http_request, timeout=args.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            payload = json.loads(error.read().decode("utf-8") or "{}")
            raise ServiceError(
                f"{path} -> HTTP {error.code}: {payload.get('error', error.reason)}"
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach mapping service at {base}: {error.reason}"
            ) from error

    reply = call("/submit", request)
    if args.wait and "result" not in reply:
        job_id = reply["id"]
        while True:
            status = call(f"/status/{job_id}")
            if status["state"] in ("done", "failed"):
                break
            time.sleep(args.poll)
        reply = call(f"/result/{job_id}")
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Dump metrics in the Prometheus text format.

    With ``--url`` the dump is scraped from a running mapping service's
    ``GET /metrics``; without it, the registry of this CLI process is
    rendered (useful under ``--trace``-style local runs and in tests).
    """
    if args.url:
        import urllib.error
        import urllib.request

        url = args.url.rstrip("/") + "/metrics"
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as response:
                sys.stdout.write(response.read().decode("utf-8"))
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot scrape {url}: {error.reason}") from error
    else:
        from repro.obs import render_prometheus

        sys.stdout.write(render_prometheus())
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Render a recorded JSONL trace as a per-phase timeline table."""
    from repro.obs import render_trace_summary, summarize_trace

    summary = summarize_trace(args.path)
    if not summary["records"]:
        print(f"no trace records in {args.path}")
        return 1
    print(render_trace_summary(summary))
    return 0


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` flag (structured JSONL tracing to a file sink)."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a structured JSONL trace of this run to PATH "
        "(results stay bit-identical; summarize with 'repro-magma trace summarize PATH')",
    )


def _add_seed_option(parser: argparse.ArgumentParser) -> None:
    """The shared ``--seed`` flag (unset defers to ``REPRO_SEED``, then 0)."""
    parser.add_argument(
        "--seed", type=int, default=None, metavar="SEED",
        help="governing seed for the run (default: $REPRO_SEED if set, else 0)",
    )


def _add_warm_store_option(parser: argparse.ArgumentParser) -> None:
    """The persistent warm-start flag shared by search-running commands."""
    parser.add_argument(
        "--warm-store", default=None, metavar="URL",
        help="persistent warm-start library (a path or jsonl:/sqlite:/tcp:// "
        "store URL): searches seed from the best prior same-task solution "
        "and record their winners back",
    )


def _add_eval_backend_options(parser: argparse.ArgumentParser) -> None:
    """The evaluation-backend flags shared by every search-running command."""
    parser.add_argument(
        "--eval-backend",
        default=DEFAULT_EVAL_BACKEND,
        choices=list(EVAL_BACKENDS),
        help="fitness evaluation path: vectorized 'batch' (default), multi-process "
        "'parallel', multi-host 'rpc', or the 'scalar' oracle",
    )
    parser.add_argument(
        "--eval-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --eval-backend parallel (default: one per CPU core)",
    )
    parser.add_argument(
        "--eval-hosts",
        default=None,
        metavar="HOST:PORT,HOST:PORT",
        help="remote eval-worker addresses for --eval-backend rpc",
    )
    parser.add_argument(
        "--eval-rpc-token",
        default=None,
        metavar="TOKEN",
        help="shared auth token for --eval-backend rpc "
        "(default: the REPRO_RPC_TOKEN environment variable)",
    )


def _eval_config(args: argparse.Namespace) -> EvalConfig:
    """The :class:`EvalConfig` the CLI flags describe (M3E/campaign/service).

    The API tolerates ``rpc`` with no hosts (local-fallback mode), but a CLI
    user typing ``--eval-backend rpc`` without ``--eval-hosts`` almost
    certainly forgot the fleet — fail loudly instead of silently running
    every evaluation locally.
    """
    if args.eval_backend == "rpc" and not args.eval_hosts:
        raise ConfigurationError(
            "--eval-backend rpc requires --eval-hosts HOST:PORT[,HOST:PORT...] "
            "(start workers with: repro-magma eval-worker --listen HOST:PORT)"
        )
    return EvalConfig(
        backend=args.eval_backend,
        workers=args.eval_workers,
        hosts=args.eval_hosts,
        rpc_token=args.eval_rpc_token,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro-magma", description=__doc__)
    return _populate_parser(parser)


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run repro-lint (the AST invariant checkers) over the given paths."""
    from repro.tools.lint.cli import run_lint

    return run_lint(
        paths=args.paths,
        select=args.select,
        output_format=args.format,
        out=args.out,
        show_suppressed=args.show_suppressed,
        list_codes=args.list_codes,
    )


def _populate_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list models, settings, optimizers, scenarios")
    list_parser.set_defaults(func=_cmd_list)

    search = subparsers.add_parser("search", help="run one mapping search")
    search.add_argument("--setting", default="S2", choices=list_settings())
    search.add_argument("--bandwidth", type=float, default=16.0)
    search.add_argument("--task", default="mix", choices=[t.value for t in TaskType])
    search.add_argument("--optimizer", default="magma")
    search.add_argument("--group-size", type=int, default=100)
    search.add_argument("--budget", type=int, default=10_000)
    _add_seed_option(search)
    _add_eval_backend_options(search)
    _add_warm_store_option(search)
    search.add_argument("--show-schedule", action="store_true")
    _add_trace_option(search)
    search.set_defaults(func=_cmd_search)

    compare = subparsers.add_parser("compare", help="compare optimizers on one problem")
    compare.add_argument("--setting", default="S2", choices=list_settings())
    compare.add_argument("--bandwidth", type=float, default=16.0)
    compare.add_argument("--task", default="mix", choices=[t.value for t in TaskType])
    compare.add_argument("--optimizers", nargs="+", default=["herald-like", "ai-mt-like", "stdga", "magma"])
    compare.add_argument("--scale", default=None, choices=list_scales())
    _add_seed_option(compare)
    _add_eval_backend_options(compare)
    _add_trace_option(compare)
    compare.set_defaults(func=_cmd_compare)

    experiment = subparsers.add_parser("experiment", help="run one registered scenario")
    experiment.add_argument("name", choices=list_scenarios())
    experiment.add_argument("--scale", default=None, choices=list_scales())
    _add_seed_option(experiment)
    _add_eval_backend_options(experiment)
    _add_warm_store_option(experiment)
    _add_trace_option(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    campaign = subparsers.add_parser(
        "campaign", help="run scenarios as one resumable stream of search cells"
    )
    campaign.add_argument(
        "scenarios", nargs="*", metavar="SCENARIO",
        help=f"registered scenario names to include (available: {', '.join(list_scenarios())})",
    )
    campaign.add_argument(
        "--grid", default=None, metavar="FILE",
        help="JSON file describing an ad-hoc grid scenario "
        "(settings/bandwidths/tasks/methods/objectives/seeds/group_size/budget)",
    )
    campaign.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shorthand for '--eval-backend parallel --eval-workers N' (when N > 1)",
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="skip cells whose fingerprints are already in the --out store",
    )
    campaign.add_argument(
        "--out", default="campaign_results.jsonl", metavar="URL",
        help="results store: a path or jsonl:/sqlite:/tcp:// URL "
        "(default: campaign_results.jsonl)",
    )
    campaign.add_argument("--scale", default=None, choices=list_scales())
    _add_seed_option(campaign)
    campaign.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="run every cell under N seed replicates (seeds 0..N-1) and print "
        "per-cell mean ± std plus cross-seed winner agreement",
    )
    _add_eval_backend_options(campaign)
    _add_warm_store_option(campaign)
    _add_trace_option(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    eval_worker = subparsers.add_parser(
        "eval-worker",
        help="run one RPC evaluation worker (the remote half of --eval-backend rpc)",
    )
    eval_worker.add_argument(
        "--listen", default="127.0.0.1:9123", metavar="HOST:PORT",
        help="address to listen on (default: 127.0.0.1:9123; port 0 picks a free port)",
    )
    eval_worker.add_argument(
        "--token", default=None, metavar="TOKEN",
        help="shared auth token coordinators must present "
        "(default: the REPRO_RPC_TOKEN environment variable)",
    )
    eval_worker.set_defaults(func=_cmd_eval_worker)

    serve = subparsers.add_parser(
        "serve", help="run the mapping service behind a localhost HTTP JSON API"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument(
        "--store", default="solutions.jsonl", metavar="URL",
        help="persistent solution store: a path or jsonl:/sqlite:/tcp:// URL "
        "(default: solutions.jsonl; shared backends let several replicas "
        "answer from one store — see docs/SERVICE.md)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker threads executing queued searches (default: 2)",
    )
    serve.add_argument(
        "--replica-id", default=None, metavar="NAME",
        help="identity this replica reports on /healthz (default: hostname:pid)",
    )
    serve.add_argument("--scale", default=None, choices=list_scales())
    _add_eval_backend_options(serve)
    _add_warm_store_option(serve)
    _add_trace_option(serve)
    serve.set_defaults(func=_cmd_serve)

    store = subparsers.add_parser(
        "store", help="manage pluggable store backends (docs/SERVICE.md)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_serve = store_sub.add_parser(
        "serve",
        help="serve a local store to the network (the tcp:// backend's server)",
    )
    store_serve.add_argument(
        "--listen", default="127.0.0.1:9917", metavar="HOST:PORT",
        help="address to listen on (default: 127.0.0.1:9917; port 0 picks a free port)",
    )
    store_serve.add_argument(
        "--backing", default="sqlite:store.sqlite3", metavar="URL",
        help="local store the server persists through: a jsonl:/sqlite: URL "
        "or a bare path meaning jsonl: (default: sqlite:store.sqlite3)",
    )
    store_serve.add_argument(
        "--token", default=None, metavar="TOKEN",
        help="shared auth token clients must present "
        "(default: the REPRO_RPC_TOKEN environment variable)",
    )
    store_serve.set_defaults(func=_cmd_store_serve)
    store_compact = store_sub.add_parser(
        "compact", help="bound a store: keep best per fingerprint, newest N, size cap"
    )
    store_compact.add_argument("store", metavar="URL", help="store path or URL to compact")
    store_compact.add_argument(
        "--max-records", type=int, default=None, metavar="N",
        help="keep only the newest N surviving records",
    )
    store_compact.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="drop oldest survivors until the rendered store fits BYTES",
    )
    store_compact.add_argument(
        "--no-keep-best", action="store_true",
        help="skip best-per-fingerprint dedup (only apply the size/count bounds)",
    )
    store_compact.set_defaults(func=_cmd_store_compact)
    store_info = store_sub.add_parser(
        "info", help="print a JSON summary of a store (any backend URL)"
    )
    store_info.add_argument("store", metavar="URL", help="store path or URL to inspect")
    store_info.set_defaults(func=_cmd_store_info)

    submit = subparsers.add_parser(
        "submit", help="submit one mapping request to a running service"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8787")
    submit.add_argument("--setting", default="S2", choices=list_settings())
    submit.add_argument("--bandwidth", type=float, default=16.0)
    submit.add_argument("--task", default="mix", choices=[t.value for t in TaskType])
    submit.add_argument("--objective", default="throughput", choices=list_objectives())
    submit.add_argument("--optimizer", default="magma")
    _add_seed_option(submit)
    submit.add_argument("--group-size", type=int, default=None)
    submit.add_argument("--budget", type=int, default=None)
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print the result",
    )
    submit.add_argument("--poll", type=float, default=0.5, metavar="SECONDS")
    submit.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS")
    submit.set_defaults(func=_cmd_submit)

    metrics = subparsers.add_parser(
        "metrics",
        help="dump metrics in the Prometheus text format (docs/OBSERVABILITY.md)",
    )
    metrics.add_argument(
        "--url", default=None, metavar="URL",
        help="scrape GET /metrics of a running service instead of this process's registry",
    )
    metrics.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS")
    metrics.set_defaults(func=_cmd_metrics)

    trace = subparsers.add_parser(
        "trace", help="inspect recorded JSONL traces (docs/OBSERVABILITY.md)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize", help="render a trace as a per-phase timeline table"
    )
    trace_summarize.add_argument("path", metavar="TRACE.jsonl")
    trace_summarize.set_defaults(func=_cmd_trace_summarize)

    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant checkers (docs/STATIC_ANALYSIS.md)",
    )
    from repro.tools.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
