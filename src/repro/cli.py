"""Command-line interface for the MAGMA reproduction.

Examples
--------
List the available building blocks::

    repro-magma list

Search a mapping for a Mix workload on the S2 accelerator with MAGMA::

    repro-magma search --setting S2 --bandwidth 16 --task mix --optimizer magma

Run one of the paper's experiments (figure / table) at a chosen scale::

    repro-magma experiment fig8 --scale small

Fitness evaluation defaults to the vectorized ``batch`` backend; pass
``--eval-backend scalar`` to ``search``/``compare`` to force the
one-encoding-at-a-time reference oracle (bit-identical, much slower), or
``--eval-backend parallel`` to shard the batch sweep across worker processes
(``--eval-workers N`` sizes the pool, default one per CPU core)::

    repro-magma search --setting S2 --task mix --eval-backend scalar
    repro-magma search --setting S2 --task mix --eval-backend parallel --eval-workers 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.accelerator import build_setting, list_settings
from repro.analysis.gantt import render_ascii_gantt
from repro.analysis.reporting import ComparisonReport
from repro.core.evaluator import DEFAULT_EVAL_BACKEND, EVAL_BACKENDS
from repro.core.framework import M3E
from repro.experiments import (
    get_scale,
    run_fig7_job_analysis,
    run_fig8_homogeneous,
    run_fig9_heterogeneous,
    run_fig10_exploration,
    run_fig11_convergence,
    run_fig12_bw_sweep,
    run_fig13_subaccel_combinations,
    run_fig14_flexible,
    run_fig15_schedule_visualization,
    run_fig16_operator_ablation,
    run_fig17_group_size,
    run_table5_warm_start,
    run_method_comparison,
)
from repro.optimizers import list_optimizers
from repro.utils.tables import format_table
from repro.workloads import TaskType, build_task_workload, list_models

_EXPERIMENTS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "fig7": run_fig7_job_analysis,
    "fig8": run_fig8_homogeneous,
    "fig9": run_fig9_heterogeneous,
    "fig10": run_fig10_exploration,
    "fig11": run_fig11_convergence,
    "fig12": run_fig12_bw_sweep,
    "fig13": run_fig13_subaccel_combinations,
    "fig14": run_fig14_flexible,
    "fig15": run_fig15_schedule_visualization,
    "fig16": run_fig16_operator_ablation,
    "fig17": run_fig17_group_size,
    "table5": run_table5_warm_start,
}


def _cmd_list(_: argparse.Namespace) -> int:
    """Print the registered models, accelerator settings, and optimizers."""
    print("Accelerator settings:", ", ".join(list_settings()))
    print("Optimizers:", ", ".join(list_optimizers()))
    print("Experiments:", ", ".join(sorted(_EXPERIMENTS)))
    print("Models:")
    for name in list_models():
        print(f"  - {name}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    """Run a single mapping search and print the result summary."""
    platform = build_setting(args.setting, args.bandwidth)
    task = TaskType(args.task)
    group = build_task_workload(
        task,
        group_size=args.group_size,
        seed=args.seed,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    explorer = M3E(
        platform,
        sampling_budget=args.budget,
        eval_backend=args.eval_backend,
        eval_workers=args.eval_workers,
    )
    result = explorer.search(group, optimizer=args.optimizer, seed=args.seed)
    print(platform.describe())
    print(
        f"optimizer={result.optimizer_name} throughput={result.throughput_gflops:.2f} GFLOP/s "
        f"makespan={result.schedule.makespan_cycles:.3e} cycles samples={result.samples_used}"
    )
    if args.show_schedule:
        print(render_ascii_gantt(result.schedule, group))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Compare several optimizers on one problem and print a table."""
    scale = get_scale(args.scale)
    results = run_method_comparison(
        args.setting,
        args.bandwidth,
        TaskType(args.task),
        methods=args.optimizers,
        scale=scale,
        seed=args.seed,
        eval_backend=args.eval_backend,
        eval_workers=args.eval_workers,
    )
    report = ComparisonReport(
        title=f"{args.task} on {args.setting} (BW={args.bandwidth} GB/s, scale={scale.name})"
    )
    for name, result in results.items():
        report.add(result, name=name)
    print(report.to_text())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    """Run one of the paper's experiments and print the result as JSON."""
    runner = _EXPERIMENTS[args.name]
    scale = get_scale(args.scale)
    kwargs: Dict[str, Any] = {}
    if args.name != "fig7":
        kwargs["scale"] = scale
    output = runner(**kwargs)
    print(json.dumps(_jsonable(output), indent=2, sort_keys=True))
    return 0


def _jsonable(value: Any) -> Any:
    """Convert experiment outputs (numpy arrays, dataclasses) into JSON-safe values."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if hasattr(value, "__dict__") and not isinstance(value, (str, bytes)):
        try:
            return {k: _jsonable(v) for k, v in vars(value).items()}
        except TypeError:
            return str(value)
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro-magma", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list models, settings, optimizers, experiments")
    list_parser.set_defaults(func=_cmd_list)

    search = subparsers.add_parser("search", help="run one mapping search")
    search.add_argument("--setting", default="S2", choices=list_settings())
    search.add_argument("--bandwidth", type=float, default=16.0)
    search.add_argument("--task", default="mix", choices=[t.value for t in TaskType])
    search.add_argument("--optimizer", default="magma")
    search.add_argument("--group-size", type=int, default=100)
    search.add_argument("--budget", type=int, default=10_000)
    search.add_argument("--seed", type=int, default=0)
    search.add_argument(
        "--eval-backend",
        default=DEFAULT_EVAL_BACKEND,
        choices=list(EVAL_BACKENDS),
        help="fitness evaluation path: vectorized 'batch' (default), multi-process "
        "'parallel', or the 'scalar' oracle",
    )
    search.add_argument(
        "--eval-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --eval-backend parallel (default: one per CPU core)",
    )
    search.add_argument("--show-schedule", action="store_true")
    search.set_defaults(func=_cmd_search)

    compare = subparsers.add_parser("compare", help="compare optimizers on one problem")
    compare.add_argument("--setting", default="S2", choices=list_settings())
    compare.add_argument("--bandwidth", type=float, default=16.0)
    compare.add_argument("--task", default="mix", choices=[t.value for t in TaskType])
    compare.add_argument("--optimizers", nargs="+", default=["herald-like", "ai-mt-like", "stdga", "magma"])
    compare.add_argument("--scale", default=None)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--eval-backend",
        default=DEFAULT_EVAL_BACKEND,
        choices=list(EVAL_BACKENDS),
        help="fitness evaluation path: vectorized 'batch' (default), multi-process "
        "'parallel', or the 'scalar' oracle",
    )
    compare.add_argument(
        "--eval-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --eval-backend parallel (default: one per CPU core)",
    )
    compare.set_defaults(func=_cmd_compare)

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--scale", default=None)
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
