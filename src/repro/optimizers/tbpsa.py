"""Test-based Population Size Adaptation baseline (TBPSA in Table IV).

TBPSA is an evolution strategy designed for noisy objectives: it keeps a
Gaussian search distribution whose mean is re-estimated from the best half of
recent samples and grows its population (averaging window) when progress
stalls, which is the "test-based population size adaptation" the name refers
to.  The paper initialises the population size at 50 and lets it evolve.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers.base import BaseOptimizer, ranked_finite
from repro.utils.rng import SeedLike


class TBPSAOptimizer(BaseOptimizer):
    """Evolution strategy with stagnation-triggered population-size growth."""

    default_name = "TBPSA"

    def __init__(
        self,
        seed: SeedLike = None,
        initial_population_size: int = 50,
        max_population_size: int = 400,
        initial_sigma: float = 0.3,
        growth_factor: float = 1.5,
        stagnation_generations: int = 5,
        name: Optional[str] = None,
    ):
        super().__init__(seed=seed, name=name)
        if initial_population_size < 4:
            raise OptimizationError("TBPSA needs an initial population of at least 4")
        if growth_factor <= 1.0:
            raise OptimizationError(f"growth_factor must exceed 1.0, got {growth_factor}")
        self.initial_population_size = initial_population_size
        self.max_population_size = max_population_size
        self.initial_sigma = initial_sigma
        self.growth_factor = growth_factor
        self.stagnation_generations = stagnation_generations

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        codec = evaluator.codec
        dimension = codec.encoding_length
        scale = np.concatenate(
            [
                np.full(codec.genome_length, max(1, codec.num_sub_accelerators - 1)),
                np.ones(codec.genome_length),
            ]
        )

        if initial_encodings is not None:
            mean = codec.repair(np.atleast_2d(np.asarray(initial_encodings, dtype=float))[0]) / scale
        else:
            mean = self.rng.random(dimension)
        sigma = self.initial_sigma
        population_size = self.initial_population_size

        best_history: Deque[float] = deque(maxlen=self.stagnation_generations)
        generations = 0
        growths = 0

        while not evaluator.budget_exhausted:
            z = self.rng.standard_normal((population_size, dimension))
            samples = np.clip(mean + sigma * z, 0.0, 1.0)
            encodings = samples * scale
            fitnesses = evaluator.evaluate_population(encodings)

            # Budget truncation leaves -inf placeholders for unevaluated
            # samples; the mean/sigma re-estimation must only average rows
            # whose fitness was actually measured.
            order = ranked_finite(fitnesses)
            if order.size == 0:
                break
            elite_count = max(2, population_size // 2)
            elite = samples[order[:elite_count]]
            mean = elite.mean(axis=0)
            sigma = float(np.clip(elite.std(axis=0).mean(), 0.02, 0.5))

            generation_best = float(fitnesses[order[0]])
            if best_history and generation_best <= max(best_history) + 1e-12:
                # No measurable progress: grow the averaging population, the
                # TBPSA response to a noisy / flat neighbourhood.
                if (
                    len(best_history) == self.stagnation_generations
                    and population_size < self.max_population_size
                ):
                    population_size = min(
                        self.max_population_size, int(population_size * self.growth_factor)
                    )
                    growths += 1
                    best_history.clear()
            best_history.append(generation_best)
            generations += 1

        self.metadata.update(
            {
                "generations": generations,
                "final_population_size": population_size,
                "population_growths": growths,
                "final_sigma": sigma,
            }
        )
        return evaluator.best_encoding
