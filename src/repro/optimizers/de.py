"""Differential Evolution baseline (DE in Table IV of the paper).

Classic generational ``DE/rand-to-best/1/bin`` with the paper's weights (0.8
for both the local and global differential vectors).  DE operates on the raw
real-valued encoding; the codec's repair step projects candidates back into
the valid mapping domain before decoding.  All trial vectors of a generation
are built first and then evaluated as one population, so the evaluator's
batch backend simulates the whole generation in a single vectorized sweep.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers.base import BaseOptimizer
from repro.utils.rng import SeedLike


class DifferentialEvolutionOptimizer(BaseOptimizer):
    """DE/rand-to-best/1 with binomial crossover."""

    default_name = "DE"

    def __init__(
        self,
        seed: SeedLike = None,
        population_size: int = 100,
        local_weight: float = 0.8,
        global_weight: float = 0.8,
        crossover_probability: float = 0.9,
        name: Optional[str] = None,
    ):
        super().__init__(seed=seed, name=name)
        if population_size < 4:
            raise OptimizationError("DE needs a population of at least 4 individuals")
        if not (0.0 <= crossover_probability <= 1.0):
            raise OptimizationError("crossover_probability must be in [0, 1]")
        self.population_size = population_size
        self.local_weight = local_weight
        self.global_weight = global_weight
        self.crossover_probability = crossover_probability

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        codec = evaluator.codec
        population = self._initial_population(evaluator, self.population_size, initial_encodings)
        fitnesses = evaluator.evaluate_population(population)
        dimension = codec.encoding_length
        generations = 0

        while not evaluator.budget_exhausted:
            pop_size = len(population)
            best_index = int(np.argmax(fitnesses))
            best = population[best_index]
            trials = np.empty_like(population)
            for i in range(pop_size):
                candidates = [idx for idx in range(pop_size) if idx != i]
                r1, r2 = self.rng.choice(candidates, size=2, replace=False)
                # rand-to-best mutation: pull towards the population best
                # (global weight) plus a scaled random difference (local weight).
                mutant = (
                    population[i]
                    + self.global_weight * (best - population[i])
                    + self.local_weight * (population[int(r1)] - population[int(r2)])
                )
                # Binomial crossover with a guaranteed mutant gene.
                cross_mask = self.rng.random(dimension) < self.crossover_probability
                cross_mask[int(self.rng.integers(0, dimension))] = True
                trials[i] = codec.repair(np.where(cross_mask, mutant, population[i]))
            trial_fitnesses = evaluator.evaluate_population(trials)
            # Trials left unevaluated by budget exhaustion carry -inf and must
            # never replace an incumbent (even an -inf one from a truncated
            # initial evaluation).
            improved = (trial_fitnesses >= fitnesses) & np.isfinite(trial_fitnesses)
            population[improved] = trials[improved]
            fitnesses[improved] = trial_fitnesses[improved]
            generations += 1

        self.metadata["generations"] = generations
        best_index = int(np.argmax(fitnesses))
        if evaluator.best_encoding is not None and evaluator.best_fitness >= fitnesses[best_index]:
            return evaluator.best_encoding
        return population[best_index]
