"""AI-MT-like manual mapper.

AI-MT (Baek et al.) targets *homogeneous* multi-core accelerators.  Its two
ingredients are (i) spreading the job count evenly across the identical cores
and (ii) interleaving memory-intensive layers with compute-intensive layers
on each core so that data fetches of the former overlap with the compute of
the latter.

Because the heuristic assumes every core is identical, it does not consult
per-core latencies when assigning jobs.  On heterogeneous platforms this
sends an equal share of the work to the slow low-bandwidth core, which is why
the paper reports AI-MT-like falling 39-52x behind on the heterogeneous Large
settings while remaining competitive on homogeneous ones.

As with Herald, this re-implements the published strategy ("AI-MT-like"),
not the original code.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.encoding import Mapping
from repro.core.evaluator import MappingEvaluator
from repro.optimizers.base import BaseOptimizer
from repro.utils.rng import SeedLike


class AIMTLikeMapper(BaseOptimizer):
    """Count-balanced mapper with compute/memory interleaving per core."""

    default_name = "AI-MT-like"

    def __init__(self, seed: SeedLike = None, name: Optional[str] = None):
        super().__init__(seed=seed, name=name)

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        table = evaluator.table
        num_jobs = table.num_jobs
        num_cores = evaluator.codec.num_sub_accelerators
        bandwidth = table.required_bw_gbps[:, :num_cores]

        # Rank jobs by their average bandwidth intensity (the heuristic's
        # memory-intensive vs compute-intensive classification).
        mean_bw = bandwidth.mean(axis=1)
        by_intensity = np.argsort(mean_bw)

        # Round-robin the ranked jobs across cores: every core receives an
        # equal count and a similar compute/memory mix, as AI-MT assumes
        # identical cores.
        per_core: List[List[int]] = [[] for _ in range(num_cores)]
        for position, job in enumerate(by_intensity):
            per_core[position % num_cores].append(int(job))

        # Within a core, interleave the least and most memory-intensive jobs
        # (compute-heavy job next to memory-heavy job) so fetches overlap
        # with compute.
        assignments: List[List[int]] = []
        for jobs_on_core in per_core:
            ordered = sorted(jobs_on_core, key=lambda j: mean_bw[j])
            interleaved: List[int] = []
            low, high = 0, len(ordered) - 1
            take_low = True
            while low <= high:
                if take_low:
                    interleaved.append(ordered[low])
                    low += 1
                else:
                    interleaved.append(ordered[high])
                    high -= 1
                take_low = not take_low
            assignments.append(interleaved)

        mapping = Mapping(
            assignments=tuple(tuple(core_jobs) for core_jobs in assignments),
            num_jobs=num_jobs,
        )
        encoding = evaluator.codec.encode(mapping)
        if not evaluator.budget_exhausted:
            evaluator.evaluate(encoding)
        self.metadata["jobs_per_core"] = mapping.jobs_per_core()
        return encoding
