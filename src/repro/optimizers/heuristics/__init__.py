"""Manual-designed baseline mappers (Herald-like and AI-MT-like)."""

from repro.optimizers.heuristics.herald import HeraldLikeMapper
from repro.optimizers.heuristics.aimt import AIMTLikeMapper

__all__ = ["HeraldLikeMapper", "AIMTLikeMapper"]
