"""Herald-like manual mapper.

Herald (Kwon et al.) manually maps multi-DNN workloads onto heterogeneous
sub-accelerators by exploiting each layer's dataflow affinity: every layer is
placed on the core whose dataflow executes it fastest, with ties broken in
favour of the least-loaded core.  Within a core, Herald launches the most
demanding (memory-intensive) layers first so their data movement starts as
early as possible — a sensible strategy on a dedicated memory system, but one
that concentrates bandwidth pressure at the start of the group when the
system bandwidth is shared, which is exactly the behaviour the paper
visualises in Fig. 15(a-b).

This is a re-implementation of the *strategy*, not of Herald's code, hence
"Herald-like" — the same caveat the paper applies to its own baseline.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.encoding import Mapping
from repro.core.evaluator import MappingEvaluator
from repro.optimizers.base import BaseOptimizer
from repro.utils.rng import SeedLike


class HeraldLikeMapper(BaseOptimizer):
    """Dataflow-affinity greedy mapper for heterogeneous platforms."""

    default_name = "Herald-like"

    def __init__(self, seed: SeedLike = None, name: Optional[str] = None):
        super().__init__(seed=seed, name=name)

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        table = evaluator.table
        num_jobs = table.num_jobs
        num_cores = evaluator.codec.num_sub_accelerators

        latency = table.latency_cycles[:, :num_cores]
        bandwidth = table.required_bw_gbps[:, :num_cores]

        # Greedy earliest-finish assignment driven by per-core affinity:
        # process the heaviest jobs first (longest best-case latency) so the
        # load balance decision for them is made while cores are still empty.
        best_case = latency.min(axis=1)
        job_order = np.argsort(best_case)[::-1]
        core_load = np.zeros(num_cores)
        assignment = np.zeros(num_jobs, dtype=int)
        for job in job_order:
            finish_times = core_load + latency[job]
            chosen = int(np.argmin(finish_times))
            assignment[job] = chosen
            core_load[chosen] += latency[job, chosen]

        # Within each core, launch the most bandwidth-hungry jobs first
        # (Herald's prefetch-early strategy).
        assignments: List[List[int]] = [[] for _ in range(num_cores)]
        for core in range(num_cores):
            jobs_on_core = np.flatnonzero(assignment == core)
            ordered = jobs_on_core[np.argsort(bandwidth[jobs_on_core, core])[::-1]]
            assignments[core] = [int(j) for j in ordered]

        mapping = Mapping(
            assignments=tuple(tuple(core_jobs) for core_jobs in assignments),
            num_jobs=num_jobs,
        )
        encoding = evaluator.codec.encode(mapping)
        if not evaluator.budget_exhausted:
            evaluator.evaluate(encoding)
        self.metadata["jobs_per_core"] = mapping.jobs_per_core()
        return encoding
