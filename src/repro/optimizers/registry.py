"""Optimizer registry: name -> constructor, mirroring Table IV of the paper."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import OptimizationError
from repro.optimizers.base import BaseOptimizer
from repro.optimizers.cmaes import CMAESOptimizer
from repro.optimizers.de import DifferentialEvolutionOptimizer
from repro.optimizers.heuristics.aimt import AIMTLikeMapper
from repro.optimizers.heuristics.herald import HeraldLikeMapper
from repro.optimizers.magma import (
    MagmaOptimizer,
    magma_mutation_crossover_gen,
    magma_mutation_only,
)
from repro.optimizers.pso import PSOOptimizer
from repro.optimizers.random_search import RandomSearchOptimizer
from repro.optimizers.rl.a2c import A2COptimizer
from repro.optimizers.rl.ppo import PPOOptimizer
from repro.optimizers.stdga import StandardGAOptimizer
from repro.optimizers.tbpsa import TBPSAOptimizer
from repro.utils.rng import SeedLike

#: Factory signature: ``factory(seed=..., **options) -> BaseOptimizer``.
OptimizerFactory = Callable[..., BaseOptimizer]

OPTIMIZER_REGISTRY: Dict[str, OptimizerFactory] = {
    # Manual baselines
    "herald": HeraldLikeMapper,
    "herald-like": HeraldLikeMapper,
    "aimt": AIMTLikeMapper,
    "ai-mt-like": AIMTLikeMapper,
    # Black-box optimization baselines
    "stdga": StandardGAOptimizer,
    "de": DifferentialEvolutionOptimizer,
    "cma": CMAESOptimizer,
    "cma-es": CMAESOptimizer,
    "pso": PSOOptimizer,
    "tbpsa": TBPSAOptimizer,
    "random": RandomSearchOptimizer,
    # Reinforcement learning baselines
    "a2c": A2COptimizer,
    "rl-a2c": A2COptimizer,
    "ppo2": PPOOptimizer,
    "rl-ppo2": PPOOptimizer,
    # This work
    "magma": MagmaOptimizer,
    "magma-mut": magma_mutation_only,
    "magma-mut-gen": magma_mutation_crossover_gen,
}


def build_optimizer(name: str, seed: SeedLike = None, **options: object) -> BaseOptimizer:
    """Construct a registered optimizer by (case-insensitive) name."""
    key = str(name).lower()
    if key not in OPTIMIZER_REGISTRY:
        raise OptimizationError(
            f"unknown optimizer {name!r}; available: {sorted(set(OPTIMIZER_REGISTRY))}"
        )
    return OPTIMIZER_REGISTRY[key](seed=seed, **options)


def is_rl_method(name: str) -> bool:
    """Whether *name* resolves to a reinforcement-learning optimizer.

    Budget policies use this to apply the reduced RL sampling budget.  The
    check resolves the (case-insensitive) name or alias through the registry
    and inspects the factory's ``is_rl`` flag, so a newly registered RL
    optimizer — or a new alias of an existing one — is picked up without
    updating any hard-coded name list.  Unknown names are simply "not RL";
    they fail later, at construction time, with a proper error.
    """
    factory = OPTIMIZER_REGISTRY.get(str(name).lower())
    return bool(getattr(factory, "is_rl", False))


def list_optimizers() -> List[str]:
    """Canonical optimizer names (without aliases)."""
    canonical = {
        "herald-like",
        "ai-mt-like",
        "stdga",
        "de",
        "cma",
        "pso",
        "tbpsa",
        "random",
        "a2c",
        "ppo2",
        "magma",
        "magma-mut",
        "magma-mut-gen",
    }
    return sorted(canonical)


#: The ten methods compared in the paper's main figures (Fig. 8 and Fig. 9),
#: in the order the figures list them.
PAPER_COMPARISON_METHODS: List[str] = [
    "herald-like",
    "ai-mt-like",
    "pso",
    "cma",
    "de",
    "tbpsa",
    "stdga",
    "a2c",
    "ppo2",
    "magma",
]
