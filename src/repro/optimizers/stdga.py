"""Standard genetic algorithm baseline (stdGA in Table IV of the paper).

The standard GA uses the classic single-point crossover over the whole
encoding and per-gene mutation, with the paper's rates (mutation 0.1,
crossover 0.1).  Its lack of structure relative to MAGMA's operators is what
the paper's ablation highlights.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers.base import BaseOptimizer
from repro.utils.rng import SeedLike


class StandardGAOptimizer(BaseOptimizer):
    """Plain generational GA with single-point crossover and uniform mutation."""

    default_name = "stdGA"

    def __init__(
        self,
        seed: SeedLike = None,
        population_size: int = 100,
        mutation_rate: float = 0.1,
        crossover_rate: float = 0.1,
        elite_ratio: float = 0.1,
        name: Optional[str] = None,
    ):
        super().__init__(seed=seed, name=name)
        if population_size < 2:
            raise OptimizationError("population_size must be at least 2")
        if not (0.0 <= mutation_rate <= 1.0 and 0.0 <= crossover_rate <= 1.0):
            raise OptimizationError("mutation_rate and crossover_rate must be in [0, 1]")
        if not (0.0 < elite_ratio < 1.0):
            raise OptimizationError(f"elite_ratio must be in (0, 1), got {elite_ratio}")
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.elite_ratio = elite_ratio

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        population = self._initial_population(evaluator, self.population_size, initial_encodings)
        fitnesses = evaluator.evaluate_population(population)
        generations = 0

        while not evaluator.budget_exhausted:
            order = np.argsort(fitnesses)[::-1]
            population, fitnesses = population[order], fitnesses[order]
            # Size elites and children from the actual population, which can
            # exceed population_size when warm-start seeds were injected.
            pop_size = len(population)
            num_elites = max(1, int(round(self.elite_ratio * pop_size)))
            children: List[np.ndarray] = []
            while len(children) < pop_size - num_elites:
                dad, mom = self._tournament(population, fitnesses), self._tournament(population, fitnesses)
                son, daughter = self._crossover(dad, mom, evaluator)
                children.append(self._mutate(son, evaluator))
                if len(children) < pop_size - num_elites:
                    children.append(self._mutate(daughter, evaluator))
            child_array = np.asarray(children)
            child_fitnesses = evaluator.evaluate_population(child_array)
            population = np.vstack([population[:num_elites], child_array])
            fitnesses = np.concatenate([fitnesses[:num_elites], child_fitnesses])
            generations += 1

        self.metadata["generations"] = generations
        best = int(np.argmax(fitnesses))
        if evaluator.best_encoding is not None and evaluator.best_fitness >= fitnesses[best]:
            return evaluator.best_encoding
        return population[best]

    # ------------------------------------------------------------------
    def _tournament(self, population: np.ndarray, fitnesses: np.ndarray, k: int = 3) -> np.ndarray:
        """k-way tournament selection."""
        contenders = self.rng.integers(0, len(population), size=min(k, len(population)))
        winner = contenders[int(np.argmax(fitnesses[contenders]))]
        return population[int(winner)]

    def _crossover(
        self, dad: np.ndarray, mom: np.ndarray, evaluator: MappingEvaluator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Single-point crossover over the full encoding."""
        son, daughter = dad.copy(), mom.copy()
        if self.rng.random() < self.crossover_rate and evaluator.codec.encoding_length > 1:
            pivot = int(self.rng.integers(1, evaluator.codec.encoding_length))
            son[pivot:], daughter[pivot:] = daughter[pivot:].copy(), son[pivot:].copy()
        return son, daughter

    def _mutate(self, encoding: np.ndarray, evaluator: MappingEvaluator) -> np.ndarray:
        """Uniform per-gene mutation to a random valid value."""
        codec = evaluator.codec
        child = encoding.copy()
        genome = codec.genome_length
        mask = self.rng.random(codec.encoding_length) < self.mutation_rate
        selection_hits = np.flatnonzero(mask[:genome])
        priority_hits = np.flatnonzero(mask[genome:])
        if selection_hits.size:
            child[selection_hits] = self.rng.integers(0, codec.num_sub_accelerators, size=selection_hits.size)
        if priority_hits.size:
            child[genome + priority_hits] = self.rng.random(priority_hits.size)
        return child
