"""Particle Swarm Optimization baseline (PSO in Table IV of the paper).

Standard global-best PSO with the paper's hyper-parameters: weighting 0.8 for
the global best, 0.8 for the particle's own best, and inertia/momentum 1.6.
Because an inertia above 1 makes the raw update divergent, velocities are
clamped to a fraction of the search-space width, the standard remedy used in
discrete/clamped PSO variants.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers.base import BaseOptimizer
from repro.utils.rng import SeedLike


class PSOOptimizer(BaseOptimizer):
    """Global-best particle swarm optimizer on the encoded mapping space."""

    default_name = "PSO"

    def __init__(
        self,
        seed: SeedLike = None,
        population_size: int = 100,
        global_best_weight: float = 0.8,
        personal_best_weight: float = 0.8,
        momentum: float = 1.6,
        velocity_clamp: float = 0.25,
        name: Optional[str] = None,
    ):
        super().__init__(seed=seed, name=name)
        if population_size < 2:
            raise OptimizationError("PSO needs at least 2 particles")
        if velocity_clamp <= 0:
            raise OptimizationError(f"velocity_clamp must be positive, got {velocity_clamp}")
        self.population_size = population_size
        self.global_best_weight = global_best_weight
        self.personal_best_weight = personal_best_weight
        self.momentum = momentum
        self.velocity_clamp = velocity_clamp

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        codec = evaluator.codec
        dimension = codec.encoding_length
        upper = np.concatenate(
            [
                np.full(codec.genome_length, float(codec.num_sub_accelerators - 1)),
                np.ones(codec.genome_length),
            ]
        )
        lower = np.zeros(dimension)
        span = np.maximum(upper - lower, 1e-9)

        positions = self._initial_population(evaluator, self.population_size, initial_encodings)
        num_particles = len(positions)  # can exceed population_size with warm-start seeds
        velocities = (self.rng.random((num_particles, dimension)) - 0.5) * span * 0.1
        fitnesses = evaluator.evaluate_population(positions)

        personal_best = positions.copy()
        personal_best_fitness = fitnesses.copy()
        global_index = int(np.argmax(fitnesses))
        global_best = positions[global_index].copy()
        global_best_fitness = float(fitnesses[global_index])

        iterations = 0
        clamp = self.velocity_clamp * span
        while not evaluator.budget_exhausted:
            r_personal = self.rng.random((num_particles, dimension))
            r_global = self.rng.random((num_particles, dimension))
            velocities = (
                self.momentum * velocities
                + self.personal_best_weight * r_personal * (personal_best - positions)
                + self.global_best_weight * r_global * (global_best - positions)
            )
            velocities = np.clip(velocities, -clamp, clamp)
            positions = np.clip(positions + velocities, lower, upper)

            fitnesses = evaluator.evaluate_population(positions)
            improved = fitnesses > personal_best_fitness
            personal_best[improved] = positions[improved]
            personal_best_fitness[improved] = fitnesses[improved]
            best_index = int(np.argmax(personal_best_fitness))
            if personal_best_fitness[best_index] > global_best_fitness:
                global_best_fitness = float(personal_best_fitness[best_index])
                global_best = personal_best[best_index].copy()
            iterations += 1

        self.metadata.update({"iterations": iterations, "global_best_fitness": global_best_fitness})
        if evaluator.best_encoding is not None and evaluator.best_fitness >= global_best_fitness:
            return evaluator.best_encoding
        return global_best
