"""Optimization algorithms supported by M3E (Table IV of the paper).

The package contains MAGMA (the paper's contribution), the black-box
optimization baselines (stdGA, DE, CMA-ES, PSO, TBPSA, random search), the
reinforcement-learning baselines (A2C, PPO2), the manual mappers
(Herald-like, AI-MT-like), the warm-start engine, and the hyper-parameter
tuner.
"""

from repro.optimizers.base import BaseOptimizer
from repro.optimizers.magma import MagmaConfig, MagmaOptimizer, magma_mutation_only, magma_mutation_crossover_gen
from repro.optimizers.stdga import StandardGAOptimizer
from repro.optimizers.de import DifferentialEvolutionOptimizer
from repro.optimizers.cmaes import CMAESOptimizer
from repro.optimizers.pso import PSOOptimizer
from repro.optimizers.tbpsa import TBPSAOptimizer
from repro.optimizers.random_search import RandomSearchOptimizer
from repro.optimizers.heuristics import HeraldLikeMapper, AIMTLikeMapper
from repro.optimizers.rl import A2COptimizer, PPOOptimizer
from repro.optimizers.warmstart import WarmStartEngine
from repro.optimizers.hyperparams import HyperParameterSpace, MagmaHyperParameterTuner
from repro.optimizers.registry import (
    OPTIMIZER_REGISTRY,
    PAPER_COMPARISON_METHODS,
    build_optimizer,
    is_rl_method,
    list_optimizers,
)
from repro.optimizers import operators

__all__ = [
    "BaseOptimizer",
    "MagmaConfig",
    "MagmaOptimizer",
    "magma_mutation_only",
    "magma_mutation_crossover_gen",
    "StandardGAOptimizer",
    "DifferentialEvolutionOptimizer",
    "CMAESOptimizer",
    "PSOOptimizer",
    "TBPSAOptimizer",
    "RandomSearchOptimizer",
    "HeraldLikeMapper",
    "AIMTLikeMapper",
    "A2COptimizer",
    "PPOOptimizer",
    "WarmStartEngine",
    "HyperParameterSpace",
    "MagmaHyperParameterTuner",
    "OPTIMIZER_REGISTRY",
    "PAPER_COMPARISON_METHODS",
    "build_optimizer",
    "is_rl_method",
    "list_optimizers",
    "operators",
]
