"""Minimal NumPy neural-network layer stack with manual gradients.

The RL baselines in Table IV use small MLPs (3 layers of 128 units) for the
policy and the critic.  Because the environment has no deep-learning
framework available, this module provides exactly what those agents need: a
fully-connected tanh MLP with forward/backward passes and the two optimizers
the paper configures (RMSProp for A2C, Adam for PPO2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import OptimizationError
from repro.utils.rng import SeedLike, ensure_rng

Parameters = Dict[str, np.ndarray]
Gradients = Dict[str, np.ndarray]


class MLP:
    """Fully-connected network with tanh hidden activations and a linear head."""

    def __init__(self, layer_sizes: Sequence[int], rng: SeedLike = None):
        if len(layer_sizes) < 2:
            raise OptimizationError("an MLP needs at least an input and an output size")
        generator = ensure_rng(rng)
        self.layer_sizes = list(layer_sizes)
        self.params: Parameters = {}
        for i in range(len(layer_sizes) - 1):
            fan_in, fan_out = layer_sizes[i], layer_sizes[i + 1]
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.params[f"W{i}"] = generator.normal(0.0, scale, size=(fan_in, fan_out))
            self.params[f"b{i}"] = np.zeros(fan_out)

    @property
    def num_layers(self) -> int:
        """Number of weight layers."""
        return len(self.layer_sizes) - 1

    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass.  Returns (output, activation cache for backward)."""
        activations = [np.atleast_2d(np.asarray(inputs, dtype=float))]
        for i in range(self.num_layers):
            z = activations[-1] @ self.params[f"W{i}"] + self.params[f"b{i}"]
            if i < self.num_layers - 1:
                activations.append(np.tanh(z))
            else:
                activations.append(z)
        return activations[-1], activations

    def backward(self, grad_output: np.ndarray, activations: List[np.ndarray]) -> Gradients:
        """Backward pass from the gradient of the loss w.r.t. the output."""
        grads: Gradients = {}
        delta = np.atleast_2d(np.asarray(grad_output, dtype=float))
        for i in reversed(range(self.num_layers)):
            grads[f"W{i}"] = activations[i].T @ delta
            grads[f"b{i}"] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self.params[f"W{i}"].T) * (1.0 - activations[i] ** 2)
        return grads


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def clip_gradients(grads: Gradients, max_norm: float) -> Gradients:
    """Scale gradients so their global L2 norm does not exceed *max_norm*."""
    total = np.sqrt(sum(float(np.sum(g**2)) for g in grads.values()))
    if total <= max_norm or total == 0:
        return grads
    factor = max_norm / total
    return {k: g * factor for k, g in grads.items()}


@dataclass
class RMSPropOptimizer:
    """RMSProp parameter update (used by the A2C agent, Table IV)."""

    learning_rate: float = 7e-4
    decay: float = 0.99
    epsilon: float = 1e-5
    _cache: Parameters = field(default_factory=dict)

    def step(self, params: Parameters, grads: Gradients) -> None:
        """Apply one in-place gradient-descent update."""
        for key, grad in grads.items():
            if key not in self._cache:
                self._cache[key] = np.zeros_like(grad)
            self._cache[key] = self.decay * self._cache[key] + (1 - self.decay) * grad**2
            params[key] -= self.learning_rate * grad / (np.sqrt(self._cache[key]) + self.epsilon)


@dataclass
class AdamOptimizer:
    """Adam parameter update (used by the PPO2 agent, Table IV)."""

    learning_rate: float = 2.5e-4
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    _m: Parameters = field(default_factory=dict)
    _v: Parameters = field(default_factory=dict)
    _t: int = 0

    def step(self, params: Parameters, grads: Gradients) -> None:
        """Apply one in-place Adam update."""
        self._t += 1
        for key, grad in grads.items():
            if key not in self._m:
                self._m[key] = np.zeros_like(grad)
                self._v[key] = np.zeros_like(grad)
            self._m[key] = self.beta1 * self._m[key] + (1 - self.beta1) * grad
            self._v[key] = self.beta2 * self._v[key] + (1 - self.beta2) * grad**2
            m_hat = self._m[key] / (1 - self.beta1**self._t)
            v_hat = self._v[key] / (1 - self.beta2**self._t)
            params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
