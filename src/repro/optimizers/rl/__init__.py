"""Reinforcement-learning mappers (A2C and PPO2) built on a NumPy MLP."""

from repro.optimizers.rl.a2c import A2COptimizer
from repro.optimizers.rl.ppo import PPOOptimizer

__all__ = ["A2COptimizer", "PPOOptimizer"]
