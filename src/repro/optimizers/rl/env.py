"""Sequential mapping environment for the RL agents.

The RL agents (A2C and PPO2 in Table IV) formulate the mapping problem as a
sequential decision process: jobs are visited one at a time and the agent
chooses, for the current job, which sub-accelerator to run it on and which
priority bucket to give it.  After the last job the complete encoded mapping
is evaluated by M3E's fitness function, and that fitness is the episode
return (the reward is zero at intermediate steps).

The observation exposes what a scheduler would look at: the current job's
normalised latency and bandwidth profile on each core, the load already
accumulated on each core, the bandwidth demand already committed to each
core, and the episode progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError


@dataclass(frozen=True)
class EnvironmentSpec:
    """Static description of the observation/action spaces."""

    observation_size: int
    num_actions: int
    num_cores: int
    num_priority_buckets: int
    num_jobs: int


class SequentialMappingEnv:
    """Job-by-job mapping construction environment."""

    def __init__(self, evaluator: MappingEvaluator, num_priority_buckets: int = 4):
        if num_priority_buckets <= 0:
            raise OptimizationError(
                f"num_priority_buckets must be positive, got {num_priority_buckets}"
            )
        self.evaluator = evaluator
        self.num_priority_buckets = num_priority_buckets
        self.num_cores = evaluator.codec.num_sub_accelerators
        self.num_jobs = evaluator.codec.num_jobs

        table = evaluator.table
        latency = table.latency_cycles[:, : self.num_cores]
        bandwidth = table.required_bw_gbps[:, : self.num_cores]
        # Log-scale then normalise: latencies span orders of magnitude.
        self._latency_features = self._normalise(np.log1p(latency))
        self._bandwidth_features = self._normalise(np.log1p(bandwidth))
        self._raw_latency = latency

        self._assignment = np.zeros(self.num_jobs, dtype=int)
        self._priority = np.zeros(self.num_jobs)
        self._core_load = np.zeros(self.num_cores)
        self._core_bw = np.zeros(self.num_cores)
        self._step = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _normalise(values: np.ndarray) -> np.ndarray:
        span = values.max() - values.min()
        if span <= 0:
            return np.zeros_like(values)
        return (values - values.min()) / span

    @property
    def spec(self) -> EnvironmentSpec:
        """Observation/action space description for building the networks."""
        return EnvironmentSpec(
            observation_size=4 * self.num_cores + 2,
            num_actions=self.num_cores * self.num_priority_buckets,
            num_cores=self.num_cores,
            num_priority_buckets=self.num_priority_buckets,
            num_jobs=self.num_jobs,
        )

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Start a new episode and return the first observation."""
        self._assignment[:] = 0
        self._priority[:] = 0.0
        self._core_load[:] = 0.0
        self._core_bw[:] = 0.0
        self._step = 0
        return self._observation()

    def step(self, action: int) -> Tuple[Optional[np.ndarray], float, bool]:
        """Apply *action* to the current job.

        Returns ``(next_observation, reward, done)``.  The reward is the
        mapping fitness on the final step and zero otherwise.  The next
        observation is ``None`` when the episode is done.
        """
        if self._step >= self.num_jobs:
            raise OptimizationError("episode already finished; call reset()")
        if not (0 <= action < self.spec.num_actions):
            raise OptimizationError(f"action {action} out of range [0, {self.spec.num_actions})")
        core = action // self.num_priority_buckets
        bucket = action % self.num_priority_buckets
        job = self._step
        self._assignment[job] = core
        # Bucket sets the coarse priority; the per-job offset keeps decoding
        # deterministic and preserves the visit order within a bucket.
        self._priority[job] = (bucket + (job + 1) / (self.num_jobs + 2)) / self.num_priority_buckets
        self._core_load[core] += self._raw_latency[job, core]
        self._core_bw[core] += self.evaluator.table.required_bw_gbps[job, core]
        self._step += 1

        if self._step == self.num_jobs:
            fitness = self.evaluator.evaluate(self.encoding())
            return None, float(fitness), True
        return self._observation(), 0.0, False

    def encoding(self) -> np.ndarray:
        """The encoded mapping built so far (complete only at episode end)."""
        return np.concatenate([self._assignment.astype(float), self._priority])

    # ------------------------------------------------------------------
    def _observation(self) -> np.ndarray:
        job = self._step
        load = self._core_load
        load_norm = load / load.max() if load.max() > 0 else load
        bw = self._core_bw
        bw_norm = bw / bw.max() if bw.max() > 0 else bw
        progress = job / self.num_jobs
        remaining = 1.0 - progress
        return np.concatenate(
            [
                self._latency_features[job],
                self._bandwidth_features[job],
                load_norm,
                bw_norm,
                [progress, remaining],
            ]
        )
