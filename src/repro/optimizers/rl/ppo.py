"""Proximal Policy Optimization (PPO2) mapper — the "RL PPO2" baseline of Table IV.

PPO collects a rollout of complete episodes from the sequential mapping
environment, then performs several epochs of clipped-surrogate updates over
minibatches of the collected (state, action, advantage) samples.
Hyper-parameters follow Table IV: 3-layer MLPs with 128 units, discount 0.99,
clipping range 0.2, learning rate 2.5e-4, Adam.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers.base import BaseOptimizer
from repro.optimizers.rl.env import SequentialMappingEnv
from repro.optimizers.rl.nn import MLP, AdamOptimizer, clip_gradients, softmax
from repro.utils.rng import SeedLike


class PPOOptimizer(BaseOptimizer):
    """Clipped-surrogate PPO over the sequential mapping environment."""

    default_name = "RL PPO2"
    is_rl = True

    def __init__(
        self,
        seed: SeedLike = None,
        hidden_size: int = 128,
        num_hidden_layers: int = 3,
        discount: float = 0.99,
        learning_rate: float = 2.5e-4,
        clip_range: float = 0.2,
        entropy_coefficient: float = 0.01,
        episodes_per_rollout: int = 8,
        update_epochs: int = 4,
        minibatch_size: int = 256,
        num_priority_buckets: int = 4,
        max_grad_norm: float = 5.0,
        name: Optional[str] = None,
    ):
        super().__init__(seed=seed, name=name)
        if not (0.0 < discount <= 1.0):
            raise OptimizationError(f"discount must be in (0, 1], got {discount}")
        if clip_range <= 0:
            raise OptimizationError(f"clip_range must be positive, got {clip_range}")
        self.hidden_size = hidden_size
        self.num_hidden_layers = num_hidden_layers
        self.discount = discount
        self.learning_rate = learning_rate
        self.clip_range = clip_range
        self.entropy_coefficient = entropy_coefficient
        self.episodes_per_rollout = max(1, episodes_per_rollout)
        self.update_epochs = max(1, update_epochs)
        self.minibatch_size = max(8, minibatch_size)
        self.num_priority_buckets = num_priority_buckets
        self.max_grad_norm = max_grad_norm

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        env = SequentialMappingEnv(evaluator, self.num_priority_buckets)
        spec = env.spec
        hidden = [self.hidden_size] * self.num_hidden_layers
        # Named substreams (not self.rng draws) so reseed() rebuilds the
        # exact same networks and action sampling is layout-insensitive.
        policy = MLP([spec.observation_size, *hidden, spec.num_actions], rng=self.stream("policy-init"))
        critic = MLP([spec.observation_size, *hidden, 1], rng=self.stream("critic-init"))
        policy_opt = AdamOptimizer(learning_rate=self.learning_rate)
        critic_opt = AdamOptimizer(learning_rate=self.learning_rate)

        return_history: List[float] = []
        episodes = 0
        rollouts = 0

        while not evaluator.budget_exhausted:
            states, actions, old_log_probs, returns = self._collect_rollout(env, policy, evaluator, return_history)
            if len(states) == 0:
                break
            episodes += self.episodes_per_rollout
            rollouts += 1
            self._update(policy, critic, policy_opt, critic_opt, states, actions, old_log_probs, returns)

        self.metadata.update(
            {
                "episodes": episodes,
                "rollouts": rollouts,
                "best_return": float(max(return_history)) if return_history else float("-inf"),
            }
        )
        return evaluator.best_encoding

    # ------------------------------------------------------------------
    def _collect_rollout(
        self,
        env: SequentialMappingEnv,
        policy: MLP,
        evaluator: MappingEvaluator,
        return_history: List[float],
    ):
        """Run several complete episodes with the current policy."""
        states: List[np.ndarray] = []
        actions: List[int] = []
        log_probs: List[float] = []
        returns: List[float] = []

        for _ in range(self.episodes_per_rollout):
            if evaluator.budget_exhausted:
                break
            observation = env.reset()
            trajectory: List[tuple[np.ndarray, int, float]] = []
            final_return = None
            done = False
            while not done:
                logits, _ = policy.forward(observation)
                probabilities = softmax(logits)[0]
                action = int(self.rng.choice(len(probabilities), p=probabilities))
                log_prob = float(np.log(probabilities[action] + 1e-12))
                trajectory.append((observation, action, log_prob))
                try:
                    next_observation, reward, done = env.step(action)
                except OptimizationError:
                    trajectory = []
                    done = True
                    break
                if done:
                    final_return = reward
                else:
                    observation = next_observation
            if not trajectory or final_return is None:
                continue
            return_history.append(final_return)
            # Normalise returns across the history so advantages stay well-scaled.
            mean = float(np.mean(return_history))
            std = float(np.std(return_history)) or 1.0
            normalised = (final_return - mean) / (std + 1e-8)
            horizon = len(trajectory)
            for t, (state, action, log_prob) in enumerate(trajectory):
                states.append(state)
                actions.append(action)
                log_probs.append(log_prob)
                returns.append(self.discount ** (horizon - 1 - t) * normalised)

        if not states:
            return np.empty((0,)), np.empty((0,)), np.empty((0,)), np.empty((0,))
        return (
            np.stack(states),
            np.asarray(actions),
            np.asarray(log_probs),
            np.asarray(returns),
        )

    def _update(
        self,
        policy: MLP,
        critic: MLP,
        policy_opt: AdamOptimizer,
        critic_opt: AdamOptimizer,
        states: np.ndarray,
        actions: np.ndarray,
        old_log_probs: np.ndarray,
        returns: np.ndarray,
    ) -> None:
        """Several epochs of clipped-surrogate minibatch updates."""
        values, _ = critic.forward(states)
        advantages = returns - values[:, 0]
        if advantages.std() > 0:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        num_samples = len(states)
        for _ in range(self.update_epochs):
            order = self.rng.permutation(num_samples)
            for start in range(0, num_samples, self.minibatch_size):
                batch = order[start:start + self.minibatch_size]
                if batch.size == 0:
                    continue
                self._minibatch_step(
                    policy, critic, policy_opt, critic_opt,
                    states[batch], actions[batch], old_log_probs[batch],
                    returns[batch], advantages[batch],
                )

    def _minibatch_step(
        self,
        policy: MLP,
        critic: MLP,
        policy_opt: AdamOptimizer,
        critic_opt: AdamOptimizer,
        states: np.ndarray,
        actions: np.ndarray,
        old_log_probs: np.ndarray,
        returns: np.ndarray,
        advantages: np.ndarray,
    ) -> None:
        batch = len(states)

        # Critic regression towards the discounted returns.
        values, critic_cache = critic.forward(states)
        critic_grad_out = (2.0 / batch) * (values[:, 0] - returns)[:, None]
        critic_grads = clip_gradients(critic.backward(critic_grad_out, critic_cache), self.max_grad_norm)
        critic_opt.step(critic.params, critic_grads)

        # Clipped surrogate policy update.
        logits, policy_cache = policy.forward(states)
        probabilities = softmax(logits)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(batch), actions] = 1.0
        log_probs_all = np.log(probabilities + 1e-12)
        new_log_probs = log_probs_all[np.arange(batch), actions]
        ratios = np.exp(new_log_probs - old_log_probs)

        # The gradient of the clipped objective only flows through samples
        # where the unclipped term is the active (minimum) branch.
        upper_clipped = (ratios > 1.0 + self.clip_range) & (advantages > 0)
        lower_clipped = (ratios < 1.0 - self.clip_range) & (advantages < 0)
        active = ~(upper_clipped | lower_clipped)
        d_logp = np.where(active, -ratios * advantages, 0.0) / batch

        entropy = -np.sum(probabilities * log_probs_all, axis=1, keepdims=True)
        entropy_grad = self.entropy_coefficient * probabilities * (log_probs_all + entropy) / batch
        policy_grad_out = d_logp[:, None] * (one_hot - probabilities) + entropy_grad
        policy_grads = clip_gradients(policy.backward(policy_grad_out, policy_cache), self.max_grad_norm)
        policy_opt.step(policy.params, policy_grads)
