"""Advantage Actor-Critic (A2C) mapper — the "RL A2C" baseline of Table IV.

The agent builds mappings job-by-job in the :class:`SequentialMappingEnv`.
Several environments are stepped in lock-step so the policy/critic forward
and backward passes are batched, matching the synchronous multi-worker
formulation of A2C.  Hyper-parameters follow Table IV: 3-layer MLPs with 128
units, discount 0.99, learning rate 7e-4, RMSProp.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers.base import BaseOptimizer
from repro.optimizers.rl.env import SequentialMappingEnv
from repro.optimizers.rl.nn import MLP, RMSPropOptimizer, clip_gradients, softmax
from repro.utils.rng import SeedLike


class _RunningNormalizer:
    """Running mean/std used to normalise episode returns into stable advantages."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 1.0
        return float(np.sqrt(self.m2 / (self.count - 1))) or 1.0

    def normalise(self, value: float) -> float:
        return (value - self.mean) / (self.std + 1e-8)


class A2COptimizer(BaseOptimizer):
    """Synchronous advantage actor-critic over the sequential mapping environment."""

    default_name = "RL A2C"
    is_rl = True

    def __init__(
        self,
        seed: SeedLike = None,
        hidden_size: int = 128,
        num_hidden_layers: int = 3,
        discount: float = 0.99,
        learning_rate: float = 7e-4,
        entropy_coefficient: float = 0.01,
        num_parallel_envs: int = 8,
        num_priority_buckets: int = 4,
        max_grad_norm: float = 5.0,
        name: Optional[str] = None,
    ):
        super().__init__(seed=seed, name=name)
        if not (0.0 < discount <= 1.0):
            raise OptimizationError(f"discount must be in (0, 1], got {discount}")
        self.hidden_size = hidden_size
        self.num_hidden_layers = num_hidden_layers
        self.discount = discount
        self.learning_rate = learning_rate
        self.entropy_coefficient = entropy_coefficient
        self.num_parallel_envs = max(1, num_parallel_envs)
        self.num_priority_buckets = num_priority_buckets
        self.max_grad_norm = max_grad_norm

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        envs = [
            SequentialMappingEnv(evaluator, self.num_priority_buckets)
            for _ in range(self.num_parallel_envs)
        ]
        spec = envs[0].spec
        hidden = [self.hidden_size] * self.num_hidden_layers
        # Network init comes from named substreams, not draws of self.rng:
        # reseed() then rebuilds them exactly, and the action-sampling stream
        # is insensitive to how many weights the networks have.
        policy = MLP([spec.observation_size, *hidden, spec.num_actions], rng=self.stream("policy-init"))
        critic = MLP([spec.observation_size, *hidden, 1], rng=self.stream("critic-init"))
        policy_opt = RMSPropOptimizer(learning_rate=self.learning_rate)
        critic_opt = RMSPropOptimizer(learning_rate=self.learning_rate)
        normalizer = _RunningNormalizer()

        episodes = 0
        updates = 0
        best_return = -np.inf

        while not evaluator.budget_exhausted:
            batch_states: List[np.ndarray] = []
            batch_actions: List[int] = []
            batch_returns: List[float] = []

            # Roll out one episode per parallel environment, stepping them in
            # lock-step so every forward pass is batched.
            observations = np.stack([env.reset() for env in envs])
            done_flags = [False] * len(envs)
            trajectories: List[List[tuple[np.ndarray, int]]] = [[] for _ in envs]
            episode_returns = [0.0] * len(envs)

            for _ in range(spec.num_jobs):
                logits, _ = policy.forward(observations)
                probabilities = softmax(logits)
                actions = [
                    int(self.rng.choice(spec.num_actions, p=probabilities[i]))
                    for i in range(len(envs))
                ]
                next_observations = observations.copy()
                for i, env in enumerate(envs):
                    if done_flags[i]:
                        continue
                    trajectories[i].append((observations[i], actions[i]))
                    try:
                        next_obs, reward, done = env.step(actions[i])
                    except OptimizationError:
                        done_flags[i] = True
                        continue
                    if done:
                        done_flags[i] = True
                        episode_returns[i] = reward
                    else:
                        next_observations[i] = next_obs
                observations = next_observations
                if all(done_flags):
                    break

            for i, trajectory in enumerate(trajectories):
                if not done_flags[i] or not trajectory:
                    continue
                episodes += 1
                final_return = episode_returns[i]
                normalizer.update(final_return)
                best_return = max(best_return, final_return)
                horizon = len(trajectory)
                for t, (state, action) in enumerate(trajectory):
                    discounted = self.discount ** (horizon - 1 - t) * normalizer.normalise(final_return)
                    batch_states.append(state)
                    batch_actions.append(action)
                    batch_returns.append(discounted)

            if not batch_states:
                break
            self._update(
                policy, critic, policy_opt, critic_opt,
                np.stack(batch_states), np.asarray(batch_actions), np.asarray(batch_returns),
            )
            updates += 1

        self.metadata.update({"episodes": episodes, "updates": updates, "best_return": float(best_return)})
        return evaluator.best_encoding

    # ------------------------------------------------------------------
    def _update(
        self,
        policy: MLP,
        critic: MLP,
        policy_opt: RMSPropOptimizer,
        critic_opt: RMSPropOptimizer,
        states: np.ndarray,
        actions: np.ndarray,
        returns: np.ndarray,
    ) -> None:
        """One synchronous actor-critic gradient step on the collected batch."""
        batch = len(states)
        values, critic_cache = critic.forward(states)
        values = values[:, 0]
        advantages = returns - values

        # Critic: mean-squared error towards the (normalised) returns.
        critic_grad_out = (2.0 / batch) * (values - returns)[:, None]
        critic_grads = clip_gradients(critic.backward(critic_grad_out, critic_cache), self.max_grad_norm)
        critic_opt.step(critic.params, critic_grads)

        # Policy: advantage-weighted log-likelihood plus entropy bonus.
        logits, policy_cache = policy.forward(states)
        probabilities = softmax(logits)
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(batch), actions] = 1.0
        log_probs = np.log(probabilities + 1e-12)
        entropy = -np.sum(probabilities * log_probs, axis=1, keepdims=True)
        policy_grad_out = (probabilities - one_hot) * advantages[:, None] / batch
        entropy_grad = self.entropy_coefficient * probabilities * (log_probs + entropy) / batch
        policy_grads = clip_gradients(
            policy.backward(policy_grad_out + entropy_grad, policy_cache), self.max_grad_norm
        )
        policy_opt.step(policy.params, policy_grads)
