"""Hyper-parameter tuning for MAGMA (Section V-B3 of the paper).

The paper selects MAGMA's mutation/crossover rates, population size, and
elite ratio with a Bayesian-optimization framework across multiple workloads.
This module provides a compact sequential model-based tuner in the same
spirit: candidates are scored on a set of (group, platform) tuning problems,
and after an initial random phase new candidates are proposed around the best
configurations seen so far (a Tree-structured-Parzen-Estimator-like
exploit/explore split), which is the behaviour that matters for reproducing
the tuning workflow without external dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator import AcceleratorPlatform
from repro.core.framework import M3E
from repro.exceptions import OptimizationError
from repro.optimizers.magma import MagmaConfig, MagmaOptimizer
from repro.utils.rng import SeedLike, SeedPolicy
from repro.utils.tables import geometric_mean
from repro.workloads.groups import JobGroup


@dataclass(frozen=True)
class HyperParameterSpace:
    """Search ranges for MAGMA's tunable hyper-parameters."""

    population_sizes: Tuple[int, ...] = (50, 100, 150, 200)
    elite_ratios: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4)
    mutation_rates: Tuple[float, ...] = (0.01, 0.05, 0.1, 0.2)
    crossover_gen_rates: Tuple[float, ...] = (0.5, 0.7, 0.9)
    crossover_rg_rates: Tuple[float, ...] = (0.0, 0.05, 0.1)
    crossover_accel_rates: Tuple[float, ...] = (0.0, 0.05, 0.1)

    def sample(self, rng: np.random.Generator) -> MagmaConfig:
        """Draw one random configuration from the space."""
        return MagmaConfig(
            population_size=int(rng.choice(self.population_sizes)),
            elite_ratio=float(rng.choice(self.elite_ratios)),
            mutation_rate=float(rng.choice(self.mutation_rates)),
            crossover_gen_rate=float(rng.choice(self.crossover_gen_rates)),
            crossover_rg_rate=float(rng.choice(self.crossover_rg_rates)),
            crossover_accel_rate=float(rng.choice(self.crossover_accel_rates)),
        )

    def neighbours(self, config: MagmaConfig, rng: np.random.Generator) -> MagmaConfig:
        """Propose a configuration near *config* (one or two knobs changed)."""
        def tweak(options: Sequence, current) -> object:
            options = list(options)
            index = options.index(current) if current in options else 0
            step = int(rng.integers(-1, 2))
            return options[int(np.clip(index + step, 0, len(options) - 1))]

        knobs = {
            "population_size": int(tweak(self.population_sizes, config.population_size)),
            "elite_ratio": float(tweak(self.elite_ratios, config.elite_ratio)),
            "mutation_rate": float(tweak(self.mutation_rates, config.mutation_rate)),
            "crossover_gen_rate": float(tweak(self.crossover_gen_rates, config.crossover_gen_rate)),
            "crossover_rg_rate": float(tweak(self.crossover_rg_rates, config.crossover_rg_rate)),
            "crossover_accel_rate": float(tweak(self.crossover_accel_rates, config.crossover_accel_rate)),
        }
        return MagmaConfig(**knobs)


@dataclass
class TuningTrial:
    """One evaluated hyper-parameter configuration."""

    config: MagmaConfig
    score: float


class MagmaHyperParameterTuner:
    """Sequential model-based tuner scoring configurations across workloads."""

    def __init__(
        self,
        problems: Sequence[Tuple[JobGroup, AcceleratorPlatform]],
        sampling_budget_per_run: int = 1_000,
        space: Optional[HyperParameterSpace] = None,
        seed: SeedLike = None,
    ):
        if not problems:
            raise OptimizationError("the tuner needs at least one (group, platform) problem")
        self.problems = list(problems)
        self.sampling_budget_per_run = sampling_budget_per_run
        self.space = space or HyperParameterSpace()
        self.seed_policy = SeedPolicy.resolve(seed)
        self.rng = self.seed_policy.stream("tuner/magma-hyperparams")
        self.trials: List[TuningTrial] = []

    # ------------------------------------------------------------------
    def score(self, config: MagmaConfig) -> float:
        """Geometric-mean throughput of a configuration across the tuning problems."""
        values: List[float] = []
        for group, platform in self.problems:
            explorer = M3E(platform, sampling_budget=self.sampling_budget_per_run)
            optimizer = MagmaOptimizer(seed=self.rng, config=config)
            result = explorer.search(group, optimizer=optimizer)
            values.append(max(result.throughput_gflops, 1e-9))
        return geometric_mean(values)

    def tune(self, num_trials: int = 12, exploration_fraction: float = 0.5) -> MagmaConfig:
        """Run the tuning loop and return the best configuration found."""
        if num_trials <= 0:
            raise OptimizationError(f"num_trials must be positive, got {num_trials}")
        num_random = max(1, int(round(num_trials * exploration_fraction)))
        for trial_index in range(num_trials):
            if trial_index < num_random or not self.trials:
                candidate = self.space.sample(self.rng)
            else:
                best = max(self.trials, key=lambda t: t.score)
                candidate = self.space.neighbours(best.config, self.rng)
            self.trials.append(TuningTrial(config=candidate, score=self.score(candidate)))
        return max(self.trials, key=lambda t: t.score).config

    @property
    def best_trial(self) -> Optional[TuningTrial]:
        """Best trial so far, or ``None`` before tuning."""
        if not self.trials:
            return None
        return max(self.trials, key=lambda t: t.score)
