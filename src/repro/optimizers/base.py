"""Base class shared by all optimization algorithms in M3E.

Every algorithm — MAGMA, the black-box baselines, the RL agents, and the
manual heuristics — implements the same tiny interface: ``optimize`` receives
a :class:`~repro.core.evaluator.MappingEvaluator` (which owns the search
space shape, the fitness function, and the sampling budget) and returns the
best encoded mapping it found.  The evaluator enforces the shared sampling
budget, so algorithms simply loop until ``evaluator.budget_exhausted``.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.utils.rng import SeedLike, SeedPolicy


def ranked_finite(fitnesses: np.ndarray) -> np.ndarray:
    """Indices of the *evaluated* rows of a generation, best fitness first.

    When :meth:`MappingEvaluator.evaluate_population` truncates a generation
    on budget exhaustion, the unevaluated rows carry ``-inf`` placeholders.
    Elite selection and mean recombination must never consume those rows —
    they are arbitrary samples whose fitness was never measured — so rankers
    go through this mask.  Ties preserve row order (stable sort), matching
    what a stable descending sort of the full generation would pick.
    """
    fitnesses = np.asarray(fitnesses, dtype=float)
    finite = np.flatnonzero(np.isfinite(fitnesses))
    if finite.size == 0:
        return finite
    return finite[np.argsort(-fitnesses[finite], kind="stable")]


class BaseOptimizer(abc.ABC):
    """Common interface and bookkeeping for mapping optimizers.

    Parameters
    ----------
    seed:
        Seed or generator for the algorithm's random stream.
    name:
        Display name; defaults to the class-level ``default_name``.
    """

    #: Registry / display name, overridden by subclasses.
    default_name: str = "base"

    #: Whether the algorithm is a reinforcement-learning agent.  RL episodes
    #: are much slower in wall-clock terms, so the reduced experiment scales
    #: give RL agents a trimmed sampling budget (Section VI-B).  Budget
    #: policies key off this flag — resolved through the optimizer registry —
    #: rather than off a hard-coded set of method names, so new aliases of an
    #: RL optimizer automatically inherit the reduced budget.
    is_rl: bool = False

    def __init__(self, seed: SeedLike = None, name: Optional[str] = None):
        self.name = name or self.default_name
        #: The governing seed policy (see :mod:`repro.utils.rng`): explicit
        #: seed, session substream, or unset (error under pytest).
        self.seed_policy = SeedPolicy.resolve(seed)
        self._rng: Optional[np.random.Generator] = None
        #: Free-form dictionary of algorithm-specific diagnostics, surfaced in
        #: :class:`~repro.core.framework.SearchResult.metadata`.
        self.metadata: Dict[str, Any] = {}

    @property
    def rng(self) -> np.random.Generator:
        """The algorithm's root random stream.

        Materialised on first use, so *constructing* an optimizer without a
        seed is fine (e.g. to inspect hyper-parameter defaults) — only
        actually drawing unseeded randomness trips the policy's
        unset-is-error-under-pytest rule.
        """
        if self._rng is None:
            self._rng = self.seed_policy.generator()
        return self._rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self._rng = value

    # ------------------------------------------------------------------
    def reseed(self, seed: SeedLike) -> None:
        """Replace the algorithm's *entire* random state (used by M3E.compare).

        Rebuilds the policy and the root stream, then gives subclasses a
        chance to rebuild any component-local generators via
        :meth:`_reseed_components` — a reseeded optimizer must be
        bit-identical to a freshly constructed one with the same seed.
        """
        self.seed_policy = SeedPolicy.resolve(seed)
        self._rng = None
        self._reseed_components()

    def _reseed_components(self) -> None:
        """Hook for subclasses holding generators besides ``self.rng``.

        Any optimizer that caches a component-local generator (rather than
        deriving it per-``optimize`` call via :meth:`stream`) must rebuild it
        here, or :meth:`reseed` silently leaves stale streams behind.
        """

    def stream(self, name: str) -> np.random.Generator:
        """A named substream for an optimizer component (reseed-safe).

        Namespaced as ``optimizer/<optimizer-name>/<name>`` so two
        optimizers (or two components) never collide.  Derive component
        generators (RL network init, operator-local noise) through this
        rather than caching draws of ``self.rng``.
        """
        return self.seed_policy.stream(f"optimizer/{self.name}/{name}")

    @abc.abstractmethod
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """Search for a good mapping and return the best encoding found.

        ``initial_encodings`` optionally seeds the initial population /
        starting point (used by the warm-start engine).  Returning ``None``
        tells the framework to fall back to the evaluator's best-so-far
        record.
        """

    # ------------------------------------------------------------------
    # Helpers shared by population-based methods.
    # ------------------------------------------------------------------
    def _initial_population(
        self,
        evaluator: MappingEvaluator,
        population_size: int,
        initial_encodings: Optional[np.ndarray],
    ) -> np.ndarray:
        """Random population, optionally seeded with user-provided encodings.

        When the warm-start engine supplies more seeds than
        ``population_size`` every seed is kept, so the returned population can
        be *larger* than requested — population-based optimizers must size
        their generations from ``len(population)``, not their configured
        population size.
        """
        if population_size <= 0:
            raise OptimizationError(f"population_size must be positive, got {population_size}")
        population = evaluator.codec.random_population(population_size, self.rng)
        if initial_encodings is not None:
            seeds = evaluator.codec.repair_batch(initial_encodings)
            if len(seeds) >= population_size:
                population = seeds.copy()
            else:
                population[: len(seeds)] = seeds
        return population

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
