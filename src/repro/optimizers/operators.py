"""MAGMA's genetic operators (Section V-B2 and Fig. 5 of the paper).

MAGMA keeps the standard GA mutation and adds three specialised crossover
operators, each designed to preserve a different kind of structure in the
mapping while exploring:

* **crossover-gen** — genome-wise crossover: perturbs one genome (either the
  sub-accelerator selection or the job prioritisation) while leaving the
  other genome untouched.
* **crossover-rg** — range crossover: exchanges a contiguous range of *jobs*
  across both genomes simultaneously, preserving the cross-genome dependency
  between a job's core selection and its priority.
* **crossover-accel** — per-core crossover: copies the full scheduling
  decision (selection + priority) of one sub-accelerator from one parent to
  the other, preserving the job ordering within that core.

All operators work directly on encoded mapping vectors and never invalidate
them (every output is a valid encoding), which keeps the search structured
and sample-efficient.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.encoding import MappingCodec
from repro.utils.rng import SeedLike, ensure_rng


def mutate(
    encoding: np.ndarray,
    codec: MappingCodec,
    rng: SeedLike = None,
    mutation_rate: float = 0.05,
) -> np.ndarray:
    """Standard mutation: each gene is re-randomised with probability *mutation_rate*.

    Selection genes mutate to a random core; priority genes mutate to a
    random value in ``[0, 1)`` (Fig. 5(b)).
    """
    generator = ensure_rng(rng)
    child = np.asarray(encoding, dtype=float).copy()
    genome = codec.genome_length
    mask = generator.random(codec.encoding_length) < mutation_rate
    selection_mask = mask[:genome]
    priority_mask = mask[genome:]
    if selection_mask.any():
        child[:genome][selection_mask] = generator.integers(
            0, codec.num_sub_accelerators, size=int(selection_mask.sum())
        )
    if priority_mask.any():
        child[genome:][priority_mask] = generator.random(int(priority_mask.sum()))
    return child


def crossover_gen(
    dad: np.ndarray,
    mom: np.ndarray,
    codec: MappingCodec,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Genome-wise single-point crossover (Fig. 5(c)).

    One genome (selection or priority) is sampled, a pivot point within it is
    sampled, and the genes after the pivot are exchanged between the parents.
    The untouched genome keeps its characteristics, so the perturbation is
    contained to one aspect of the schedule.
    """
    generator = ensure_rng(rng)
    genome = codec.genome_length
    son = np.asarray(dad, dtype=float).copy()
    daughter = np.asarray(mom, dtype=float).copy()
    which_genome = int(generator.integers(0, 2))
    offset = which_genome * genome
    pivot = int(generator.integers(1, genome)) if genome > 1 else 0
    lo, hi = offset + pivot, offset + genome
    son[lo:hi], daughter[lo:hi] = daughter[lo:hi].copy(), son[lo:hi].copy()
    return son, daughter


def crossover_rg(
    dad: np.ndarray,
    mom: np.ndarray,
    codec: MappingCodec,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Range crossover across both genomes (Fig. 5(d)).

    A contiguous range of job positions is sampled and, for the jobs in that
    range, *both* their selection and their priority genes are exchanged
    between the parents.  The dependency between a job's core assignment and
    its priority is therefore preserved through the exchange.
    """
    generator = ensure_rng(rng)
    genome = codec.genome_length
    son = np.asarray(dad, dtype=float).copy()
    daughter = np.asarray(mom, dtype=float).copy()
    if genome == 1:
        start, stop = 0, 1
    else:
        start = int(generator.integers(0, genome - 1))
        stop = int(generator.integers(start + 1, genome + 1))
    for offset in (0, genome):
        lo, hi = offset + start, offset + stop
        son[lo:hi], daughter[lo:hi] = daughter[lo:hi].copy(), son[lo:hi].copy()
    return son, daughter


def crossover_accel(
    dad: np.ndarray,
    mom: np.ndarray,
    codec: MappingCodec,
    rng: SeedLike = None,
    rebalance_mutation_rate: float = 0.5,
) -> np.ndarray:
    """Per-sub-accelerator crossover (Fig. 5(e)).

    A core is sampled; the jobs that *mom* assigns to that core are copied —
    selection and priority genes — into a copy of *dad*, preserving mom's job
    ordering on that core.  Dad's own jobs that were previously on that core
    (and were not copied) are randomly re-assigned/re-prioritised to restore
    load balance, as described in the paper.
    """
    generator = ensure_rng(rng)
    genome = codec.genome_length
    son = np.asarray(dad, dtype=float).copy()
    dad_selection = np.asarray(dad, dtype=float)[:genome].astype(int)
    mom_selection = np.asarray(mom, dtype=float)[:genome].astype(int)
    core = int(generator.integers(0, codec.num_sub_accelerators))

    mom_jobs_on_core = np.flatnonzero(mom_selection == core)
    dad_jobs_on_core = np.flatnonzero(dad_selection == core)

    # Copy mom's full decision (both genomes) for her jobs on the chosen core.
    for job in mom_jobs_on_core:
        son[job] = mom[job]
        son[genome + job] = mom[genome + job]

    # Dad's leftover jobs on that core get randomly perturbed to rebalance load.
    leftover = np.setdiff1d(dad_jobs_on_core, mom_jobs_on_core, assume_unique=True)
    for job in leftover:
        if generator.random() < rebalance_mutation_rate:
            son[job] = float(generator.integers(0, codec.num_sub_accelerators))
            son[genome + job] = generator.random()
    return son
