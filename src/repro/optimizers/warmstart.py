"""Warm-start engine for MAGMA (Section V-C of the paper).

Warm-start re-uses solutions from previously solved tasks: when a new group
of jobs belongs to the same task type (Vision, Language, Recommendation, or
Mix) as an already-optimized group, the stored solution initialises the new
search instead of a random population.  The paper's Table V shows this gives
7.4x-152x better starting points and reaches ~93-99% of the fully optimized
performance within a single epoch of further optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.encoding import MappingCodec
from repro.exceptions import OptimizationError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class _StoredSolution:
    """One remembered solution: the encoding and the problem shape it solved."""

    encoding: np.ndarray
    num_jobs: int
    num_sub_accelerators: int
    fitness: float


class WarmStartEngine:
    """Remembers the best mapping per task type and adapts it to new groups.

    The engine recognises a task by its task-type key (the string attached to
    the jobs, e.g. ``"vision"`` or ``"mix"``).  When asked for a warm start on
    a new problem it adapts the remembered encoding to the new group size by
    tiling/truncating the two genomes, and to a new core count by clamping
    the selection genes — both are cheap, structure-preserving projections.
    """

    def __init__(self) -> None:
        self._memory: Dict[str, _StoredSolution] = {}

    # ------------------------------------------------------------------
    def record(
        self,
        task_key: str,
        encoding: np.ndarray,
        codec: MappingCodec,
        fitness: float,
    ) -> bool:
        """Store (or replace) the remembered solution for *task_key*.

        Only a better-fitness solution replaces an existing entry for the same
        task type.  Returns whether the memory changed — the persistent
        library uses this to decide whether a solution is worth writing to
        disk.
        """
        if not task_key:
            raise OptimizationError("task_key must be a non-empty string")
        encoding = codec.repair(np.asarray(encoding, dtype=float))
        existing = self._memory.get(task_key)
        if existing is None or fitness > existing.fitness:
            self._memory[task_key] = _StoredSolution(
                encoding=encoding.copy(),
                num_jobs=codec.num_jobs,
                num_sub_accelerators=codec.num_sub_accelerators,
                fitness=fitness,
            )
            return True
        return False

    def knows(self, task_key: str) -> bool:
        """Whether a solution for this task type has been recorded."""
        return task_key in self._memory

    def known_tasks(self) -> List[str]:
        """Task types with remembered solutions."""
        return sorted(self._memory)

    def clear(self) -> None:
        """Forget all remembered solutions."""
        self._memory.clear()

    def fitness_of(self, task_key: str) -> Optional[float]:
        """Fitness of the remembered solution for *task_key*, if any."""
        stored = self._memory.get(task_key)
        return None if stored is None else stored.fitness

    # ------------------------------------------------------------------
    # State round-trip (used by the persistent warm-start library)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Dict]:
        """JSON-safe dict snapshot of the remembered solutions.

        The inverse of :meth:`from_state`: a round-tripped engine produces
        bit-identical suggestions for every known task.
        """
        return {
            task_key: {
                "encoding": [float(v) for v in stored.encoding],
                "num_jobs": int(stored.num_jobs),
                "num_sub_accelerators": int(stored.num_sub_accelerators),
                "fitness": float(stored.fitness),
            }
            for task_key, stored in sorted(self._memory.items())
        }

    @classmethod
    def from_state(cls, state: Dict[str, Dict]) -> "WarmStartEngine":
        """Rebuild an engine from a :meth:`to_state` snapshot."""
        engine = cls()
        for task_key, entry in state.items():
            if not task_key:
                raise OptimizationError("task_key must be a non-empty string")
            try:
                stored = _StoredSolution(
                    encoding=np.asarray(entry["encoding"], dtype=float),
                    num_jobs=int(entry["num_jobs"]),
                    num_sub_accelerators=int(entry["num_sub_accelerators"]),
                    fitness=float(entry["fitness"]),
                )
            except (KeyError, TypeError, ValueError) as error:
                raise OptimizationError(
                    f"malformed warm-start state for task {task_key!r}: {error}"
                ) from error
            if stored.encoding.shape != (2 * stored.num_jobs,):
                raise OptimizationError(
                    f"warm-start state for task {task_key!r} has encoding length "
                    f"{stored.encoding.shape[0]}, expected {2 * stored.num_jobs}"
                )
            engine._memory[task_key] = stored
        return engine

    # ------------------------------------------------------------------
    def suggest(
        self,
        task_key: str,
        codec: MappingCodec,
        count: int = 1,
        rng: SeedLike = None,
        perturbation: float = 0.05,
    ) -> Optional[np.ndarray]:
        """Return *count* warm-start encodings for a new problem, or ``None``.

        The first suggestion is the adapted remembered solution verbatim; the
        remaining ones are lightly mutated copies so the seeded population
        still carries diversity.
        """
        if task_key not in self._memory:
            return None
        stored = self._memory[task_key]
        base = self._adapt(stored, codec)
        suggestions = [base]
        # The verbatim first suggestion needs no randomness; only resolve a
        # generator (and thus the seed policy) when mutated copies are asked
        # for — see docs/DETERMINISM.md.
        generator = ensure_rng(rng) if count > 1 else None
        for _ in range(count - 1):
            noisy = base.copy()
            genome = codec.genome_length
            mask = generator.random(codec.encoding_length) < perturbation
            selection_hits = np.flatnonzero(mask[:genome])
            priority_hits = np.flatnonzero(mask[genome:])
            if selection_hits.size:
                noisy[selection_hits] = generator.integers(
                    0, codec.num_sub_accelerators, size=selection_hits.size
                )
            if priority_hits.size:
                noisy[genome + priority_hits] = generator.random(priority_hits.size)
            suggestions.append(noisy)
        return np.stack(suggestions)

    # ------------------------------------------------------------------
    @staticmethod
    def _adapt(stored: _StoredSolution, codec: MappingCodec) -> np.ndarray:
        """Project a stored solution onto a (possibly different) problem shape."""
        old_jobs = stored.num_jobs
        new_jobs = codec.num_jobs
        old_selection = stored.encoding[:old_jobs]
        old_priority = stored.encoding[old_jobs:]

        if new_jobs <= old_jobs:
            selection = old_selection[:new_jobs].copy()
            priority = old_priority[:new_jobs].copy()
        else:
            repeats = -(-new_jobs // old_jobs)
            selection = np.tile(old_selection, repeats)[:new_jobs]
            priority = np.tile(old_priority, repeats)[:new_jobs]

        selection = np.clip(selection, 0, codec.num_sub_accelerators - 1)
        return codec.repair(np.concatenate([selection, priority]))
