"""Random search / exhaustive sampling.

Uniform random sampling of the mapping space.  With a very large budget this
is the "exhaustively sampled" best-effort optimum the paper uses as the
reference point in Fig. 10; with the standard budget it is the weakest
sensible baseline and a useful sanity check for every other algorithm.

Samples are proposed in batches so the evaluator's ``batch`` backend
simulates each batch in one vectorized sweep; the evaluator truncates the
final batch at the remaining sampling budget.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.optimizers.base import BaseOptimizer
from repro.utils.rng import SeedLike


class RandomSearchOptimizer(BaseOptimizer):
    """Uniform random sampling of encoded mappings until the budget runs out."""

    default_name = "Random"

    def __init__(self, seed: SeedLike = None, batch_size: int = 64, name: Optional[str] = None):
        super().__init__(seed=seed, name=name)
        self.batch_size = max(1, batch_size)

    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        if initial_encodings is not None:
            evaluator.evaluate_population(np.atleast_2d(np.asarray(initial_encodings, dtype=float)))
        samples = 0
        while not evaluator.budget_exhausted:
            batch = evaluator.codec.random_population(self.batch_size, self.rng)
            evaluator.evaluate_population(batch)
            samples += len(batch)
        self.metadata["samples_proposed"] = samples
        return evaluator.best_encoding
