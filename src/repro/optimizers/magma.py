"""MAGMA — Multi-Accelerator Genetic Mapping Algorithm (Section V of the paper).

MAGMA is a genetic algorithm whose exploration is structured by the custom
operators of :mod:`repro.optimizers.operators`.  Each generation:

1. the population is evaluated and sorted by fitness,
2. an elite fraction survives unchanged,
3. parents are drawn from the best-performing individuals and recombined with
   crossover-gen (the dominant operator), crossover-rg, and crossover-accel,
4. every child is passed through the standard mutation operator.

The per-operator enable flags make the ablation study of Fig. 16 a pure
configuration matter, and the hyper-parameters exposed here are the ones the
paper tunes via Bayesian optimisation (Section V-B3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers import operators
from repro.optimizers.base import BaseOptimizer
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class MagmaConfig:
    """Hyper-parameters of MAGMA (defaults follow Section V-B2 of the paper)."""

    population_size: int = 100
    elite_ratio: float = 0.2
    mutation_rate: float = 0.05
    crossover_gen_rate: float = 0.9
    crossover_rg_rate: float = 0.05
    crossover_accel_rate: float = 0.05
    #: Operator ablation switches (Fig. 16).
    enable_crossover_gen: bool = True
    enable_crossover_rg: bool = True
    enable_crossover_accel: bool = True

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise OptimizationError("MAGMA needs a population of at least 2 individuals")
        if not (0.0 < self.elite_ratio < 1.0):
            raise OptimizationError(f"elite_ratio must be in (0, 1), got {self.elite_ratio}")
        for rate_name in ("mutation_rate", "crossover_gen_rate", "crossover_rg_rate", "crossover_accel_rate"):
            rate = getattr(self, rate_name)
            if not (0.0 <= rate <= 1.0):
                raise OptimizationError(f"{rate_name} must be in [0, 1], got {rate}")


class MagmaOptimizer(BaseOptimizer):
    """The MAGMA genetic algorithm with domain-specific operators."""

    default_name = "MAGMA"

    def __init__(
        self,
        seed: SeedLike = None,
        config: Optional[MagmaConfig] = None,
        name: Optional[str] = None,
        **overrides: object,
    ):
        super().__init__(seed=seed, name=name)
        if config is None:
            config = MagmaConfig(**overrides)  # type: ignore[arg-type]
        elif overrides:
            raise OptimizationError("pass either a MagmaConfig or keyword overrides, not both")
        self.config = config

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """Run the generational loop until the sampling budget is exhausted."""
        cfg = self.config
        population = self._initial_population(evaluator, cfg.population_size, initial_encodings)
        fitnesses = evaluator.evaluate_population(population)
        generations = 0

        while not evaluator.budget_exhausted:
            population, fitnesses = self._next_generation(evaluator, population, fitnesses)
            generations += 1

        best_index = int(np.argmax(fitnesses))
        self.metadata.update(
            {
                "generations": generations,
                "population_size": cfg.population_size,
                "final_population_best": float(fitnesses[best_index]),
            }
        )
        # The evaluator's global best can precede the final population's best
        # (elitism keeps it, but guard against operator drift anyway).
        if evaluator.best_encoding is not None and evaluator.best_fitness >= fitnesses[best_index]:
            return evaluator.best_encoding
        return population[best_index]

    # ------------------------------------------------------------------
    def _next_generation(
        self,
        evaluator: MappingEvaluator,
        population: np.ndarray,
        fitnesses: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Produce and evaluate the next generation."""
        cfg = self.config
        codec = evaluator.codec
        order = np.argsort(fitnesses)[::-1]
        population = population[order]
        fitnesses = fitnesses[order]

        # Elitism must follow the *actual* population size: warm-starting with
        # more initial encodings than cfg.population_size (Section V-C) grows
        # the population, and sizing elites from the configured value would
        # desynchronize the elite/child split from the sorted population.
        pop_size = len(population)
        num_elites = max(1, int(round(cfg.elite_ratio * pop_size)))
        elites = population[:num_elites]

        children: List[np.ndarray] = []
        parent_pool = population[: max(2, num_elites * 2)]
        while len(children) < pop_size - num_elites:
            dad, mom = self._pick_parents(parent_pool)
            child_a, child_b = self._recombine(dad, mom, codec)
            children.append(operators.mutate(child_a, codec, self.rng, cfg.mutation_rate))
            if len(children) < pop_size - num_elites:
                children.append(operators.mutate(child_b, codec, self.rng, cfg.mutation_rate))

        next_population = np.vstack([elites, np.asarray(children)])
        next_fitnesses = np.concatenate(
            [fitnesses[:num_elites], evaluator.evaluate_population(np.asarray(children))]
        )
        return next_population, next_fitnesses

    def _pick_parents(self, parent_pool: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Draw two distinct parents uniformly from the elite-biased pool."""
        if len(parent_pool) < 2:
            return parent_pool[0], parent_pool[0]
        i, j = self.rng.choice(len(parent_pool), size=2, replace=False)
        return parent_pool[int(i)], parent_pool[int(j)]

    def _recombine(self, dad: np.ndarray, mom: np.ndarray, codec) -> tuple[np.ndarray, np.ndarray]:
        """Apply MAGMA's crossover operators according to their rates."""
        cfg = self.config
        son, daughter = dad.copy(), mom.copy()
        if cfg.enable_crossover_gen and self.rng.random() < cfg.crossover_gen_rate:
            son, daughter = operators.crossover_gen(son, daughter, codec, self.rng)
        if cfg.enable_crossover_rg and self.rng.random() < cfg.crossover_rg_rate:
            son, daughter = operators.crossover_rg(son, daughter, codec, self.rng)
        if cfg.enable_crossover_accel and self.rng.random() < cfg.crossover_accel_rate:
            son = operators.crossover_accel(son, daughter, codec, self.rng)
            daughter = operators.crossover_accel(daughter, son, codec, self.rng)
        return son, daughter


def magma_mutation_only(seed: SeedLike = None, **overrides: object) -> MagmaOptimizer:
    """MAGMA restricted to the mutation operator (ablation level 1 of Fig. 16)."""
    config = MagmaConfig(
        enable_crossover_gen=False,
        enable_crossover_rg=False,
        enable_crossover_accel=False,
        **overrides,  # type: ignore[arg-type]
    )
    return MagmaOptimizer(seed=seed, config=config, name="MAGMA-mut")


def magma_mutation_crossover_gen(seed: SeedLike = None, **overrides: object) -> MagmaOptimizer:
    """MAGMA with mutation + crossover-gen only (ablation level 2 of Fig. 16)."""
    config = MagmaConfig(
        enable_crossover_rg=False,
        enable_crossover_accel=False,
        **overrides,  # type: ignore[arg-type]
    )
    return MagmaOptimizer(seed=seed, config=config, name="MAGMA-mut+gen")
