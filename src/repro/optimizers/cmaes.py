"""Covariance Matrix Adaptation Evolution Strategy baseline (CMA-ES, Table IV).

A standard (mu/mu_w, lambda)-CMA-ES implementation following Hansen's
tutorial formulation, operating on the real-valued mapping encoding.  The
paper's configuration keeps the best-performing half of each generation as
the elite (parent) group, which corresponds to ``mu = lambda / 2`` here.

For the large group sizes used in the paper the full covariance matrix would
be 200x200; to keep each generation cheap the implementation supports a
diagonal-covariance mode (the default for dimensions above a threshold),
which is the standard large-scale variant (sep-CMA-ES).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers.base import BaseOptimizer, ranked_finite
from repro.utils.rng import SeedLike


class CMAESOptimizer(BaseOptimizer):
    """(mu/mu_w, lambda)-CMA-ES on the encoded mapping space."""

    default_name = "CMA"

    def __init__(
        self,
        seed: SeedLike = None,
        population_size: int = 100,
        initial_sigma: float = 0.3,
        diagonal_threshold: int = 64,
        name: Optional[str] = None,
    ):
        super().__init__(seed=seed, name=name)
        if population_size < 4:
            raise OptimizationError("CMA-ES needs a population of at least 4 individuals")
        if initial_sigma <= 0:
            raise OptimizationError(f"initial_sigma must be positive, got {initial_sigma}")
        self.population_size = population_size
        self.initial_sigma = initial_sigma
        self.diagonal_threshold = diagonal_threshold

    # ------------------------------------------------------------------
    def optimize(
        self,
        evaluator: MappingEvaluator,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        codec = evaluator.codec
        dimension = codec.encoding_length
        lam = self.population_size
        mu = lam // 2
        use_diagonal = dimension > self.diagonal_threshold

        # Normalised search space: every coordinate lives in [0, 1]; the
        # selection genes are scaled back to [0, A) before evaluation.
        scale = np.concatenate(
            [
                np.full(codec.genome_length, max(1, codec.num_sub_accelerators - 1)),
                np.ones(codec.genome_length),
            ]
        )

        # Recombination weights (log-rank weighting).
        raw_weights = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        weights = raw_weights / raw_weights.sum()
        mu_eff = 1.0 / np.sum(weights**2)

        # Strategy parameter defaults (Hansen's tutorial).
        c_sigma = (mu_eff + 2) / (dimension + mu_eff + 5)
        d_sigma = 1 + 2 * max(0.0, np.sqrt((mu_eff - 1) / (dimension + 1)) - 1) + c_sigma
        c_c = (4 + mu_eff / dimension) / (dimension + 4 + 2 * mu_eff / dimension)
        c_1 = 2 / ((dimension + 1.3) ** 2 + mu_eff)
        c_mu = min(1 - c_1, 2 * (mu_eff - 2 + 1 / mu_eff) / ((dimension + 2) ** 2 + mu_eff))
        chi_n = np.sqrt(dimension) * (1 - 1 / (4 * dimension) + 1 / (21 * dimension**2))

        if initial_encodings is not None:
            seed_encoding = codec.repair(np.atleast_2d(np.asarray(initial_encodings, dtype=float))[0])
            mean = seed_encoding / scale
        else:
            mean = self.rng.random(dimension)
        sigma = self.initial_sigma
        p_sigma = np.zeros(dimension)
        p_c = np.zeros(dimension)
        diag_c = np.ones(dimension)
        cov = np.eye(dimension) if not use_diagonal else None

        generations = 0
        while not evaluator.budget_exhausted:
            if use_diagonal:
                std = np.sqrt(diag_c)
                z = self.rng.standard_normal((lam, dimension))
                y = z * std
            else:
                eigvals, eigvecs = np.linalg.eigh(cov)
                eigvals = np.maximum(eigvals, 1e-12)
                sqrt_cov = eigvecs @ np.diag(np.sqrt(eigvals))
                z = self.rng.standard_normal((lam, dimension))
                y = z @ sqrt_cov.T
            samples = mean + sigma * y

            encodings = np.clip(samples, 0.0, 1.0) * scale
            fitnesses = evaluator.evaluate_population(encodings)
            # A generation truncated by budget exhaustion leaves -inf
            # placeholder rows; recombining the mean from those (unevaluated)
            # samples would adapt the distribution towards arbitrary noise.
            order = ranked_finite(fitnesses)
            if order.size == 0:
                break
            top = order[:mu]
            top_weights = weights[: top.size]
            if top.size < mu:
                top_weights = top_weights / top_weights.sum()

            y_w = np.sum(top_weights[:, None] * y[top], axis=0)
            mean = mean + sigma * y_w
            mean = np.clip(mean, 0.0, 1.0)

            # Step-size control.
            if use_diagonal:
                c_inv_sqrt_y = y_w / np.sqrt(diag_c)
            else:
                c_inv_sqrt_y = eigvecs @ ((eigvecs.T @ y_w) / np.sqrt(eigvals))
            p_sigma = (1 - c_sigma) * p_sigma + np.sqrt(c_sigma * (2 - c_sigma) * mu_eff) * c_inv_sqrt_y
            sigma = sigma * np.exp((c_sigma / d_sigma) * (np.linalg.norm(p_sigma) / chi_n - 1))
            sigma = float(np.clip(sigma, 1e-6, 2.0))

            # Covariance adaptation.
            h_sigma = float(
                np.linalg.norm(p_sigma) / np.sqrt(1 - (1 - c_sigma) ** (2 * (generations + 1)))
                < (1.4 + 2 / (dimension + 1)) * chi_n
            )
            p_c = (1 - c_c) * p_c + h_sigma * np.sqrt(c_c * (2 - c_c) * mu_eff) * y_w
            if use_diagonal:
                rank_mu = np.sum(top_weights[:, None] * (y[top] ** 2), axis=0)
                diag_c = (1 - c_1 - c_mu) * diag_c + c_1 * (p_c**2) + c_mu * rank_mu
                diag_c = np.maximum(diag_c, 1e-12)
            else:
                rank_one = np.outer(p_c, p_c)
                rank_mu = sum(w * np.outer(y_i, y_i) for w, y_i in zip(top_weights, y[top]))
                cov = (1 - c_1 - c_mu) * cov + c_1 * rank_one + c_mu * rank_mu
                cov = (cov + cov.T) / 2
            generations += 1

        self.metadata.update({"generations": generations, "final_sigma": float(sigma), "diagonal": use_diagonal})
        return evaluator.best_encoding
