"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration is inconsistent or invalid."""


class WorkloadError(ReproError):
    """Raised when a workload, model, or job description is malformed."""


class CostModelError(ReproError):
    """Raised when the analytical cost model cannot evaluate a layer."""


class EncodingError(ReproError):
    """Raised when an encoded mapping cannot be decoded or validated."""


class SchedulingError(ReproError):
    """Raised when the bandwidth allocator cannot produce a schedule."""


class OptimizationError(ReproError):
    """Raised when an optimization algorithm is misconfigured or fails."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration references unknown components."""


class ServiceError(ReproError):
    """Raised when the mapping service receives an invalid request or job id."""


class RpcError(ReproError):
    """Raised when the RPC evaluation protocol fails (auth, framing, worker errors)."""


class WorkerDiedError(RpcError):
    """Raised when an RPC evaluation worker's connection dies mid-conversation.

    The coordinator treats this as a transport failure — the worker is marked
    dead and its shard is re-dispatched — unlike a :class:`RpcError` reply,
    which means the worker is alive and deliberately reported a failure.
    """
