"""DNN workload substrate: layer IR, model zoo, jobs, groups, and benchmarks."""

from repro.workloads.layers import (
    LayerType,
    LayerShape,
    conv2d,
    depthwise_conv2d,
    pointwise_conv2d,
    fully_connected,
    attention,
    embedding_lookup,
)
from repro.workloads.jobs import Job, JobBatch
from repro.workloads.groups import JobGroup, partition_into_groups
from repro.workloads.benchmark import (
    TaskType,
    WorkloadSpec,
    BenchmarkBuilder,
    build_task_workload,
)
from repro.workloads.models import MODEL_REGISTRY, get_model, list_models

__all__ = [
    "LayerType",
    "LayerShape",
    "conv2d",
    "depthwise_conv2d",
    "pointwise_conv2d",
    "fully_connected",
    "attention",
    "embedding_lookup",
    "Job",
    "JobBatch",
    "JobGroup",
    "partition_into_groups",
    "TaskType",
    "WorkloadSpec",
    "BenchmarkBuilder",
    "build_task_workload",
    "MODEL_REGISTRY",
    "get_model",
    "list_models",
]
