"""Recommendation model zoo.

Recommendation models (DLRM, Wide&Deep, NCF, DIN, DIEN) are dominated by MLP
stacks operating on small per-request feature vectors, plus embedding
lookups.  The paper keeps the embedding *gathers* on the host CPU
(Section II-A); the dense interaction and MLP layers are the jobs that reach
the accelerator, and they are the most bandwidth-hungry jobs in the benchmark
because their tiny compute gives almost no weight reuse.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.layers import LayerShape, fully_connected


def _mlp_stack(n: int, prefix: str, dims: Sequence[int]) -> List[LayerShape]:
    """Build a chain of FC layers with the given feature dimensions."""
    layers: List[LayerShape] = []
    for i in range(len(dims) - 1):
        layers.append(fully_connected(n, dims[i + 1], dims[i], name=f"{prefix}.fc{i + 1}"))
    return layers


def dlrm(n: int = 1) -> List[LayerShape]:
    """DLRM (Naumov et al., 2019) with the open-source reference MLP sizes."""
    layers: List[LayerShape] = []
    layers.extend(_mlp_stack(n, "dlrm.bottom", [13, 512, 256, 64]))
    # Feature interaction output (pairwise dot products of 26 sparse + 1 dense
    # embedding of dim 64) concatenated with the dense vector.
    interaction_dim = 27 * 26 // 2 + 64
    layers.extend(_mlp_stack(n, "dlrm.top", [interaction_dim, 512, 256, 1]))
    return layers


def wide_and_deep(n: int = 1) -> List[LayerShape]:
    """Wide & Deep (Cheng et al., 2016)."""
    layers: List[LayerShape] = []
    layers.extend(_mlp_stack(n, "widedeep.deep", [1024, 1024, 512, 256, 1]))
    layers.append(fully_connected(n, 1, 1024, name="widedeep.wide"))
    return layers


def ncf(n: int = 1) -> List[LayerShape]:
    """Neural Collaborative Filtering (He et al., 2017)."""
    layers: List[LayerShape] = []
    layers.extend(_mlp_stack(n, "ncf.mlp", [128, 256, 128, 64, 32]))
    layers.append(fully_connected(n, 1, 32 + 64, name="ncf.predict"))
    return layers


def din(n: int = 1) -> List[LayerShape]:
    """Deep Interest Network (Zhou et al., 2018)."""
    layers: List[LayerShape] = []
    # Attention scoring over a behaviour history of 64 items, embedding 64.
    layers.extend(_mlp_stack(n * 64, "din.attention", [256, 80, 40, 1]))
    layers.extend(_mlp_stack(n, "din.mlp", [512, 200, 80, 2]))
    return layers


def dien(n: int = 1) -> List[LayerShape]:
    """Deep Interest Evolution Network (Zhou et al., 2019).

    The GRU-based interest extractor is modelled as per-step FC layers over a
    history of 64 items (each GRU step is three gate GEMMs).
    """
    layers: List[LayerShape] = []
    history = 64
    hidden = 128
    for step_group in range(4):
        # Group the 64 GRU steps into 4 jobs of 16 steps each to keep the job
        # count manageable while preserving total compute and traffic.
        layers.append(
            fully_connected(n * 16, 3 * hidden, hidden + hidden, name=f"dien.gru_group{step_group + 1}")
        )
    layers.extend(_mlp_stack(n * history, "dien.attention", [2 * hidden, 80, 40, 1]))
    layers.extend(_mlp_stack(n, "dien.mlp", [512, 200, 80, 2]))
    return layers
