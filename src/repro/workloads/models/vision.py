"""Vision model zoo.

Each builder returns the layer shapes of one vision DNN for a given
mini-batch size.  The architectures follow the published model definitions
(ResNet-50, MobileNetV2, ShuffleNet, VGG-16, SqueezeNet, Inception-v4-style,
MnasNet) at the granularity the mapper needs: convolution and fully-connected
layer shapes.  Repeated blocks are generated programmatically; layer names
encode the stage they come from so schedules remain interpretable.
"""

from __future__ import annotations

from typing import List

from repro.workloads.layers import (
    LayerShape,
    conv2d,
    depthwise_conv2d,
    fully_connected,
    pointwise_conv2d,
)


def _bottleneck(n: int, prefix: str, in_ch: int, mid_ch: int, out_ch: int, size: int, stride: int) -> List[LayerShape]:
    """ResNet bottleneck block: 1x1 reduce, 3x3 conv, 1x1 expand."""
    out_size = size // stride
    return [
        pointwise_conv2d(n, mid_ch, in_ch, size, size, name=f"{prefix}.reduce"),
        conv2d(n, mid_ch, mid_ch, out_size, out_size, 3, 3, stride=stride, name=f"{prefix}.conv3x3"),
        pointwise_conv2d(n, out_ch, mid_ch, out_size, out_size, name=f"{prefix}.expand"),
    ]


def resnet50(n: int = 1) -> List[LayerShape]:
    """ResNet-50 (He et al., 2016)."""
    layers: List[LayerShape] = [conv2d(n, 64, 3, 112, 112, 7, 7, stride=2, name="resnet50.conv1")]
    stage_specs = [
        ("conv2", 64, 64, 256, 56, 3),
        ("conv3", 256, 128, 512, 28, 4),
        ("conv4", 512, 256, 1024, 14, 6),
        ("conv5", 1024, 512, 2048, 7, 3),
    ]
    for stage, in_ch, mid_ch, out_ch, out_size, blocks in stage_specs:
        for block in range(blocks):
            stride = 2 if block == 0 and stage != "conv2" else 1
            block_in = in_ch if block == 0 else out_ch
            in_size = out_size * stride
            layers.extend(
                _bottleneck(n, f"resnet50.{stage}_{block + 1}", block_in, mid_ch, out_ch, in_size, stride)
            )
    layers.append(fully_connected(n, 1000, 2048, name="resnet50.fc"))
    return layers


def _inverted_residual(
    n: int, prefix: str, in_ch: int, out_ch: int, size: int, stride: int, expand: int
) -> List[LayerShape]:
    """MobileNetV2 inverted residual: 1x1 expand, 3x3 depthwise, 1x1 project."""
    mid_ch = in_ch * expand
    out_size = size // stride
    block: List[LayerShape] = []
    if expand != 1:
        block.append(pointwise_conv2d(n, mid_ch, in_ch, size, size, name=f"{prefix}.expand"))
    block.append(depthwise_conv2d(n, mid_ch, out_size, out_size, 3, 3, stride=stride, name=f"{prefix}.dw"))
    block.append(pointwise_conv2d(n, out_ch, mid_ch, out_size, out_size, name=f"{prefix}.project"))
    return block


def mobilenet_v2(n: int = 1) -> List[LayerShape]:
    """MobileNetV2 (Sandler et al., 2018)."""
    layers: List[LayerShape] = [conv2d(n, 32, 3, 112, 112, 3, 3, stride=2, name="mobilenetv2.conv1")]
    # (expansion, out_channels, repeats, stride, input_size)
    config = [
        (1, 16, 1, 1, 112),
        (6, 24, 2, 2, 112),
        (6, 32, 3, 2, 56),
        (6, 64, 4, 2, 28),
        (6, 96, 3, 1, 14),
        (6, 160, 3, 2, 14),
        (6, 320, 1, 1, 7),
    ]
    in_ch = 32
    for stage, (expand, out_ch, repeats, stride, size) in enumerate(config, start=1):
        for rep in range(repeats):
            block_stride = stride if rep == 0 else 1
            block_size = size if rep == 0 else size // stride
            layers.extend(
                _inverted_residual(
                    n, f"mobilenetv2.block{stage}_{rep + 1}", in_ch, out_ch, block_size, block_stride, expand
                )
            )
            in_ch = out_ch
    layers.append(pointwise_conv2d(n, 1280, 320, 7, 7, name="mobilenetv2.conv_last"))
    layers.append(fully_connected(n, 1000, 1280, name="mobilenetv2.fc"))
    return layers


def shufflenet(n: int = 1) -> List[LayerShape]:
    """ShuffleNet-style network (Zhang et al., 2018), 1x group approximation."""
    layers: List[LayerShape] = [conv2d(n, 24, 3, 112, 112, 3, 3, stride=2, name="shufflenet.conv1")]
    # (out_channels, repeats, input_size)
    config = [(144, 4, 28), (288, 8, 14), (576, 4, 7)]
    in_ch = 24
    for stage, (out_ch, repeats, size) in enumerate(config, start=2):
        for rep in range(repeats):
            prefix = f"shufflenet.stage{stage}_{rep + 1}"
            stride = 2 if rep == 0 else 1
            block_size = size * stride if rep == 0 else size
            mid_ch = out_ch // 4
            layers.append(pointwise_conv2d(n, mid_ch, in_ch, block_size, block_size, name=f"{prefix}.gconv1"))
            layers.append(
                depthwise_conv2d(n, mid_ch, block_size // stride, block_size // stride, 3, 3, stride=stride,
                                 name=f"{prefix}.dw")
            )
            layers.append(pointwise_conv2d(n, out_ch, mid_ch, block_size // stride, block_size // stride,
                                           name=f"{prefix}.gconv2"))
            in_ch = out_ch
    layers.append(fully_connected(n, 1000, 576, name="shufflenet.fc"))
    return layers


def vgg16(n: int = 1) -> List[LayerShape]:
    """VGG-16 (Simonyan & Zisserman, 2014)."""
    layers: List[LayerShape] = []
    config = [
        (64, 2, 224),
        (128, 2, 112),
        (256, 3, 56),
        (512, 3, 28),
        (512, 3, 14),
    ]
    in_ch = 3
    for stage, (out_ch, repeats, size) in enumerate(config, start=1):
        for rep in range(repeats):
            layers.append(conv2d(n, out_ch, in_ch, size, size, 3, 3, name=f"vgg16.conv{stage}_{rep + 1}"))
            in_ch = out_ch
    layers.append(fully_connected(n, 4096, 512 * 7 * 7, name="vgg16.fc6"))
    layers.append(fully_connected(n, 4096, 4096, name="vgg16.fc7"))
    layers.append(fully_connected(n, 1000, 4096, name="vgg16.fc8"))
    return layers


def squeezenet(n: int = 1) -> List[LayerShape]:
    """SqueezeNet (Iandola et al., 2016) with fire modules."""
    layers: List[LayerShape] = [conv2d(n, 96, 3, 111, 111, 7, 7, stride=2, name="squeezenet.conv1")]
    # (squeeze, expand, input_channels, size)
    fire_config = [
        (16, 64, 96, 55),
        (16, 64, 128, 55),
        (32, 128, 128, 55),
        (32, 128, 256, 27),
        (48, 192, 256, 27),
        (48, 192, 384, 27),
        (64, 256, 384, 27),
        (64, 256, 512, 13),
    ]
    for idx, (squeeze, expand, in_ch, size) in enumerate(fire_config, start=2):
        prefix = f"squeezenet.fire{idx}"
        layers.append(pointwise_conv2d(n, squeeze, in_ch, size, size, name=f"{prefix}.squeeze"))
        layers.append(pointwise_conv2d(n, expand, squeeze, size, size, name=f"{prefix}.expand1x1"))
        layers.append(conv2d(n, expand, squeeze, size, size, 3, 3, name=f"{prefix}.expand3x3"))
    layers.append(pointwise_conv2d(n, 1000, 512, 13, 13, name="squeezenet.conv10"))
    return layers


def inception_v4(n: int = 1) -> List[LayerShape]:
    """Inception-v4-style network (Szegedy et al., 2017), simplified cell stack."""
    layers: List[LayerShape] = [
        conv2d(n, 32, 3, 149, 149, 3, 3, stride=2, name="inceptionv4.stem1"),
        conv2d(n, 32, 32, 147, 147, 3, 3, name="inceptionv4.stem2"),
        conv2d(n, 64, 32, 147, 147, 3, 3, name="inceptionv4.stem3"),
        conv2d(n, 96, 64, 73, 73, 3, 3, stride=2, name="inceptionv4.stem4"),
    ]
    for i in range(4):
        prefix = f"inceptionv4.blockA{i + 1}"
        layers.append(pointwise_conv2d(n, 96, 384, 35, 35, name=f"{prefix}.b1"))
        layers.append(pointwise_conv2d(n, 64, 384, 35, 35, name=f"{prefix}.b2_reduce"))
        layers.append(conv2d(n, 96, 64, 35, 35, 3, 3, name=f"{prefix}.b2_conv"))
        layers.append(conv2d(n, 96, 96, 35, 35, 3, 3, name=f"{prefix}.b3_conv"))
    for i in range(7):
        prefix = f"inceptionv4.blockB{i + 1}"
        layers.append(pointwise_conv2d(n, 384, 1024, 17, 17, name=f"{prefix}.b1"))
        layers.append(pointwise_conv2d(n, 192, 1024, 17, 17, name=f"{prefix}.b2_reduce"))
        layers.append(conv2d(n, 224, 192, 17, 17, 1, 7, name=f"{prefix}.b2_conv1x7"))
        layers.append(conv2d(n, 256, 224, 17, 17, 7, 1, name=f"{prefix}.b2_conv7x1"))
    for i in range(3):
        prefix = f"inceptionv4.blockC{i + 1}"
        layers.append(pointwise_conv2d(n, 256, 1536, 8, 8, name=f"{prefix}.b1"))
        layers.append(pointwise_conv2d(n, 384, 1536, 8, 8, name=f"{prefix}.b2_reduce"))
        layers.append(conv2d(n, 256, 384, 8, 8, 1, 3, name=f"{prefix}.b2_conv1x3"))
        layers.append(conv2d(n, 256, 384, 8, 8, 3, 1, name=f"{prefix}.b2_conv3x1"))
    layers.append(fully_connected(n, 1000, 1536, name="inceptionv4.fc"))
    return layers


def mnasnet(n: int = 1) -> List[LayerShape]:
    """MnasNet-A1-style network (Tan et al., 2019)."""
    layers: List[LayerShape] = [conv2d(n, 32, 3, 112, 112, 3, 3, stride=2, name="mnasnet.conv1")]
    # (expansion, out_channels, repeats, stride, kernel, input_size)
    config = [
        (1, 16, 1, 1, 3, 112),
        (6, 24, 2, 2, 3, 112),
        (3, 40, 3, 2, 5, 56),
        (6, 80, 4, 2, 3, 28),
        (6, 112, 2, 1, 3, 14),
        (6, 160, 3, 2, 5, 14),
        (6, 320, 1, 1, 3, 7),
    ]
    in_ch = 32
    for stage, (expand, out_ch, repeats, stride, kernel, size) in enumerate(config, start=1):
        for rep in range(repeats):
            prefix = f"mnasnet.block{stage}_{rep + 1}"
            block_stride = stride if rep == 0 else 1
            block_size = size if rep == 0 else size // stride
            mid_ch = in_ch * expand
            out_size = block_size // block_stride
            if expand != 1:
                layers.append(pointwise_conv2d(n, mid_ch, in_ch, block_size, block_size, name=f"{prefix}.expand"))
            layers.append(
                depthwise_conv2d(n, mid_ch, out_size, out_size, kernel, kernel, stride=block_stride,
                                 name=f"{prefix}.dw")
            )
            layers.append(pointwise_conv2d(n, out_ch, mid_ch, out_size, out_size, name=f"{prefix}.project"))
            in_ch = out_ch
    layers.append(pointwise_conv2d(n, 1280, 320, 7, 7, name="mnasnet.conv_last"))
    layers.append(fully_connected(n, 1000, 1280, name="mnasnet.fc"))
    return layers
