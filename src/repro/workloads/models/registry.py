"""Registry mapping model names to builders and task families."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.exceptions import WorkloadError
from repro.workloads.layers import LayerShape
from repro.workloads.models import language, recommendation, vision


class ModelFamily(enum.Enum):
    """Task family a model belongs to (Section II-A of the paper)."""

    VISION = "vision"
    LANGUAGE = "language"
    RECOMMENDATION = "recommendation"


#: Signature of a model builder: ``builder(batch_size) -> list of layers``.
ModelBuilder = Callable[[int], List[LayerShape]]


@dataclass(frozen=True)
class ModelSpec:
    """A registered model: its name, family, and layer-shape builder."""

    name: str
    family: ModelFamily
    builder: ModelBuilder
    description: str = ""

    def build(self, batch_size: int = 1) -> List[LayerShape]:
        """Return the layer shapes for the given mini-batch size."""
        if batch_size <= 0:
            raise WorkloadError(f"batch_size must be positive, got {batch_size}")
        return self.builder(batch_size)


def _spec(name: str, family: ModelFamily, builder: ModelBuilder, description: str) -> ModelSpec:
    return ModelSpec(name=name, family=family, builder=builder, description=description)


MODEL_REGISTRY: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        # Vision
        _spec("resnet50", ModelFamily.VISION, vision.resnet50, "ResNet-50 image classifier"),
        _spec("mobilenet_v2", ModelFamily.VISION, vision.mobilenet_v2, "MobileNetV2 mobile classifier"),
        _spec("shufflenet", ModelFamily.VISION, vision.shufflenet, "ShuffleNet mobile classifier"),
        _spec("vgg16", ModelFamily.VISION, vision.vgg16, "VGG-16 image classifier"),
        _spec("squeezenet", ModelFamily.VISION, vision.squeezenet, "SqueezeNet compact classifier"),
        _spec("inception_v4", ModelFamily.VISION, vision.inception_v4, "Inception-v4-style classifier"),
        _spec("mnasnet", ModelFamily.VISION, vision.mnasnet, "MnasNet-A1 mobile classifier"),
        # Language
        _spec("gpt2", ModelFamily.LANGUAGE, language.gpt2, "GPT-2 small decoder"),
        _spec("mobilebert", ModelFamily.LANGUAGE, language.mobilebert, "MobileBERT encoder"),
        _spec("transformer_xl", ModelFamily.LANGUAGE, language.transformer_xl, "Transformer-XL base"),
        _spec("bert_base", ModelFamily.LANGUAGE, language.bert_base, "BERT base encoder"),
        _spec("xlnet", ModelFamily.LANGUAGE, language.xlnet, "XLNet base with two-stream attention"),
        _spec("t5_small", ModelFamily.LANGUAGE, language.t5_small, "T5-small encoder/decoder"),
        # Recommendation
        _spec("dlrm", ModelFamily.RECOMMENDATION, recommendation.dlrm, "DLRM reference model"),
        _spec("wide_and_deep", ModelFamily.RECOMMENDATION, recommendation.wide_and_deep, "Wide & Deep"),
        _spec("ncf", ModelFamily.RECOMMENDATION, recommendation.ncf, "Neural Collaborative Filtering"),
        _spec("din", ModelFamily.RECOMMENDATION, recommendation.din, "Deep Interest Network"),
        _spec("dien", ModelFamily.RECOMMENDATION, recommendation.dien, "Deep Interest Evolution Network"),
    ]
}


def get_model(name: str, batch_size: int = 1) -> List[LayerShape]:
    """Return the layer shapes of the registered model *name*."""
    try:
        spec = MODEL_REGISTRY[name]
    except KeyError as exc:
        available = ", ".join(sorted(MODEL_REGISTRY))
        raise WorkloadError(f"unknown model {name!r}; available models: {available}") from exc
    return spec.build(batch_size)


def list_models(family: ModelFamily | None = None) -> List[str]:
    """List registered model names, optionally restricted to one family."""
    if family is None:
        return sorted(MODEL_REGISTRY)
    return sorted(name for name, spec in MODEL_REGISTRY.items() if spec.family is family)


def models_for_family(family: ModelFamily) -> List[ModelSpec]:
    """Return the full :class:`ModelSpec` objects for one task family."""
    return [spec for spec in MODEL_REGISTRY.values() if spec.family is family]
