"""Model zoo: layer-shape definitions for the DNNs named in the paper.

The registry exposes every model through :func:`get_model`, which returns the
list of :class:`~repro.workloads.layers.LayerShape` objects for a given
mini-batch size.  Models are grouped by task type (vision, language,
recommendation), matching Section VI-A1 of the paper.
"""

from repro.workloads.models.registry import (
    ModelFamily,
    ModelSpec,
    MODEL_REGISTRY,
    get_model,
    list_models,
    models_for_family,
)

__all__ = [
    "ModelFamily",
    "ModelSpec",
    "MODEL_REGISTRY",
    "get_model",
    "list_models",
    "models_for_family",
]
