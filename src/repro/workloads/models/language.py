"""Language model zoo.

Language models (GPT-2, MobileBERT, Transformer-XL, BERT, XLNet, T5-small)
are dominated by attention and MLP (fully-connected) layers.  Following the
paper (Section II-A), attention score/context computations are modelled as
GEMM-shaped layers whose cost grows quadratically with sequence length, and
the query/key/value/output projections plus feed-forward blocks are plain
fully-connected layers.  Embedding lookups are assumed to stay on the host
CPU, so they are not emitted here.
"""

from __future__ import annotations

from typing import List

from repro.workloads.layers import LayerShape, attention, fully_connected


def _transformer_block(
    n: int,
    prefix: str,
    seq_len: int,
    hidden: int,
    ffn_dim: int,
    num_heads: int,
) -> List[LayerShape]:
    """One standard transformer encoder/decoder block.

    Emits the four attention projections, the attention score/context GEMMs,
    and the two feed-forward layers.  Projections operate on ``n * seq_len``
    token rows.
    """
    tokens = n * seq_len
    return [
        fully_connected(tokens, hidden, hidden, name=f"{prefix}.q_proj"),
        fully_connected(tokens, hidden, hidden, name=f"{prefix}.k_proj"),
        fully_connected(tokens, hidden, hidden, name=f"{prefix}.v_proj"),
        attention(n, seq_len, hidden, num_heads=num_heads, name=f"{prefix}.attention"),
        fully_connected(tokens, hidden, hidden, name=f"{prefix}.out_proj"),
        fully_connected(tokens, ffn_dim, hidden, name=f"{prefix}.ffn_up"),
        fully_connected(tokens, hidden, ffn_dim, name=f"{prefix}.ffn_down"),
    ]


def gpt2(n: int = 1, seq_len: int = 64) -> List[LayerShape]:
    """GPT-2 small (Radford et al., 2019): 12 layers, hidden 768, 12 heads.

    The default sequence length models one decoding mini-batch slice; jobs in
    the batched-inference benchmark are intentionally modest-sized (hundreds
    of microseconds of compute), matching the per-job profile of Fig. 7.
    """
    layers: List[LayerShape] = []
    for i in range(12):
        layers.extend(_transformer_block(n, f"gpt2.layer{i + 1}", seq_len, 768, 3072, 12))
    layers.append(fully_connected(n * seq_len, 768, 768, name="gpt2.final_proj"))
    return layers


def mobilebert(n: int = 1, seq_len: int = 64) -> List[LayerShape]:
    """MobileBERT: 24 thin layers with bottleneck hidden size 128/512."""
    layers: List[LayerShape] = []
    for i in range(24):
        prefix = f"mobilebert.layer{i + 1}"
        tokens = n * seq_len
        layers.extend(
            [
                fully_connected(tokens, 128, 512, name=f"{prefix}.bottleneck_in"),
                fully_connected(tokens, 128, 128, name=f"{prefix}.q_proj"),
                fully_connected(tokens, 128, 128, name=f"{prefix}.k_proj"),
                fully_connected(tokens, 128, 128, name=f"{prefix}.v_proj"),
                attention(n, seq_len, 128, num_heads=4, name=f"{prefix}.attention"),
                fully_connected(tokens, 512, 128, name=f"{prefix}.ffn_up"),
                fully_connected(tokens, 128, 512, name=f"{prefix}.ffn_down"),
                fully_connected(tokens, 512, 128, name=f"{prefix}.bottleneck_out"),
            ]
        )
    return layers


def transformer_xl(n: int = 1, seq_len: int = 128) -> List[LayerShape]:
    """Transformer-XL base (Dai et al., 2019): 12 layers, hidden 512."""
    layers: List[LayerShape] = []
    for i in range(12):
        layers.extend(_transformer_block(n, f"transformerxl.layer{i + 1}", seq_len, 512, 2048, 8))
    return layers


def bert_base(n: int = 1, seq_len: int = 64) -> List[LayerShape]:
    """BERT base (Devlin et al., 2018): 12 layers, hidden 768."""
    layers: List[LayerShape] = []
    for i in range(12):
        layers.extend(_transformer_block(n, f"bert.layer{i + 1}", seq_len, 768, 3072, 12))
    layers.append(fully_connected(n, 768, 768, name="bert.pooler"))
    return layers


def xlnet(n: int = 1, seq_len: int = 64) -> List[LayerShape]:
    """XLNet base (Yang et al., 2019): two-stream attention approximated as 1.5x blocks."""
    layers: List[LayerShape] = []
    for i in range(12):
        prefix = f"xlnet.layer{i + 1}"
        layers.extend(_transformer_block(n, prefix, seq_len, 768, 3072, 12))
        # The second (query) attention stream adds one extra attention GEMM.
        layers.append(attention(n, seq_len, 768, num_heads=12, name=f"{prefix}.query_stream"))
    return layers


def t5_small(n: int = 1, seq_len: int = 64) -> List[LayerShape]:
    """T5-small (Raffel et al., 2019): 6 encoder + 6 decoder layers, hidden 512."""
    layers: List[LayerShape] = []
    for i in range(6):
        layers.extend(_transformer_block(n, f"t5.encoder{i + 1}", seq_len, 512, 2048, 8))
    for i in range(6):
        prefix = f"t5.decoder{i + 1}"
        layers.extend(_transformer_block(n, prefix, seq_len, 512, 2048, 8))
        # Cross-attention over the encoder output.
        layers.append(attention(n, seq_len, 512, num_heads=8, name=f"{prefix}.cross_attention"))
    return layers
