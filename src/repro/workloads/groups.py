"""Dependency-free job groups.

The host control program divides the queued job pool into groups whose jobs
have no dependencies among each other (Section III, "Group").  The mapper
optimizes one group at a time; the group size is the key knob studied in
Fig. 17.  Because the paper targets batched multi-tenant jobs (independent
mini-batches from independent models), grouping here is a straightforward
slicing of the queue, optionally interleaving models so every group mixes
task types the way a real multi-tenant queue would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence


from repro.exceptions import WorkloadError
from repro.utils.rng import SeedLike, ensure_rng
from repro.workloads.jobs import Job, JobBatch


@dataclass(frozen=True)
class JobGroup:
    """A dependency-free set of jobs optimized as one mapping problem."""

    group_id: int
    jobs: Sequence[Job]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise WorkloadError("a JobGroup must contain at least one job")

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> Job:
        return self.jobs[index]

    @property
    def size(self) -> int:
        """Number of jobs in the group (the paper's "group size")."""
        return len(self.jobs)

    @property
    def total_flops(self) -> int:
        """Aggregate FLOPs of the group; the numerator of the throughput objective."""
        return sum(job.flops for job in self.jobs)

    @property
    def job_ids(self) -> List[int]:
        """Job ids in group order."""
        return [job.job_id for job in self.jobs]

    def describe(self) -> str:
        """Short description used in logs."""
        return f"group{self.group_id}(size={self.size}, flops={self.total_flops:.3e})"


def partition_into_groups(
    batch: JobBatch,
    group_size: int,
    num_sub_accelerators: int = 1,
    shuffle: bool = False,
    rng: SeedLike = None,
    drop_incomplete: bool = False,
) -> List[JobGroup]:
    """Partition a :class:`JobBatch` into dependency-free groups.

    Parameters
    ----------
    batch:
        The queued job pool.
    group_size:
        Number of jobs per group.  Must be at least ``num_sub_accelerators``
        (otherwise some sub-accelerators would necessarily idle, Section III).
    num_sub_accelerators:
        Number of cores in the target platform, used only for the validity
        check above.
    shuffle:
        If true, jobs are shuffled before slicing so each group mixes models,
        mimicking an interleaved multi-tenant queue.
    rng:
        Seed or generator for the shuffle.
    drop_incomplete:
        If true, a trailing group smaller than ``group_size`` is dropped;
        otherwise it is kept as a smaller final group.
    """
    if group_size <= 0:
        raise WorkloadError(f"group_size must be positive, got {group_size}")
    if num_sub_accelerators <= 0:
        raise WorkloadError(f"num_sub_accelerators must be positive, got {num_sub_accelerators}")
    if group_size < num_sub_accelerators:
        raise WorkloadError(
            f"group_size ({group_size}) must be >= number of sub-accelerators "
            f"({num_sub_accelerators}) so no core is forced to idle"
        )
    if len(batch) == 0:
        return []

    jobs = list(batch.jobs)
    if shuffle:
        generator = ensure_rng(rng)
        order = generator.permutation(len(jobs))
        jobs = [jobs[i] for i in order]

    groups: List[JobGroup] = []
    for group_id, start in enumerate(range(0, len(jobs), group_size)):
        chunk = jobs[start:start + group_size]
        if len(chunk) < group_size and drop_incomplete:
            break
        if len(chunk) < num_sub_accelerators:
            # A trailing fragment smaller than the core count cannot keep all
            # cores busy; merge it into the previous group when possible.
            if groups:
                merged = list(groups[-1].jobs) + chunk
                groups[-1] = JobGroup(group_id=groups[-1].group_id, jobs=tuple(merged))
                break
        groups.append(JobGroup(group_id=group_id, jobs=tuple(chunk)))
    return groups


def interleave_batches(batches: Sequence[JobBatch]) -> JobBatch:
    """Round-robin interleave several model batches into one multi-tenant queue.

    This mirrors how a data-center queue receives jobs from several tenants at
    once: consecutive queue positions come from different models, so any
    contiguous group is automatically a mix of tenants.
    """
    if not batches:
        return JobBatch([])
    iterators = [iter(b.jobs) for b in batches]
    interleaved: List[Job] = []
    active = list(range(len(iterators)))
    while active:
        still_active = []
        for idx in active:
            try:
                interleaved.append(next(iterators[idx]))
                still_active.append(idx)
            except StopIteration:
                pass
        active = still_active
    return JobBatch(
        Job(job_id=i, layer=job.layer, model_name=job.model_name, task_type=job.task_type)
        for i, job in enumerate(interleaved)
    )
