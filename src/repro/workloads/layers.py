"""Layer intermediate representation (IR) used by the workload substrate.

The mapper never executes a DNN; it only needs, for every layer, the tensor
shapes that determine compute (MACs) and data movement (weight / input /
output bytes).  This module defines a single :class:`LayerShape` dataclass
that covers the layer families the paper considers (Section II-A):

* convolution layers (regular 2D, depth-wise, point-wise) used by vision
  models,
* fully-connected / GEMM layers used by MLPs and attention projections,
* attention layers, which the paper models "as several FCs",
* embedding-lookup layers used by recommendation and language models (the
  paper assumes the gather itself stays on the host; the projection that
  follows is what lands on the accelerator).

All convenience constructors normalise their inputs into the seven classic
convolution dimensions ``(N, K, C, Y, X, R, S)`` so the cost model can treat
every layer uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.exceptions import WorkloadError


class LayerType(enum.Enum):
    """Enumeration of the layer families supported by the cost model."""

    CONV2D = "conv2d"
    DEPTHWISE_CONV2D = "depthwise_conv2d"
    POINTWISE_CONV2D = "pointwise_conv2d"
    FULLY_CONNECTED = "fully_connected"
    ATTENTION = "attention"
    EMBEDDING = "embedding"

    @property
    def is_convolutional(self) -> bool:
        """Whether the layer has spatial structure (kernel window > 1x1 possible)."""
        return self in (LayerType.CONV2D, LayerType.DEPTHWISE_CONV2D, LayerType.POINTWISE_CONV2D)


@dataclass(frozen=True)
class LayerShape:
    """Shape of a single DNN layer in the canonical 7-loop convolution form.

    Attributes
    ----------
    layer_type:
        The family of the layer; affects reuse behaviour in the cost model.
    n:
        Mini-batch size (number of activations in the job).
    k:
        Number of output channels (or output features for FC layers).
    c:
        Number of input channels (or input features for FC layers).
    y, x:
        Output spatial height and width.  FC-like layers use ``y = x = 1``.
    r, s:
        Kernel height and width.  FC-like layers use ``r = s = 1``.
    stride:
        Convolution stride (used only to document the original shape; the
        output dimensions y/x are already post-stride).
    name:
        Optional human-readable layer name, e.g. ``"resnet50.conv3_2"``.
    """

    layer_type: LayerType
    n: int
    k: int
    c: int
    y: int
    x: int
    r: int
    s: int
    stride: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        for dim_name in ("n", "k", "c", "y", "x", "r", "s", "stride"):
            value = getattr(self, dim_name)
            if not isinstance(value, int):
                raise WorkloadError(f"layer dimension {dim_name!r} must be an int, got {type(value).__name__}")
            if value <= 0:
                raise WorkloadError(f"layer dimension {dim_name!r} must be positive, got {value}")
        if self.layer_type is LayerType.DEPTHWISE_CONV2D and self.k != self.c:
            raise WorkloadError(
                "depth-wise convolutions require k == c "
                f"(got k={self.k}, c={self.c}); each channel is filtered independently"
            )

    # ------------------------------------------------------------------
    # Derived quantities consumed by the cost model.
    # ------------------------------------------------------------------
    @property
    def macs(self) -> int:
        """Number of multiply-accumulate operations in the layer."""
        if self.layer_type is LayerType.DEPTHWISE_CONV2D:
            # Each output channel only consumes its own input channel.
            return self.n * self.k * self.y * self.x * self.r * self.s
        if self.layer_type is LayerType.EMBEDDING:
            # Embedding lookups are gathers: one "MAC-equivalent" per fetched
            # element keeps the accounting non-zero while reflecting that they
            # are data-movement, not compute, dominated.
            return self.n * self.k
        return self.n * self.k * self.c * self.y * self.x * self.r * self.s

    @property
    def flops(self) -> int:
        """Floating point operations (2x MACs by convention)."""
        return 2 * self.macs

    @property
    def weight_elements(self) -> int:
        """Number of weight parameters touched by the layer."""
        if self.layer_type is LayerType.DEPTHWISE_CONV2D:
            return self.k * self.r * self.s
        if self.layer_type is LayerType.EMBEDDING:
            # Only the gathered rows are fetched, not the full table.
            return self.n * self.k
        return self.k * self.c * self.r * self.s

    @property
    def input_elements(self) -> int:
        """Number of input activation elements (post-im2col footprint)."""
        if self.layer_type is LayerType.EMBEDDING:
            return self.n * self.c
        input_y = (self.y - 1) * self.stride + self.r
        input_x = (self.x - 1) * self.stride + self.s
        return self.n * self.c * input_y * input_x

    @property
    def output_elements(self) -> int:
        """Number of output activation elements."""
        return self.n * self.k * self.y * self.x

    @property
    def total_elements(self) -> int:
        """Total tensor footprint (weights + inputs + outputs)."""
        return self.weight_elements + self.input_elements + self.output_elements

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per element moved — a proxy for compute- vs memory-boundedness."""
        return self.macs / max(1, self.total_elements)

    # ------------------------------------------------------------------
    # Convenience transforms.
    # ------------------------------------------------------------------
    def with_batch(self, n: int) -> "LayerShape":
        """Return a copy of this layer with mini-batch size *n*."""
        return replace(self, n=n)

    def scaled_spatial(self, factor: int) -> "LayerShape":
        """Return a copy with spatial output dimensions divided by *factor*.

        Useful for building reduced-resolution variants of vision models in
        tests without re-declaring every layer.
        """
        if factor <= 0:
            raise WorkloadError(f"factor must be positive, got {factor}")
        return replace(self, y=max(1, self.y // factor), x=max(1, self.x // factor))

    def describe(self) -> str:
        """One-line description used in logs and schedule visualisations."""
        return (
            f"{self.name or self.layer_type.value}"
            f"[N{self.n} K{self.k} C{self.c} Y{self.y} X{self.x} R{self.r} S{self.s}]"
        )


# ----------------------------------------------------------------------
# Constructors for the supported layer families.
# ----------------------------------------------------------------------
def conv2d(
    n: int,
    k: int,
    c: int,
    y: int,
    x: int,
    r: int,
    s: int,
    stride: int = 1,
    name: str = "",
) -> LayerShape:
    """Build a regular 2D convolution layer shape."""
    return LayerShape(LayerType.CONV2D, n=n, k=k, c=c, y=y, x=x, r=r, s=s, stride=stride, name=name)


def depthwise_conv2d(n: int, c: int, y: int, x: int, r: int, s: int, stride: int = 1, name: str = "") -> LayerShape:
    """Build a depth-wise convolution (one filter per channel)."""
    return LayerShape(LayerType.DEPTHWISE_CONV2D, n=n, k=c, c=c, y=y, x=x, r=r, s=s, stride=stride, name=name)


def pointwise_conv2d(n: int, k: int, c: int, y: int, x: int, name: str = "") -> LayerShape:
    """Build a 1x1 (point-wise) convolution."""
    return LayerShape(LayerType.POINTWISE_CONV2D, n=n, k=k, c=c, y=y, x=x, r=1, s=1, stride=1, name=name)


def fully_connected(n: int, out_features: int, in_features: int, name: str = "") -> LayerShape:
    """Build a fully-connected / GEMM layer: ``[n, in] @ [in, out]``."""
    return LayerShape(
        LayerType.FULLY_CONNECTED,
        n=n,
        k=out_features,
        c=in_features,
        y=1,
        x=1,
        r=1,
        s=1,
        name=name,
    )


def attention(n: int, sequence_length: int, hidden_dim: int, num_heads: int = 1, name: str = "") -> LayerShape:
    """Model an attention score+context computation as a GEMM-shaped layer.

    Following the paper (Section II-A), attention is modelled "as several FCs".
    The quadratic sequence-length cost appears through the ``k`` dimension:
    each of the ``n * sequence_length`` query rows attends over
    ``sequence_length`` keys of width ``hidden_dim``.
    """
    if num_heads <= 0:
        raise WorkloadError(f"num_heads must be positive, got {num_heads}")
    return LayerShape(
        LayerType.ATTENTION,
        n=n * sequence_length,
        k=sequence_length,
        c=hidden_dim,
        y=1,
        x=1,
        r=1,
        s=1,
        name=name,
    )


def embedding_lookup(n: int, num_lookups: int, embedding_dim: int, name: str = "") -> LayerShape:
    """Model an embedding gather-and-reduce as a bandwidth-dominated layer."""
    return LayerShape(
        LayerType.EMBEDDING,
        n=n * num_lookups,
        k=embedding_dim,
        c=embedding_dim,
        y=1,
        x=1,
        r=1,
        s=1,
        name=name,
    )
