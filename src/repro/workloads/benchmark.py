"""Benchmark workload generator.

The paper builds its benchmark (Section VI-A2) by collecting models from four
task types — Vision, Language (Lang), Recommendation (Recom), and Mix — and
creating workloads of hundreds to thousands of jobs, which are then chopped
into dependency-free groups (default group size 100).

Because the original data-center traces are not public, this module generates
the same *kind* of workload synthetically: it samples layers from the model
zoo for the requested task type, with a seeded RNG so every experiment is
reproducible.  This is the substitution documented in DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from repro.exceptions import WorkloadError
from repro.utils.rng import ensure_rng
from repro.workloads.groups import JobGroup, partition_into_groups
from repro.workloads.jobs import Job, JobBatch
from repro.workloads.layers import LayerShape
from repro.workloads.models import ModelFamily, MODEL_REGISTRY, models_for_family


class TaskType(enum.Enum):
    """The four benchmark task types of Section VI-A2."""

    VISION = "vision"
    LANGUAGE = "language"
    RECOMMENDATION = "recommendation"
    MIX = "mix"

    @property
    def families(self) -> List[ModelFamily]:
        """Model families that contribute jobs to this task type."""
        if self is TaskType.VISION:
            return [ModelFamily.VISION]
        if self is TaskType.LANGUAGE:
            return [ModelFamily.LANGUAGE]
        if self is TaskType.RECOMMENDATION:
            return [ModelFamily.RECOMMENDATION]
        return [ModelFamily.VISION, ModelFamily.LANGUAGE, ModelFamily.RECOMMENDATION]


#: Default mini-batch size per job for each family.  Vision jobs run single
#: images (high per-job compute already); language jobs run one sequence;
#: recommendation jobs use a small request mini-batch, which keeps them the
#: most bandwidth-intensive jobs in the benchmark (little weight reuse),
#: matching the per-job characteristics of Fig. 7 in the paper.
DEFAULT_BATCH_SIZES: Dict[ModelFamily, int] = {
    ModelFamily.VISION: 1,
    ModelFamily.LANGUAGE: 1,
    ModelFamily.RECOMMENDATION: 1,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one benchmark workload.

    Attributes
    ----------
    task:
        Which task type to draw models from.
    num_jobs:
        Total number of jobs in the workload.
    group_size:
        Dependency-free group size used when partitioning the workload.
    seed:
        RNG seed; identical specs produce identical workloads.
    models:
        Optional explicit list of model names.  When omitted, all registered
        models of the task's families are used.
    batch_sizes:
        Optional per-family mini-batch override.
    """

    task: TaskType
    num_jobs: int = 500
    group_size: int = 100
    seed: int = 0
    models: Optional[Sequence[str]] = None
    batch_sizes: Optional[Dict[ModelFamily, int]] = None

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise WorkloadError(f"num_jobs must be positive, got {self.num_jobs}")
        if self.group_size <= 0:
            raise WorkloadError(f"group_size must be positive, got {self.group_size}")


class BenchmarkBuilder:
    """Builds multi-tenant batched-job workloads from the model zoo."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self._rng = ensure_rng(spec.seed)
        self._layer_pool = self._build_layer_pool()

    # ------------------------------------------------------------------
    def _model_names(self) -> List[str]:
        """Resolve the model names contributing to this workload."""
        if self.spec.models is not None:
            unknown = [m for m in self.spec.models if m not in MODEL_REGISTRY]
            if unknown:
                raise WorkloadError(f"unknown models in spec: {unknown}")
            return list(self.spec.models)
        names: List[str] = []
        for family in self.spec.task.families:
            names.extend(spec.name for spec in models_for_family(family))
        return names

    def _batch_size_for(self, family: ModelFamily) -> int:
        overrides = self.spec.batch_sizes or {}
        return overrides.get(family, DEFAULT_BATCH_SIZES[family])

    def _build_layer_pool(self) -> List[tuple[LayerShape, str, str]]:
        """Materialise (layer, model_name, task_type) tuples to sample jobs from."""
        pool: List[tuple[LayerShape, str, str]] = []
        for name in self._model_names():
            spec = MODEL_REGISTRY[name]
            batch = self._batch_size_for(spec.family)
            for layer in spec.build(batch):
                pool.append((layer, name, spec.family.value))
        if not pool:
            raise WorkloadError("workload layer pool is empty; no models matched the spec")
        return pool

    # ------------------------------------------------------------------
    def build_batch(self) -> JobBatch:
        """Sample ``num_jobs`` jobs from the layer pool into a JobBatch.

        Jobs are drawn uniformly from the pool with replacement, which models
        a queue receiving repeated mini-batches of the tenants' layers (the
        batched-job scenario of Section III).
        """
        indices = self._rng.integers(0, len(self._layer_pool), size=self.spec.num_jobs)
        jobs = []
        for job_id, idx in enumerate(indices):
            layer, model_name, task_type = self._layer_pool[int(idx)]
            jobs.append(Job(job_id=job_id, layer=layer, model_name=model_name, task_type=task_type))
        return JobBatch(jobs)

    def build_groups(self, num_sub_accelerators: int = 1) -> List[JobGroup]:
        """Build the workload and partition it into dependency-free groups."""
        batch = self.build_batch()
        return partition_into_groups(
            batch,
            group_size=self.spec.group_size,
            num_sub_accelerators=num_sub_accelerators,
            shuffle=False,
        )

    def build_single_group(self, num_sub_accelerators: int = 1) -> JobGroup:
        """Convenience: build just the first group (what most experiments optimize)."""
        groups = self.build_groups(num_sub_accelerators)
        if not groups:
            raise WorkloadError("workload produced no groups")
        return groups[0]


def build_task_workload(
    task: TaskType,
    group_size: int = 100,
    num_groups: int = 1,
    seed: int = 0,
    num_sub_accelerators: int = 1,
    models: Optional[Sequence[str]] = None,
) -> List[JobGroup]:
    """One-call helper: build ``num_groups`` groups for a task type.

    This is the entry point used by the experiments, examples, and benchmark
    harness.
    """
    spec = WorkloadSpec(
        task=task,
        num_jobs=group_size * num_groups,
        group_size=group_size,
        seed=seed,
        models=models,
    )
    builder = BenchmarkBuilder(spec)
    groups = builder.build_groups(num_sub_accelerators=num_sub_accelerators)
    return groups[:num_groups]
