"""Jobs and job batches.

Following Section III of the paper, a *job* is one mini-batch of one layer of
one model in the multi-tenant system: a set of activations plus the layer's
weights.  Jobs are the unit the mapper assigns to sub-accelerators and
orders.  A :class:`JobBatch` is the pool of queued jobs the host control
program later partitions into dependency-free groups.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.exceptions import WorkloadError
from repro.workloads.layers import LayerShape


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work: a mini-batch of a single DNN layer.

    Attributes
    ----------
    job_id:
        Unique integer identifier within a workload.
    layer:
        Shape of the layer (already carries the mini-batch size ``n``).
    model_name:
        Name of the model the layer belongs to (for reporting and heuristics).
    task_type:
        Task family string, e.g. ``"vision"``; used by the warm-start engine
        to recognise similar workloads.
    """

    job_id: int
    layer: LayerShape
    model_name: str = ""
    task_type: str = ""

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise WorkloadError(f"job_id must be non-negative, got {self.job_id}")

    @property
    def flops(self) -> int:
        """Floating point operations performed by this job."""
        return self.layer.flops

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of this job."""
        return self.layer.macs

    def describe(self) -> str:
        """Human-readable one-line description."""
        return f"job{self.job_id}({self.model_name or 'unknown'}:{self.layer.describe()})"


class JobBatch:
    """An ordered pool of jobs queued at the host.

    The batch is what the host-side control program sees before it divides the
    queue into dependency-free groups (Section III, "Group").  It behaves like
    a read-only sequence of :class:`Job`.
    """

    def __init__(self, jobs: Iterable[Job]):
        self._jobs: List[Job] = list(jobs)
        seen_ids = set()
        for job in self._jobs:
            if job.job_id in seen_ids:
                raise WorkloadError(f"duplicate job_id {job.job_id} in JobBatch")
            seen_ids.add(job.job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    @property
    def jobs(self) -> Sequence[Job]:
        """The jobs in queue order."""
        return tuple(self._jobs)

    @property
    def total_flops(self) -> int:
        """Aggregate FLOPs across all queued jobs."""
        return sum(job.flops for job in self._jobs)

    @property
    def model_names(self) -> List[str]:
        """Distinct model names present in the batch, in first-seen order."""
        names: List[str] = []
        for job in self._jobs:
            if job.model_name not in names:
                names.append(job.model_name)
        return names

    @property
    def task_types(self) -> List[str]:
        """Distinct task types present in the batch, in first-seen order."""
        types: List[str] = []
        for job in self._jobs:
            if job.task_type not in types:
                types.append(job.task_type)
        return types

    @staticmethod
    def from_layers(
        layers: Iterable[LayerShape],
        model_name: str = "",
        task_type: str = "",
        start_id: int = 0,
    ) -> "JobBatch":
        """Build a batch with one job per layer, ids assigned sequentially."""
        counter = itertools.count(start_id)
        return JobBatch(
            Job(job_id=next(counter), layer=layer, model_name=model_name, task_type=task_type)
            for layer in layers
        )

    def concatenate(self, other: "JobBatch") -> "JobBatch":
        """Concatenate two batches, re-assigning ids to stay unique."""
        combined = list(self._jobs) + list(other._jobs)
        return JobBatch(
            Job(job_id=i, layer=job.layer, model_name=job.model_name, task_type=job.task_type)
            for i, job in enumerate(combined)
        )
