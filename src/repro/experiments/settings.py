"""Experiment scales.

The paper runs every search with a 10K-sample budget on groups of 100 jobs.
Re-running all figures at that scale takes a while on a laptop, so the
experiment runners accept a *scale* that shrinks the group size and sampling
budget while keeping every other aspect of the experiment identical.  The
scale is chosen via the ``REPRO_SCALE`` environment variable:

* ``tiny`` — fractions of a second per figure; used by the CLI smoke tests
  that run every registered scenario.
* ``smoke`` — a few seconds per figure; used by the unit tests.
* ``small`` — the default for the benchmark harness; minutes for the full set.
* ``paper`` — the paper's settings (group size 100, 10K samples).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List

from repro.exceptions import ExperimentError

#: Environment variable controlling the default scale.
SCALE_ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade experiment fidelity for runtime."""

    name: str
    #: Dependency-free group size (the paper's default is 100).
    group_size: int
    #: Fitness-evaluation budget per search (the paper's default is 10 000).
    sampling_budget: int
    #: Budget for the reinforcement-learning agents.  RL episodes are much
    #: slower in wall-clock terms, so the reduced scales trim their budget
    #: while the ``paper`` scale keeps it equal to everyone else's.
    rl_sampling_budget: int
    #: Extended budget used by the convergence study (Fig. 11).
    convergence_budget: int
    #: Samples for the "exhaustively sampled" reference of Fig. 10.
    exhaustive_samples: int
    #: Population size for the GA-family optimizers.
    population_size: int

    def __post_init__(self) -> None:
        if self.group_size <= 0 or self.sampling_budget <= 0:
            raise ExperimentError("group_size and sampling_budget must be positive")


_SCALES: Dict[str, ExperimentScale] = {
    # The group size must cover the largest platform used by the registered
    # scenarios (S3/S4/S5 have 8 sub-accelerators each).
    "tiny": ExperimentScale(
        name="tiny",
        group_size=8,
        sampling_budget=48,
        rl_sampling_budget=24,
        convergence_budget=96,
        exhaustive_samples=120,
        population_size=12,
    ),
    "smoke": ExperimentScale(
        name="smoke",
        group_size=16,
        sampling_budget=120,
        rl_sampling_budget=60,
        convergence_budget=240,
        exhaustive_samples=300,
        population_size=24,
    ),
    "small": ExperimentScale(
        name="small",
        group_size=50,
        sampling_budget=800,
        rl_sampling_budget=300,
        convergence_budget=2_000,
        exhaustive_samples=3_000,
        population_size=50,
    ),
    "paper": ExperimentScale(
        name="paper",
        group_size=100,
        sampling_budget=10_000,
        rl_sampling_budget=10_000,
        convergence_budget=100_000,
        exhaustive_samples=1_000_000,
        population_size=100,
    ),
}


def list_scales() -> List[str]:
    """Names of the available experiment scales."""
    return sorted(_SCALES)


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve an experiment scale by name or from the environment.

    Precedence: explicit *name* argument, then the ``REPRO_SCALE`` environment
    variable, then the ``small`` default.
    """
    if name is None:
        name = os.environ.get(SCALE_ENV_VAR, "small")
    key = name.lower()
    if key not in _SCALES:
        raise ExperimentError(f"unknown scale {name!r}; available: {list_scales()}")
    return _SCALES[key]
