"""Experiment runners: the paper's tables/figures as declarative scenarios.

Every figure/table of the paper's evaluation is registered here as a
:class:`~repro.experiments.scenarios.ScenarioSpec` — a declarative grid
(setting x bandwidth x task x objective x method x seed) plus a small
post-processing hook that shapes the raw per-cell search results into the
figure's output dict.  Scenarios that are not grids of independent searches
(Fig. 7's job analysis, Fig. 10's sample recording, Fig. 14's
fixed-vs-flexible study, Fig. 15's schedule visualisation, Table V's
warm-start transfer) register a ``custom_runner`` instead.

The historical ``run_fig*``/``run_table5`` entry points are kept as thin
wrappers with unchanged signatures and outputs; they delegate to
:func:`~repro.experiments.scenarios.run_scenario`, so the same registry
drives ``repro experiment <name>``, the benchmark harness, and the
resumable ``repro campaign`` engine.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.accelerator import build_setting
from repro.analysis.convergence import ConvergenceCurve, convergence_from_history
from repro.analysis.gantt import schedule_to_bandwidth_series, schedule_to_gantt
from repro.analysis.pca import project_encodings
from repro.analysis.reporting import normalized_values_with_reference, normalized_with_reference
from repro.core.analyzer import JobAnalyzer
from repro.core.evalconfig import EvalConfig, resolve_eval_config
from repro.core.framework import M3E, SearchResult
from repro.exceptions import ExperimentError
from repro.experiments.scenarios import (
    BudgetPolicy,
    Panel,
    ScenarioContext,
    ScenarioRun,
    ScenarioSpec,
    default_optimizer_options,
    default_post_process,
    register_scenario,
    run_scenario,
)
from repro.experiments.stats import (
    MetricStats,
    aggregate_cells,
    cross_seed_agreement,
    replicate_table,
    rows_from_run,
)
from repro.experiments.settings import ExperimentScale, get_scale
from repro.optimizers import build_optimizer
from repro.optimizers.registry import PAPER_COMPARISON_METHODS
from repro.optimizers.warmstart import WarmStartEngine
from repro.utils.rng import spawn_rngs
from repro.utils.tables import unique_key
from repro.workloads.benchmark import DEFAULT_BATCH_SIZES, TaskType, build_task_workload
from repro.workloads.groups import JobGroup
from repro.workloads.models import MODEL_REGISTRY

#: Default bandwidths per accelerator class (Section VI-A3).
SMALL_DEFAULT_BW = 16.0
LARGE_DEFAULT_BW = 256.0

#: The default budget policy: the scale's sampling budget, with the reduced
#: RL budget applied to any method the optimizer registry marks as RL.
DEFAULT_BUDGET_POLICY = BudgetPolicy()


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _group_for(
    task: TaskType,
    platform,
    scale: ExperimentScale,
    seed: int,
    group_size: Optional[int] = None,
) -> JobGroup:
    """Build the first dependency-free group of a task workload."""
    size = group_size if group_size is not None else scale.group_size
    groups = build_task_workload(
        task,
        group_size=size,
        num_groups=1,
        seed=seed,
        num_sub_accelerators=platform.num_sub_accelerators,
    )
    if not groups:
        raise ExperimentError(f"workload for task {task} produced no groups")
    return groups[0]


def run_method_comparison(
    setting: str,
    bandwidth_gbps: float,
    task: TaskType,
    methods: Sequence[str] = tuple(PAPER_COMPARISON_METHODS),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    group: Optional[JobGroup] = None,
    eval_backend: Optional[str] = None,
    eval_workers: Optional[int] = None,
    eval_hosts: "str | Sequence[str] | None" = None,
    rpc_token: Optional[str] = None,
    eval_config: Optional[EvalConfig] = None,
) -> Dict[str, SearchResult]:
    """Run several mapping methods on one (setting, bandwidth, task) problem.

    This is the primitive behind Fig. 8, Fig. 9, and Fig. 12: every method
    receives the same group, platform, objective, and (scaled) sampling
    budget, with independent random streams spawned from *seed*.  The
    campaign engine's cell executor
    (:meth:`~repro.experiments.campaign.CampaignRunner.run_cell`) mirrors
    these semantics exactly, so a figure run cell-by-cell is bit-identical
    to this direct loop.  ``eval_config``
    (:class:`~repro.core.evalconfig.EvalConfig`) selects the
    fitness-evaluation path; all backends produce bit-identical results.
    The legacy ``eval_backend``/``eval_workers``/``eval_hosts``/``rpc_token``
    keywords build the identical config but emit ``DeprecationWarning``.
    """
    scale = scale or get_scale()
    platform = build_setting(setting, bandwidth_gbps)
    if group is None:
        group = _group_for(task, platform, scale, seed)
    explorer = M3E(
        platform,
        sampling_budget=scale.sampling_budget,
        eval_config=resolve_eval_config(
            eval_config,
            where="run_method_comparison",
            eval_backend=eval_backend,
            eval_workers=eval_workers,
            eval_hosts=eval_hosts,
            rpc_token=rpc_token,
        ),
    )
    rngs = spawn_rngs(seed, len(methods))
    results: Dict[str, SearchResult] = {}
    for method, rng in zip(methods, rngs):
        optimizer = build_optimizer(
            method, seed=rng, **default_optimizer_options(method, scale, None)
        )
        result = explorer.search(
            group,
            optimizer=optimizer,
            sampling_budget=DEFAULT_BUDGET_POLICY.budget_for(method, scale),
        )
        # Same-named methods (e.g. the same optimizer requested twice) must
        # not silently overwrite each other; suffix like M3E.compare does.
        results[unique_key(result.optimizer_name, results)] = result
    return results


def _throughputs(results: Dict[str, SearchResult]) -> Dict[str, float]:
    return {name: result.throughput_gflops for name, result in results.items()}


# ----------------------------------------------------------------------
# Fig. 7 — Latency/BW characteristics of the DNN models (custom)
# ----------------------------------------------------------------------
def _fig7_runner(ctx: ScenarioContext) -> Dict[str, Any]:
    """Per-model and per-task average no-stall latency / required BW on HB and LB.

    Mirrors Fig. 7: each model is profiled on a 64-row HB-style core and a
    64-row LB-style core.
    """
    sample_models = ctx.options.get("sample_models")
    platform = build_setting("S5", LARGE_DEFAULT_BW)  # contains 64-row HB and LB cores
    analyzer = JobAnalyzer(platform)
    hb_index = next(i for i, sub in enumerate(platform) if sub.dataflow.value == "HB" and sub.pe_rows == 64)
    lb_index = next(i for i, sub in enumerate(platform) if sub.dataflow.value == "LB" and sub.pe_rows == 64)

    if sample_models is None:
        sample_models = {
            "vision": ["mobilenet_v2", "resnet50", "shufflenet"],
            "language": ["gpt2", "mobilebert", "transformer_xl"],
            "recommendation": ["dlrm", "wide_and_deep", "ncf"],
        }

    per_model: Dict[str, Dict[str, float]] = {}
    per_task: Dict[str, Dict[str, float]] = {}
    for task_name, model_names in sample_models.items():
        task_rows = []
        for model_name in model_names:
            spec = MODEL_REGISTRY[model_name]
            batch = DEFAULT_BATCH_SIZES[spec.family]
            rows = []
            for layer in spec.build(batch):
                hb_lat, hb_bw, _, _ = analyzer.profile_layer(layer, hb_index)
                lb_lat, lb_bw, _, _ = analyzer.profile_layer(layer, lb_index)
                rows.append([hb_lat, hb_bw, lb_lat, lb_bw])
            mean = np.mean(rows, axis=0)
            per_model[model_name] = {
                "hb_latency_cycles": float(mean[0]),
                "hb_required_bw_gbps": float(mean[1]),
                "lb_latency_cycles": float(mean[2]),
                "lb_required_bw_gbps": float(mean[3]),
            }
            task_rows.append(list(mean))
        task_mean = np.mean(task_rows, axis=0)
        per_task[task_name] = {
            "hb_latency_cycles": float(task_mean[0]),
            "hb_required_bw_gbps": float(task_mean[1]),
            "lb_latency_cycles": float(task_mean[2]),
            "lb_required_bw_gbps": float(task_mean[3]),
        }
    return {"per_model": per_model, "per_task": per_task}


def run_fig7_job_analysis(
    sample_models: Optional[Dict[str, Sequence[str]]] = None,
) -> Dict[str, Any]:
    """Fig. 7 entry point (delegates to the ``fig7`` scenario)."""
    return run_scenario("fig7", options={"sample_models": sample_models})


# ----------------------------------------------------------------------
# Fig. 8 — Homogeneous small accelerator (S1, BW=16), four tasks
# ----------------------------------------------------------------------
def _replicate_throughputs(
    by_panel_seed: "OrderedDict",
    label: str,
    seeds: Sequence[int],
) -> "OrderedDict[str, List[float]]":
    """Per-method throughput lists for one panel across seed replicates."""
    per_method: "OrderedDict[str, List[float]]" = OrderedDict()
    for seed in seeds:
        for name, result in by_panel_seed.get((label, seed), {}).items():
            per_method.setdefault(name, []).append(float(result.throughput_gflops))
    return per_method


def _fig8_post(run: ScenarioRun) -> Dict[str, Any]:
    panels = run.panel_map()
    seeds = run.seeds()
    absolute: Dict[str, Dict[str, float]] = {}
    normalized: Dict[str, Dict[str, float]] = {}
    references: Dict[str, str] = {}
    replicates: Dict[str, Dict[str, Dict[str, float]]] = {}
    if len(seeds) <= 1:
        # Single-seed: the historical path, byte-identical output.
        for label, results in run.by_panel().items():
            task = panels[label].task
            absolute[task] = _throughputs(results)
            normalized[task], references[task] = normalized_with_reference(results, "MAGMA")
    else:
        # Seed-replicated: normalise per-method *means* and report uncertainty.
        by_panel_seed = run.by_panel_and_seed()
        for label, panel in panels.items():
            per_method = _replicate_throughputs(by_panel_seed, label, seeds)
            stats = {name: MetricStats.from_values(vals) for name, vals in per_method.items()}
            absolute[panel.task] = {name: s.mean for name, s in stats.items()}
            normalized[panel.task], references[panel.task] = normalized_values_with_reference(
                absolute[panel.task], "MAGMA"
            )
            replicates[panel.task] = {name: s.to_dict() for name, s in stats.items()}
    first = next(iter(panels.values()))
    output = {
        "setting": first.setting,
        "bandwidth_gbps": first.bandwidth_gbps,
        "absolute": absolute,
        "normalized": normalized,
        "normalized_reference": references,
    }
    if len(seeds) > 1:
        output["seeds"] = seeds
        output["replicates"] = replicates
        output["cross_seed_agreement"] = cross_seed_agreement(rows_from_run(run.cells, run.results))
    return output


def run_fig8_homogeneous(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = tuple(PAPER_COMPARISON_METHODS),
    seed: int = 0,
) -> Dict[str, Any]:
    """All methods on the homogeneous small accelerator across the four tasks."""
    spec = _with_methods(FIG8, methods)
    return run_scenario(spec, scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 9 — Heterogeneous small (S2) and large (S4) accelerators
# ----------------------------------------------------------------------
def _fig9_post(run: ScenarioRun) -> Dict[str, Any]:
    panels = run.panel_map()
    seeds = run.seeds()
    absolute: Dict[str, Dict[str, float]] = {}
    normalized: Dict[str, Dict[str, float]] = {}
    references: Dict[str, str] = {}
    replicates: Dict[str, Dict[str, Dict[str, float]]] = {}
    if len(seeds) <= 1:
        # Single-seed: the historical path, byte-identical output.
        for label, results in run.by_panel().items():
            absolute[label] = _throughputs(results)
            normalized[label], references[label] = normalized_with_reference(results, "MAGMA")
    else:
        by_panel_seed = run.by_panel_and_seed()
        for label in panels:
            per_method = _replicate_throughputs(by_panel_seed, label, seeds)
            stats = {name: MetricStats.from_values(vals) for name, vals in per_method.items()}
            absolute[label] = {name: s.mean for name, s in stats.items()}
            normalized[label], references[label] = normalized_values_with_reference(
                absolute[label], "MAGMA"
            )
            replicates[label] = {name: s.to_dict() for name, s in stats.items()}
    output = {
        "panels": {
            label: (panel.setting, panel.bandwidth_gbps, TaskType(panel.task))
            for label, panel in panels.items()
        },
        "absolute": absolute,
        "normalized": normalized,
        "normalized_reference": references,
    }
    if len(seeds) > 1:
        output["seeds"] = seeds
        output["replicates"] = replicates
        output["cross_seed_agreement"] = cross_seed_agreement(rows_from_run(run.cells, run.results))
    return output


def run_fig9_heterogeneous(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = tuple(PAPER_COMPARISON_METHODS),
    seed: int = 0,
) -> Dict[str, Any]:
    """All methods on S2 (BW=16) and S4 (BW=256) for the Vision and Mix tasks."""
    spec = _with_methods(FIG9, methods)
    return run_scenario(spec, scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 10 — Exploration behaviour (PCA of sampled mappings) (custom)
# ----------------------------------------------------------------------
def _fig10_runner(ctx: ScenarioContext) -> Dict[str, Any]:
    """Record every sampled mapping per method and project them with PCA."""
    scale = ctx.scale
    seed = ctx.base_seed
    methods = tuple(ctx.options.get("methods") or ("magma", "ppo2", "stdga", "pso", "cma"))
    platform = build_setting("S2", SMALL_DEFAULT_BW)
    group = ctx.engine.group_for(TaskType.MIX, platform.num_sub_accelerators, seed)
    explorer = ctx.engine.explorer(platform)

    encodings_by_method: Dict[str, np.ndarray] = {}
    reached: Dict[str, float] = {}
    rngs = spawn_rngs(seed, len(methods) + 1)
    for method, rng in zip(methods, rngs):
        evaluator = explorer.build_evaluator(
            group, sampling_budget=DEFAULT_BUDGET_POLICY.budget_for(method, scale)
        )
        evaluator.record_samples = True
        optimizer = build_optimizer(method, seed=rng, **default_optimizer_options(method, scale, None))
        best = optimizer.optimize(evaluator)
        if best is None:
            best = evaluator.best_encoding
        detail = evaluator.detailed_evaluation(best)
        encodings_by_method[optimizer.name] = evaluator.sampled_encodings
        reached[optimizer.name] = detail.objective_value

    # Best-effort reference optimum from plain random sampling with the
    # larger "exhaustive" budget.
    exhaustive_evaluator = explorer.build_evaluator(group, sampling_budget=scale.exhaustive_samples)
    random_optimizer = build_optimizer("random", seed=rngs[-1])
    random_optimizer.optimize(exhaustive_evaluator)
    reached["Exhaustively Sampled"] = float(exhaustive_evaluator.best_fitness)

    projections = project_encodings(encodings_by_method)
    return {"reached_gflops": reached, "projections": projections}


def run_fig10_exploration(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = ("magma", "ppo2", "stdga", "pso", "cma"),
    seed: int = 0,
) -> Dict[str, Any]:
    """Fig. 10 entry point (delegates to the ``fig10`` scenario)."""
    return run_scenario("fig10", scale=scale, seed=seed, options={"methods": tuple(methods)})


# ----------------------------------------------------------------------
# Fig. 11 — Convergence over an extended sampling budget
# ----------------------------------------------------------------------
def _fig11_post(run: ScenarioRun) -> Dict[str, Any]:
    curves: Dict[str, Dict[str, ConvergenceCurve]] = {}
    for label, results in run.by_panel().items():
        curves[label] = {
            name: convergence_from_history(name, result.history)
            for name, result in results.items()
        }
    return {"curves": curves}


def run_fig11_convergence(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = ("magma", "stdga", "de", "pso", "cma", "tbpsa"),
    seed: int = 0,
) -> Dict[str, Any]:
    """Convergence curves on (Vision, S2, BW=16) and (Mix, S3, BW=16)."""
    spec = _with_methods(FIG11, methods)
    return run_scenario(spec, scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 12 — Bandwidth sweep on the heterogeneous accelerators
# ----------------------------------------------------------------------
def _fig12_panels(
    small_bandwidths: Sequence[float], large_bandwidths: Sequence[float]
) -> tuple:
    sweeps = {"small_s2": ("S2", small_bandwidths), "large_s4": ("S4", large_bandwidths)}
    return tuple(
        Panel(label=f"{tag}@{bw:g}", setting=setting, bandwidth_gbps=float(bw),
              task="mix", tag=tag)
        for tag, (setting, bandwidths) in sweeps.items()
        for bw in bandwidths
    )


def _fig12_post(run: ScenarioRun) -> Dict[str, Any]:
    panels = run.panel_map()
    absolute: Dict[str, Dict[float, Dict[str, float]]] = {}
    normalized: Dict[str, Dict[float, Dict[str, float]]] = {}
    references: Dict[str, Dict[float, str]] = {}
    for label, results in run.by_panel().items():
        panel = panels[label]
        absolute.setdefault(panel.tag, {})[panel.bandwidth_gbps] = _throughputs(results)
        norm, ref = normalized_with_reference(results, "MAGMA")
        normalized.setdefault(panel.tag, {})[panel.bandwidth_gbps] = norm
        references.setdefault(panel.tag, {})[panel.bandwidth_gbps] = ref
    return {"absolute": absolute, "normalized": normalized, "normalized_reference": references}


def run_fig12_bw_sweep(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = ("herald-like", "a2c", "ppo2", "magma"),
    small_bandwidths: Sequence[float] = (1.0, 4.0, 8.0, 16.0),
    large_bandwidths: Sequence[float] = (1.0, 16.0, 64.0, 256.0),
    seed: int = 0,
) -> Dict[str, Any]:
    """Mix task on S2 and S4 swept over system bandwidths (Fig. 12)."""
    spec = replace(
        _with_methods(FIG12, methods),
        panels=_fig12_panels(small_bandwidths, large_bandwidths),
    )
    return run_scenario(spec, scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 13 — Sub-accelerator combinations (S3 vs S4 vs S5)
# ----------------------------------------------------------------------
def _fig13_panels(settings: Sequence[str], bandwidths: Sequence[float]) -> tuple:
    return tuple(
        Panel(label=f"{setting}@{bw:g}", setting=setting, bandwidth_gbps=float(bw),
              task="mix", tag=setting)
        for setting in settings
        for bw in bandwidths
    )


def _fig13_post(run: ScenarioRun) -> Dict[str, Any]:
    """Job analysis per setting plus normalised MAGMA throughput per bandwidth."""
    engine = run.context.engine
    scale = run.scale
    seed = run.base_seed
    panels = run.panel_map()
    settings = list(dict.fromkeys(panel.tag for panel in panels.values()))

    tasks = [TaskType.VISION, TaskType.LANGUAGE, TaskType.RECOMMENDATION, TaskType.MIX]
    job_analysis: Dict[str, Dict[str, Dict[str, float]]] = {}
    for setting in settings:
        platform = build_setting(setting, LARGE_DEFAULT_BW)
        per_task: Dict[str, Dict[str, float]] = {}
        for task in tasks:
            group = engine.group_for(task, platform.num_sub_accelerators, seed)
            table = engine.analysis_table(platform, group)
            per_task[task.value] = {
                "avg_no_stall_latency_cycles": float(table.latency_cycles.mean()),
                "avg_required_bw_gbps": float(table.required_bw_gbps.mean()),
            }
        job_analysis[setting] = per_task

    throughput: Dict[float, Dict[str, float]] = {}
    for cell, result in zip(run.cells, run.results):
        throughput.setdefault(cell.bandwidth_gbps, {})[cell.tag] = result.throughput_gflops

    normalized: Dict[float, Dict[str, float]] = {}
    for bw, per_setting in throughput.items():
        reference = max(per_setting.values())
        normalized[bw] = {s: v / reference for s, v in per_setting.items()}
    return {"job_analysis": job_analysis, "throughput": throughput, "normalized": normalized}


def run_fig13_subaccel_combinations(
    scale: Optional[ExperimentScale] = None,
    bandwidths: Sequence[float] = (1.0, 64.0),
    settings: Sequence[str] = ("S3", "S4", "S5"),
    seed: int = 0,
) -> Dict[str, Any]:
    """Job analysis and MAGMA throughput for the Large setting variants."""
    spec = replace(FIG13, panels=_fig13_panels(settings, bandwidths))
    return run_scenario(spec, scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 14 — Fixed versus flexible PE arrays (custom)
# ----------------------------------------------------------------------
def _fig14_runner(ctx: ScenarioContext) -> Dict[str, Any]:
    """Fixed vs flexible PE arrays on the Small (S1) and Large (S3) accelerators."""
    scale = ctx.scale
    seed = ctx.base_seed
    panels = {
        "small_vision": ("S1", TaskType.VISION, (1.0, SMALL_DEFAULT_BW)),
        "small_mix": ("S1", TaskType.MIX, (1.0, SMALL_DEFAULT_BW)),
        "large_vision": ("S3", TaskType.VISION, (1.0, LARGE_DEFAULT_BW)),
        "large_mix": ("S3", TaskType.MIX, (1.0, LARGE_DEFAULT_BW)),
    }
    job_analysis: Dict[str, Dict[str, float]] = {}
    throughput: Dict[str, Dict[str, Dict[str, float]]] = {}
    for panel, (setting, task, bandwidths) in panels.items():
        fixed_platform = build_setting(setting, bandwidths[-1])
        flexible_platform = fixed_platform.with_flexible_arrays(True)
        group = ctx.engine.group_for(task, fixed_platform.num_sub_accelerators, seed)

        fixed_table = ctx.engine.analysis_table(fixed_platform, group)
        flexible_table = ctx.engine.analysis_table(flexible_platform, group)
        job_analysis[panel] = {
            "fixed_avg_latency": float(fixed_table.latency_cycles.mean()),
            "flexible_avg_latency": float(flexible_table.latency_cycles.mean()),
            "fixed_avg_bw": float(fixed_table.required_bw_gbps.mean()),
            "flexible_avg_bw": float(flexible_table.required_bw_gbps.mean()),
        }

        throughput[panel] = {}
        for bw in bandwidths:
            row: Dict[str, float] = {}
            for label, platform in (("fixed", build_setting(setting, bw)),
                                    ("flexible", build_setting(setting, bw).with_flexible_arrays(True))):
                explorer = ctx.engine.explorer(platform, sampling_budget=scale.sampling_budget)
                optimizer = build_optimizer("magma", seed=seed, **default_optimizer_options("magma", scale, None))
                result = explorer.search(group, optimizer=optimizer)
                row[label] = result.throughput_gflops
            throughput[panel][f"bw_{bw:g}"] = row
    return {"job_analysis": job_analysis, "throughput": throughput}


def run_fig14_flexible(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Fig. 14 entry point (delegates to the ``fig14`` scenario)."""
    return run_scenario("fig14", scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 15 — Visualisation of found schedules (Herald-like vs MAGMA) (custom)
# ----------------------------------------------------------------------
def _fig15_runner(ctx: ScenarioContext) -> Dict[str, Any]:
    """Schedules and bandwidth allocations of Herald-like vs MAGMA (Mix, S5, BW=1)."""
    scale = ctx.scale
    seed = ctx.base_seed
    platform = build_setting("S5", 1.0)
    group = ctx.engine.group_for(TaskType.MIX, platform.num_sub_accelerators, seed)
    explorer = ctx.engine.explorer(platform, sampling_budget=scale.sampling_budget)

    output: Dict[str, Any] = {"finish_time_cycles": {}, "gantt": {}, "bandwidth_series": {}}
    for method in ("herald-like", "magma"):
        optimizer = build_optimizer(method, seed=seed, **default_optimizer_options(method, scale, None))
        result = explorer.search(group, optimizer=optimizer)
        output["finish_time_cycles"][result.optimizer_name] = result.schedule.makespan_cycles
        output["gantt"][result.optimizer_name] = schedule_to_gantt(result.schedule, group)
        output["bandwidth_series"][result.optimizer_name] = schedule_to_bandwidth_series(result.schedule)
    return output


def run_fig15_schedule_visualization(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Fig. 15 entry point (delegates to the ``fig15`` scenario)."""
    return run_scenario("fig15", scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 16 — Ablation of MAGMA's genetic operators
# ----------------------------------------------------------------------
def _fig16_post(run: ScenarioRun) -> Dict[str, Any]:
    curves: Dict[str, Dict[str, ConvergenceCurve]] = {}
    final_values: Dict[str, Dict[str, float]] = {}
    for label, results in run.by_panel().items():
        curves[label] = {
            name: convergence_from_history(name, result.history)
            for name, result in results.items()
        }
        final_values[label] = _throughputs(results)
    return {"curves": curves, "final_values": final_values}


def run_fig16_operator_ablation(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Convergence of MAGMA with mutation only, +crossover-gen, and all operators."""
    return run_scenario("fig16", scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Fig. 17 — Group-size sweep
# ----------------------------------------------------------------------
def _fig17_panels_for_sizes(group_sizes: Sequence[int]) -> tuple:
    return tuple(
        Panel(label=str(size), setting="S2", bandwidth_gbps=SMALL_DEFAULT_BW,
              task="mix", group_size=int(size))
        for size in group_sizes
    )


def _fig17_default_panels(scale: ExperimentScale) -> tuple:
    if scale.name == "paper":
        sizes: Sequence[int] = (4, 10, 20, 40, 50, 100, 200, 500, 1000)
    else:
        sizes = (4, 10, 20, scale.group_size, 2 * scale.group_size)
    return _fig17_panels_for_sizes(list(dict.fromkeys(sizes)))


def _fig17_options(method: str, scale: ExperimentScale, panel: Optional[Panel]) -> Dict[str, Any]:
    size = panel.group_size if panel is not None and panel.group_size else scale.group_size
    return {"population_size": min(scale.population_size, max(4, size))}


def _fig17_post(run: ScenarioRun) -> Dict[str, Any]:
    throughput: Dict[int, float] = {}
    for cell, result in zip(run.cells, run.results):
        # Normalise by the group's own total work so different group sizes are
        # comparable (larger groups carry more FLOPs by construction).
        throughput[cell.group_size] = result.throughput_gflops
    reference = throughput[max(throughput)]
    normalized = {size: value / reference for size, value in throughput.items()}
    return {"throughput": throughput, "normalized": normalized}


def run_fig17_group_size(
    scale: Optional[ExperimentScale] = None,
    group_sizes: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """MAGMA throughput on (Mix, S2, BW=16) across group sizes."""
    spec = FIG17
    if group_sizes is not None:
        spec = replace(spec, panels=_fig17_panels_for_sizes(group_sizes), panels_fn=None)
    return run_scenario(spec, scale=scale, seed=seed)


# ----------------------------------------------------------------------
# Table V — Warm-start transfer (custom)
# ----------------------------------------------------------------------
def _table5_runner(ctx: ScenarioContext) -> Dict[str, Any]:
    """Warm-start study: optimize one instance, transfer to new instances.

    Reproduces the structure of Table V: ``raw`` is the best of a random
    initial population, ``trf_0_ep`` is the transferred solution before any
    further optimization, ``trf_1_ep`` after one generation, and
    ``trf_full`` after the full budget; all values are normalised by
    ``trf_full``.
    """
    scale = ctx.scale
    seed = ctx.base_seed
    setting = ctx.options.get("setting", "S4")
    bandwidth_gbps = ctx.options.get("bandwidth_gbps", 1.0)
    task = TaskType(ctx.options.get("task", TaskType.MIX))
    num_instances = int(ctx.options.get("num_instances", 3))

    platform = build_setting(setting, bandwidth_gbps)
    explorer = ctx.engine.explorer(platform, sampling_budget=scale.sampling_budget)
    engine = WarmStartEngine()

    # Optimize the source instance and remember its solution.
    source_group = ctx.engine.group_for(task, platform.num_sub_accelerators, seed)
    source_result = explorer.search(
        source_group,
        optimizer=build_optimizer("magma", seed=seed, **default_optimizer_options("magma", scale, None)),
    )
    source_evaluator = explorer.build_evaluator(source_group)
    engine.record(task.value, source_result.best_encoding, source_evaluator.codec, source_result.best_fitness)

    one_epoch = scale.population_size
    thirty_epochs = min(scale.sampling_budget, 30 * scale.population_size)
    rows: Dict[str, Dict[str, float]] = {}
    for instance in range(1, num_instances + 1):
        group = ctx.engine.group_for(
            task, platform.num_sub_accelerators, seed + 1000 * instance
        )
        evaluator = explorer.build_evaluator(group)
        codec = evaluator.codec
        warm = engine.suggest(task.value, codec, count=scale.population_size, rng=seed + instance)

        # Raw: best of a random initial population (no optimization).
        random_population = codec.random_population(scale.population_size, rng=seed + instance)
        raw = float(np.max(evaluator.evaluate_population(random_population, count_samples=False)))

        # Transferred solution before further optimization.
        trf_0 = float(evaluator.evaluate(warm[0], count_sample=False))

        def _optimize_with_budget(budget: int) -> float:
            local_explorer = ctx.engine.explorer(platform, sampling_budget=budget)
            optimizer = build_optimizer(
                "magma", seed=seed + instance, **default_optimizer_options("magma", scale, None)
            )
            result = local_explorer.search(
                group, optimizer=optimizer, sampling_budget=budget, initial_encodings=warm
            )
            return result.throughput_gflops

        trf_1 = _optimize_with_budget(max(one_epoch * 2, one_epoch + 1))
        trf_30 = _optimize_with_budget(thirty_epochs)
        trf_full = _optimize_with_budget(scale.sampling_budget)

        rows[f"instance{instance}"] = {
            "raw": raw / trf_full if trf_full > 0 else 0.0,
            "trf_0_ep": trf_0 / trf_full if trf_full > 0 else 0.0,
            "trf_1_ep": trf_1 / trf_full if trf_full > 0 else 0.0,
            "trf_30_ep": trf_30 / trf_full if trf_full > 0 else 0.0,
            "trf_full": 1.0,
        }
    average = {
        key: float(np.mean([rows[inst][key] for inst in rows]))
        for key in ("raw", "trf_0_ep", "trf_1_ep", "trf_30_ep", "trf_full")
    }
    return {"instances": rows, "average": average, "source_throughput": source_result.throughput_gflops}


def run_table5_warm_start(
    scale: Optional[ExperimentScale] = None,
    setting: str = "S4",
    bandwidth_gbps: float = 1.0,
    task: TaskType = TaskType.MIX,
    num_instances: int = 3,
    seed: int = 0,
) -> Dict[str, Any]:
    """Table V entry point (delegates to the ``table5`` scenario)."""
    return run_scenario(
        "table5",
        scale=scale,
        seed=seed,
        options={
            "setting": setting,
            "bandwidth_gbps": bandwidth_gbps,
            "task": task,
            "num_instances": num_instances,
        },
    )


# ----------------------------------------------------------------------
# Registry: the paper's figures/tables ...
# ----------------------------------------------------------------------
def _with_methods(spec: ScenarioSpec, methods: Sequence[str]) -> ScenarioSpec:
    """The spec, with its method list overridden when the caller asks."""
    methods = tuple(methods)
    return spec if methods == spec.methods else replace(spec, methods=methods)


FIG7 = register_scenario(ScenarioSpec(
    name="fig7",
    description="Fig. 7: per-model/per-task latency and bandwidth characteristics",
    custom_runner=_fig7_runner,
), overwrite=True)

FIG8 = register_scenario(ScenarioSpec(
    name="fig8",
    description="Fig. 8: all methods on the homogeneous small accelerator (S1), four tasks",
    settings=("S1",),
    bandwidths=(SMALL_DEFAULT_BW,),
    tasks=("vision", "language", "recommendation", "mix"),
    methods=tuple(PAPER_COMPARISON_METHODS),
    post_process=_fig8_post,
), overwrite=True)

FIG9 = register_scenario(ScenarioSpec(
    name="fig9",
    description="Fig. 9: all methods on the heterogeneous S2/S4 accelerators",
    panels=(
        Panel(label="vision_small", setting="S2", bandwidth_gbps=SMALL_DEFAULT_BW, task="vision"),
        Panel(label="mix_small", setting="S2", bandwidth_gbps=SMALL_DEFAULT_BW, task="mix"),
        Panel(label="vision_large", setting="S4", bandwidth_gbps=LARGE_DEFAULT_BW, task="vision"),
        Panel(label="mix_large", setting="S4", bandwidth_gbps=LARGE_DEFAULT_BW, task="mix"),
    ),
    methods=tuple(PAPER_COMPARISON_METHODS),
    post_process=_fig9_post,
), overwrite=True)

FIG10 = register_scenario(ScenarioSpec(
    name="fig10",
    description="Fig. 10: PCA projection of each method's sampled mappings",
    custom_runner=_fig10_runner,
), overwrite=True)

FIG11 = register_scenario(ScenarioSpec(
    name="fig11",
    description="Fig. 11: convergence over the extended sampling budget",
    panels=(
        Panel(label="vision_s2", setting="S2", bandwidth_gbps=SMALL_DEFAULT_BW, task="vision"),
        Panel(label="mix_s3", setting="S3", bandwidth_gbps=SMALL_DEFAULT_BW, task="mix"),
    ),
    methods=("magma", "stdga", "de", "pso", "cma", "tbpsa"),
    budget_policy=BudgetPolicy(base="convergence"),
    post_process=_fig11_post,
), overwrite=True)

FIG12 = register_scenario(ScenarioSpec(
    name="fig12",
    description="Fig. 12: bandwidth sweep on the heterogeneous accelerators",
    panels=_fig12_panels((1.0, 4.0, 8.0, 16.0), (1.0, 16.0, 64.0, 256.0)),
    methods=("herald-like", "a2c", "ppo2", "magma"),
    post_process=_fig12_post,
), overwrite=True)

FIG13 = register_scenario(ScenarioSpec(
    name="fig13",
    description="Fig. 13: sub-accelerator combinations of the Large settings",
    panels=_fig13_panels(("S3", "S4", "S5"), (1.0, 64.0)),
    methods=("magma",),
    seed_strategy="direct",
    post_process=_fig13_post,
), overwrite=True)

FIG14 = register_scenario(ScenarioSpec(
    name="fig14",
    description="Fig. 14: fixed versus flexible PE arrays",
    custom_runner=_fig14_runner,
), overwrite=True)

FIG15 = register_scenario(ScenarioSpec(
    name="fig15",
    description="Fig. 15: schedule visualisation, Herald-like vs MAGMA",
    custom_runner=_fig15_runner,
), overwrite=True)

FIG16 = register_scenario(ScenarioSpec(
    name="fig16",
    description="Fig. 16: ablation of MAGMA's genetic operators",
    panels=(
        Panel(label="vision_s2", setting="S2", bandwidth_gbps=SMALL_DEFAULT_BW, task="vision"),
        Panel(label="mix_s3", setting="S3", bandwidth_gbps=SMALL_DEFAULT_BW, task="mix"),
    ),
    methods=("magma-mut", "magma-mut-gen", "magma"),
    post_process=_fig16_post,
), overwrite=True)

FIG17 = register_scenario(ScenarioSpec(
    name="fig17",
    description="Fig. 17: group-size sweep on (Mix, S2, BW=16)",
    panels_fn=_fig17_default_panels,
    methods=("magma",),
    seed_strategy="direct",
    optimizer_options=_fig17_options,
    post_process=_fig17_post,
), overwrite=True)

TABLE5 = register_scenario(ScenarioSpec(
    name="table5",
    description="Table V: warm-start transfer across workload instances",
    custom_runner=_table5_runner,
), overwrite=True)


# ----------------------------------------------------------------------
# ... and cross-product scenarios the paper never ran.
# ----------------------------------------------------------------------
OBJECTIVE_SWEEP = register_scenario(ScenarioSpec(
    name="objective-sweep",
    description="MAGMA across objectives (throughput/EDP/energy/perf-per-watt) on S1-S4",
    panels=(
        Panel(label="S1", setting="S1", bandwidth_gbps=SMALL_DEFAULT_BW, task="mix"),
        Panel(label="S2", setting="S2", bandwidth_gbps=SMALL_DEFAULT_BW, task="mix"),
        Panel(label="S3", setting="S3", bandwidth_gbps=LARGE_DEFAULT_BW, task="mix"),
        Panel(label="S4", setting="S4", bandwidth_gbps=LARGE_DEFAULT_BW, task="mix"),
    ),
    methods=("magma",),
    objectives=("throughput", "latency", "energy", "edp", "performance_per_watt"),
), overwrite=True)

def _seed_replicates_post(run: ScenarioRun) -> Dict[str, Any]:
    """Per-cell rows plus cross-seed uncertainty statistics.

    On top of the generic per-cell summary this reports mean ± std (and
    min/max) of every result metric per replicate group, the cross-seed
    winner agreement per comparison, and a rendered uncertainty table.
    """
    output = default_post_process(run)
    rows = rows_from_run(run.cells, run.results)
    aggregates = aggregate_cells(rows)
    output["seeds"] = run.seeds()
    output["replicates"] = [aggregate.to_dict() for aggregate in aggregates]
    output["cross_seed_agreement"] = cross_seed_agreement(rows)
    output["table"] = replicate_table(
        aggregates,
        title="throughput_gflops across seed replicates (mean ± std)",
    )
    return output


SEED_REPLICATES = register_scenario(ScenarioSpec(
    name="seed-replicates",
    description="Seed-replicated method comparison on (Mix, S2, BW=16)",
    settings=("S2",),
    bandwidths=(SMALL_DEFAULT_BW,),
    tasks=("mix",),
    methods=("herald-like", "stdga", "magma"),
    seeds=(0, 1, 2),
    post_process=_seed_replicates_post,
), overwrite=True)
