"""Experiment runners: one function per table/figure of the paper's evaluation.

Every runner is deterministic given a seed, honours the chosen
:class:`~repro.experiments.settings.ExperimentScale`, and returns plain data
structures (dicts of floats / arrays) so the benchmark harness, the CLI, and
EXPERIMENTS.md can all consume the same results.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.accelerator import AcceleratorPlatform, build_setting
from repro.analysis.convergence import ConvergenceCurve, convergence_from_history
from repro.analysis.gantt import schedule_to_bandwidth_series, schedule_to_gantt
from repro.analysis.pca import project_encodings
from repro.analysis.reporting import normalized_throughputs
from repro.core.evaluator import DEFAULT_EVAL_BACKEND
from repro.core.framework import M3E, SearchResult
from repro.core.analyzer import JobAnalyzer
from repro.exceptions import ExperimentError
from repro.experiments.settings import ExperimentScale, get_scale
from repro.optimizers import build_optimizer
from repro.optimizers.magma import MagmaConfig, MagmaOptimizer
from repro.optimizers.registry import PAPER_COMPARISON_METHODS
from repro.optimizers.warmstart import WarmStartEngine
from repro.utils.rng import spawn_rngs
from repro.utils.tables import geometric_mean, unique_key
from repro.workloads.benchmark import TaskType, build_task_workload
from repro.workloads.models import MODEL_REGISTRY, ModelFamily
from repro.workloads.benchmark import DEFAULT_BATCH_SIZES
from repro.workloads.groups import JobGroup

#: Methods considered "RL" — they receive the (possibly reduced) RL budget.
_RL_METHODS = {"a2c", "ppo2", "rl-a2c", "rl-ppo2"}

#: Default bandwidths per accelerator class (Section VI-A3).
SMALL_DEFAULT_BW = 16.0
LARGE_DEFAULT_BW = 256.0


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _group_for(
    task: TaskType,
    platform: AcceleratorPlatform,
    scale: ExperimentScale,
    seed: int,
    group_size: Optional[int] = None,
) -> JobGroup:
    """Build the first dependency-free group of a task workload."""
    size = group_size if group_size is not None else scale.group_size
    groups = build_task_workload(
        task,
        group_size=size,
        num_groups=1,
        seed=seed,
        num_sub_accelerators=platform.num_sub_accelerators,
    )
    if not groups:
        raise ExperimentError(f"workload for task {task} produced no groups")
    return groups[0]


def _budget_for(method: str, scale: ExperimentScale) -> int:
    """Sampling budget for a method (RL agents may get a reduced budget)."""
    if method.lower() in _RL_METHODS:
        return scale.rl_sampling_budget
    return scale.sampling_budget


def _optimizer_options(method: str, scale: ExperimentScale) -> Dict[str, Any]:
    """Per-method construction options derived from the scale."""
    population_methods = {"magma", "magma-mut", "magma-mut-gen", "stdga", "de", "cma", "pso"}
    if method.lower() in population_methods:
        return {"population_size": scale.population_size}
    return {}


def run_method_comparison(
    setting: str,
    bandwidth_gbps: float,
    task: TaskType,
    methods: Sequence[str] = tuple(PAPER_COMPARISON_METHODS),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    group: Optional[JobGroup] = None,
    eval_backend: str = DEFAULT_EVAL_BACKEND,
    eval_workers: Optional[int] = None,
) -> Dict[str, SearchResult]:
    """Run several mapping methods on one (setting, bandwidth, task) problem.

    This is the primitive behind Fig. 8, Fig. 9, and Fig. 12: every method
    receives the same group, platform, objective, and (scaled) sampling
    budget, with independent random streams spawned from *seed*.
    ``eval_backend`` selects the fitness-evaluation path (``"batch"`` — the
    vectorized default — ``"parallel"`` — the same sweep sharded across
    ``eval_workers`` processes — or the ``"scalar"`` reference oracle); all
    produce bit-identical results.
    """
    scale = scale or get_scale()
    platform = build_setting(setting, bandwidth_gbps)
    if group is None:
        group = _group_for(task, platform, scale, seed)
    explorer = M3E(
        platform,
        sampling_budget=scale.sampling_budget,
        eval_backend=eval_backend,
        eval_workers=eval_workers,
    )
    rngs = spawn_rngs(seed, len(methods))
    results: Dict[str, SearchResult] = {}
    for method, rng in zip(methods, rngs):
        optimizer = build_optimizer(method, seed=rng, **_optimizer_options(method, scale))
        result = explorer.search(
            group,
            optimizer=optimizer,
            sampling_budget=_budget_for(method, scale),
        )
        # Same-named methods (e.g. the same optimizer requested twice) must
        # not silently overwrite each other; suffix like M3E.compare does.
        results[unique_key(result.optimizer_name, results)] = result
    return results


# ----------------------------------------------------------------------
# Fig. 7 — Latency/BW characteristics of the DNN models
# ----------------------------------------------------------------------
def run_fig7_job_analysis(
    sample_models: Optional[Dict[str, Sequence[str]]] = None,
) -> Dict[str, Any]:
    """Per-model and per-task average no-stall latency / required BW on HB and LB.

    Mirrors Fig. 7: each model is profiled on a 64-row HB-style core and a
    64-row LB-style core.
    """
    platform = build_setting("S5", LARGE_DEFAULT_BW)  # contains 64-row HB and LB cores
    analyzer = JobAnalyzer(platform)
    hb_index = next(i for i, sub in enumerate(platform) if sub.dataflow.value == "HB" and sub.pe_rows == 64)
    lb_index = next(i for i, sub in enumerate(platform) if sub.dataflow.value == "LB" and sub.pe_rows == 64)

    if sample_models is None:
        sample_models = {
            "vision": ["mobilenet_v2", "resnet50", "shufflenet"],
            "language": ["gpt2", "mobilebert", "transformer_xl"],
            "recommendation": ["dlrm", "wide_and_deep", "ncf"],
        }

    per_model: Dict[str, Dict[str, float]] = {}
    per_task: Dict[str, Dict[str, float]] = {}
    for task_name, model_names in sample_models.items():
        task_rows: List[List[float]] = []
        for model_name in model_names:
            spec = MODEL_REGISTRY[model_name]
            batch = DEFAULT_BATCH_SIZES[spec.family]
            rows = []
            for layer in spec.build(batch):
                hb_lat, hb_bw, _, _ = analyzer.profile_layer(layer, hb_index)
                lb_lat, lb_bw, _, _ = analyzer.profile_layer(layer, lb_index)
                rows.append([hb_lat, hb_bw, lb_lat, lb_bw])
            mean = np.mean(rows, axis=0)
            per_model[model_name] = {
                "hb_latency_cycles": float(mean[0]),
                "hb_required_bw_gbps": float(mean[1]),
                "lb_latency_cycles": float(mean[2]),
                "lb_required_bw_gbps": float(mean[3]),
            }
            task_rows.append(list(mean))
        task_mean = np.mean(task_rows, axis=0)
        per_task[task_name] = {
            "hb_latency_cycles": float(task_mean[0]),
            "hb_required_bw_gbps": float(task_mean[1]),
            "lb_latency_cycles": float(task_mean[2]),
            "lb_required_bw_gbps": float(task_mean[3]),
        }
    return {"per_model": per_model, "per_task": per_task}


# ----------------------------------------------------------------------
# Fig. 8 — Homogeneous small accelerator (S1, BW=16), four tasks
# ----------------------------------------------------------------------
def run_fig8_homogeneous(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = tuple(PAPER_COMPARISON_METHODS),
    seed: int = 0,
) -> Dict[str, Any]:
    """All methods on the homogeneous small accelerator across the four tasks."""
    scale = scale or get_scale()
    tasks = [TaskType.VISION, TaskType.LANGUAGE, TaskType.RECOMMENDATION, TaskType.MIX]
    per_task: Dict[str, Dict[str, SearchResult]] = {}
    for task in tasks:
        per_task[task.value] = run_method_comparison(
            "S1", SMALL_DEFAULT_BW, task, methods=methods, scale=scale, seed=seed
        )
    normalized = {
        task: normalized_throughputs(results, reference="MAGMA")
        for task, results in per_task.items()
    }
    absolute = {
        task: {name: r.throughput_gflops for name, r in results.items()}
        for task, results in per_task.items()
    }
    return {"setting": "S1", "bandwidth_gbps": SMALL_DEFAULT_BW, "absolute": absolute, "normalized": normalized}


# ----------------------------------------------------------------------
# Fig. 9 — Heterogeneous small (S2) and large (S4) accelerators
# ----------------------------------------------------------------------
def run_fig9_heterogeneous(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = tuple(PAPER_COMPARISON_METHODS),
    seed: int = 0,
) -> Dict[str, Any]:
    """All methods on S2 (BW=16) and S4 (BW=256) for the Vision and Mix tasks."""
    scale = scale or get_scale()
    panels = {
        "vision_small": ("S2", SMALL_DEFAULT_BW, TaskType.VISION),
        "mix_small": ("S2", SMALL_DEFAULT_BW, TaskType.MIX),
        "vision_large": ("S4", LARGE_DEFAULT_BW, TaskType.VISION),
        "mix_large": ("S4", LARGE_DEFAULT_BW, TaskType.MIX),
    }
    absolute: Dict[str, Dict[str, float]] = {}
    normalized: Dict[str, Dict[str, float]] = {}
    for panel, (setting, bw, task) in panels.items():
        results = run_method_comparison(setting, bw, task, methods=methods, scale=scale, seed=seed)
        absolute[panel] = {name: r.throughput_gflops for name, r in results.items()}
        normalized[panel] = normalized_throughputs(results, reference="MAGMA")
    return {"panels": panels, "absolute": absolute, "normalized": normalized}


# ----------------------------------------------------------------------
# Fig. 10 — Exploration behaviour (PCA of sampled mappings)
# ----------------------------------------------------------------------
def run_fig10_exploration(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = ("magma", "ppo2", "stdga", "pso", "cma"),
    seed: int = 0,
) -> Dict[str, Any]:
    """Record every sampled mapping per method and project them with PCA."""
    scale = scale or get_scale()
    platform = build_setting("S2", SMALL_DEFAULT_BW)
    group = _group_for(TaskType.MIX, platform, scale, seed)
    explorer = M3E(platform, sampling_budget=scale.sampling_budget)

    encodings_by_method: Dict[str, np.ndarray] = {}
    reached: Dict[str, float] = {}
    rngs = spawn_rngs(seed, len(methods) + 1)
    for method, rng in zip(methods, rngs):
        evaluator = explorer.build_evaluator(group, sampling_budget=_budget_for(method, scale))
        evaluator.record_samples = True
        optimizer = build_optimizer(method, seed=rng, **_optimizer_options(method, scale))
        best = optimizer.optimize(evaluator)
        if best is None:
            best = evaluator.best_encoding
        detail = evaluator.detailed_evaluation(best)
        encodings_by_method[optimizer.name] = evaluator.sampled_encodings
        reached[optimizer.name] = detail.objective_value

    # Best-effort reference optimum from plain random sampling with the
    # larger "exhaustive" budget.
    exhaustive_evaluator = explorer.build_evaluator(group, sampling_budget=scale.exhaustive_samples)
    random_optimizer = build_optimizer("random", seed=rngs[-1])
    random_optimizer.optimize(exhaustive_evaluator)
    reached["Exhaustively Sampled"] = float(exhaustive_evaluator.best_fitness)

    projections = project_encodings(encodings_by_method)
    return {"reached_gflops": reached, "projections": projections}


# ----------------------------------------------------------------------
# Fig. 11 — Convergence over an extended sampling budget
# ----------------------------------------------------------------------
def run_fig11_convergence(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = ("magma", "stdga", "de", "pso", "cma", "tbpsa"),
    seed: int = 0,
) -> Dict[str, Any]:
    """Convergence curves on (Vision, S2, BW=16) and (Mix, S3, BW=16)."""
    scale = scale or get_scale()
    panels = {
        "vision_s2": ("S2", SMALL_DEFAULT_BW, TaskType.VISION),
        "mix_s3": ("S3", SMALL_DEFAULT_BW, TaskType.MIX),
    }
    curves: Dict[str, Dict[str, ConvergenceCurve]] = {}
    for panel, (setting, bw, task) in panels.items():
        platform = build_setting(setting, bw)
        group = _group_for(task, platform, scale, seed)
        explorer = M3E(platform, sampling_budget=scale.convergence_budget)
        panel_curves: Dict[str, ConvergenceCurve] = {}
        rngs = spawn_rngs(seed, len(methods))
        for method, rng in zip(methods, rngs):
            optimizer = build_optimizer(method, seed=rng, **_optimizer_options(method, scale))
            result = explorer.search(group, optimizer=optimizer, sampling_budget=scale.convergence_budget)
            panel_curves[result.optimizer_name] = convergence_from_history(
                result.optimizer_name, result.history
            )
        curves[panel] = panel_curves
    return {"curves": curves}


# ----------------------------------------------------------------------
# Fig. 12 — Bandwidth sweep on the heterogeneous accelerators
# ----------------------------------------------------------------------
def run_fig12_bw_sweep(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = ("herald-like", "a2c", "ppo2", "magma"),
    small_bandwidths: Sequence[float] = (1.0, 4.0, 8.0, 16.0),
    large_bandwidths: Sequence[float] = (1.0, 16.0, 64.0, 256.0),
    seed: int = 0,
) -> Dict[str, Any]:
    """Mix task on S2 and S4 swept over system bandwidths (Fig. 12)."""
    scale = scale or get_scale()
    sweeps = {
        "small_s2": ("S2", small_bandwidths),
        "large_s4": ("S4", large_bandwidths),
    }
    absolute: Dict[str, Dict[float, Dict[str, float]]] = {}
    normalized: Dict[str, Dict[float, Dict[str, float]]] = {}
    for label, (setting, bandwidths) in sweeps.items():
        absolute[label] = {}
        normalized[label] = {}
        for bw in bandwidths:
            results = run_method_comparison(setting, bw, TaskType.MIX, methods=methods, scale=scale, seed=seed)
            absolute[label][bw] = {name: r.throughput_gflops for name, r in results.items()}
            normalized[label][bw] = normalized_throughputs(results, reference="MAGMA")
    return {"absolute": absolute, "normalized": normalized}


# ----------------------------------------------------------------------
# Fig. 13 — Sub-accelerator combinations (S3 vs S4 vs S5)
# ----------------------------------------------------------------------
def run_fig13_subaccel_combinations(
    scale: Optional[ExperimentScale] = None,
    bandwidths: Sequence[float] = (1.0, 64.0),
    settings: Sequence[str] = ("S3", "S4", "S5"),
    seed: int = 0,
) -> Dict[str, Any]:
    """Job analysis and MAGMA throughput for the Large setting variants."""
    scale = scale or get_scale()
    job_analysis: Dict[str, Dict[str, Dict[str, float]]] = {}
    throughput: Dict[float, Dict[str, float]] = {bw: {} for bw in bandwidths}

    tasks = [TaskType.VISION, TaskType.LANGUAGE, TaskType.RECOMMENDATION, TaskType.MIX]
    for setting in settings:
        platform = build_setting(setting, LARGE_DEFAULT_BW)
        analyzer = JobAnalyzer(platform)
        per_task: Dict[str, Dict[str, float]] = {}
        for task in tasks:
            group = _group_for(task, platform, scale, seed)
            table = analyzer.analyze(group)
            per_task[task.value] = {
                "avg_no_stall_latency_cycles": float(table.latency_cycles.mean()),
                "avg_required_bw_gbps": float(table.required_bw_gbps.mean()),
            }
        job_analysis[setting] = per_task

        for bw in bandwidths:
            bw_platform = build_setting(setting, bw)
            group = _group_for(TaskType.MIX, bw_platform, scale, seed)
            explorer = M3E(bw_platform, sampling_budget=scale.sampling_budget)
            optimizer = build_optimizer("magma", seed=seed, **_optimizer_options("magma", scale))
            result = explorer.search(group, optimizer=optimizer)
            throughput[bw][setting] = result.throughput_gflops

    normalized: Dict[float, Dict[str, float]] = {}
    for bw, per_setting in throughput.items():
        reference = max(per_setting.values())
        normalized[bw] = {s: v / reference for s, v in per_setting.items()}
    return {"job_analysis": job_analysis, "throughput": throughput, "normalized": normalized}


# ----------------------------------------------------------------------
# Fig. 14 — Fixed versus flexible PE arrays
# ----------------------------------------------------------------------
def run_fig14_flexible(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Fixed vs flexible PE arrays on the Small (S1) and Large (S3) accelerators."""
    scale = scale or get_scale()
    panels = {
        "small_vision": ("S1", TaskType.VISION, (1.0, SMALL_DEFAULT_BW)),
        "small_mix": ("S1", TaskType.MIX, (1.0, SMALL_DEFAULT_BW)),
        "large_vision": ("S3", TaskType.VISION, (1.0, LARGE_DEFAULT_BW)),
        "large_mix": ("S3", TaskType.MIX, (1.0, LARGE_DEFAULT_BW)),
    }
    job_analysis: Dict[str, Dict[str, float]] = {}
    throughput: Dict[str, Dict[str, Dict[str, float]]] = {}
    for panel, (setting, task, bandwidths) in panels.items():
        fixed_platform = build_setting(setting, bandwidths[-1])
        flexible_platform = fixed_platform.with_flexible_arrays(True)
        group = _group_for(task, fixed_platform, scale, seed)

        fixed_table = JobAnalyzer(fixed_platform).analyze(group)
        flexible_table = JobAnalyzer(flexible_platform).analyze(group)
        job_analysis[panel] = {
            "fixed_avg_latency": float(fixed_table.latency_cycles.mean()),
            "flexible_avg_latency": float(flexible_table.latency_cycles.mean()),
            "fixed_avg_bw": float(fixed_table.required_bw_gbps.mean()),
            "flexible_avg_bw": float(flexible_table.required_bw_gbps.mean()),
        }

        throughput[panel] = {}
        for bw in bandwidths:
            row: Dict[str, float] = {}
            for label, platform in (("fixed", build_setting(setting, bw)),
                                    ("flexible", build_setting(setting, bw).with_flexible_arrays(True))):
                explorer = M3E(platform, sampling_budget=scale.sampling_budget)
                optimizer = build_optimizer("magma", seed=seed, **_optimizer_options("magma", scale))
                result = explorer.search(group, optimizer=optimizer)
                row[label] = result.throughput_gflops
            throughput[panel][f"bw_{bw:g}"] = row
    return {"job_analysis": job_analysis, "throughput": throughput}


# ----------------------------------------------------------------------
# Fig. 15 — Visualisation of found schedules (Herald-like vs MAGMA)
# ----------------------------------------------------------------------
def run_fig15_schedule_visualization(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Schedules and bandwidth allocations of Herald-like vs MAGMA (Mix, S5, BW=1)."""
    scale = scale or get_scale()
    platform = build_setting("S5", 1.0)
    group = _group_for(TaskType.MIX, platform, scale, seed)
    explorer = M3E(platform, sampling_budget=scale.sampling_budget)

    output: Dict[str, Any] = {"finish_time_cycles": {}, "gantt": {}, "bandwidth_series": {}}
    for method in ("herald-like", "magma"):
        optimizer = build_optimizer(method, seed=seed, **_optimizer_options(method, scale))
        result = explorer.search(group, optimizer=optimizer)
        output["finish_time_cycles"][result.optimizer_name] = result.schedule.makespan_cycles
        output["gantt"][result.optimizer_name] = schedule_to_gantt(result.schedule, group)
        output["bandwidth_series"][result.optimizer_name] = schedule_to_bandwidth_series(result.schedule)
    return output


# ----------------------------------------------------------------------
# Fig. 16 — Ablation of MAGMA's genetic operators
# ----------------------------------------------------------------------
def run_fig16_operator_ablation(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Convergence of MAGMA with mutation only, +crossover-gen, and all operators."""
    scale = scale or get_scale()
    variants = ["magma-mut", "magma-mut-gen", "magma"]
    panels = {
        "vision_s2": ("S2", SMALL_DEFAULT_BW, TaskType.VISION),
        "mix_s3": ("S3", SMALL_DEFAULT_BW, TaskType.MIX),
    }
    curves: Dict[str, Dict[str, ConvergenceCurve]] = {}
    final_values: Dict[str, Dict[str, float]] = {}
    for panel, (setting, bw, task) in panels.items():
        platform = build_setting(setting, bw)
        group = _group_for(task, platform, scale, seed)
        explorer = M3E(platform, sampling_budget=scale.sampling_budget)
        panel_curves: Dict[str, ConvergenceCurve] = {}
        panel_finals: Dict[str, float] = {}
        rngs = spawn_rngs(seed, len(variants))
        for variant, rng in zip(variants, rngs):
            optimizer = build_optimizer(variant, seed=rng, **_optimizer_options(variant, scale))
            result = explorer.search(group, optimizer=optimizer)
            panel_curves[result.optimizer_name] = convergence_from_history(
                result.optimizer_name, result.history
            )
            panel_finals[result.optimizer_name] = result.throughput_gflops
        curves[panel] = panel_curves
        final_values[panel] = panel_finals
    return {"curves": curves, "final_values": final_values}


# ----------------------------------------------------------------------
# Fig. 17 — Group-size sweep
# ----------------------------------------------------------------------
def run_fig17_group_size(
    scale: Optional[ExperimentScale] = None,
    group_sizes: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """MAGMA throughput on (Mix, S2, BW=16) across group sizes."""
    scale = scale or get_scale()
    if group_sizes is None:
        if scale.name == "paper":
            group_sizes = (4, 10, 20, 40, 50, 100, 200, 500, 1000)
        else:
            group_sizes = (4, 10, 20, scale.group_size, 2 * scale.group_size)
    platform = build_setting("S2", SMALL_DEFAULT_BW)
    throughput: Dict[int, float] = {}
    for size in group_sizes:
        group = _group_for(TaskType.MIX, platform, scale, seed, group_size=size)
        explorer = M3E(platform, sampling_budget=scale.sampling_budget)
        optimizer = build_optimizer(
            "magma", seed=seed, population_size=min(scale.population_size, max(4, size))
        )
        result = explorer.search(group, optimizer=optimizer)
        # Normalise by the group's own total work so different group sizes are
        # comparable (larger groups carry more FLOPs by construction).
        throughput[size] = result.throughput_gflops
    reference = throughput[max(group_sizes)]
    normalized = {size: value / reference for size, value in throughput.items()}
    return {"throughput": throughput, "normalized": normalized}


# ----------------------------------------------------------------------
# Table V — Warm-start transfer
# ----------------------------------------------------------------------
def run_table5_warm_start(
    scale: Optional[ExperimentScale] = None,
    setting: str = "S4",
    bandwidth_gbps: float = 1.0,
    task: TaskType = TaskType.MIX,
    num_instances: int = 3,
    seed: int = 0,
) -> Dict[str, Any]:
    """Warm-start study: optimize one instance, transfer to new instances.

    Reproduces the structure of Table V: ``raw`` is the best of a random
    initial population, ``trf_0_ep`` is the transferred solution before any
    further optimization, ``trf_1_ep`` after one generation, and
    ``trf_full`` after the full budget; all values are normalised by
    ``trf_full``.
    """
    scale = scale or get_scale()
    platform = build_setting(setting, bandwidth_gbps)
    explorer = M3E(platform, sampling_budget=scale.sampling_budget)
    engine = WarmStartEngine()

    # Optimize the source instance and remember its solution.
    source_group = _group_for(task, platform, scale, seed)
    source_result = explorer.search(
        source_group,
        optimizer=build_optimizer("magma", seed=seed, **_optimizer_options("magma", scale)),
    )
    source_evaluator = explorer.build_evaluator(source_group)
    engine.record(task.value, source_result.best_encoding, source_evaluator.codec, source_result.best_fitness)

    one_epoch = scale.population_size
    thirty_epochs = min(scale.sampling_budget, 30 * scale.population_size)
    rows: Dict[str, Dict[str, float]] = {}
    for instance in range(1, num_instances + 1):
        group = _group_for(task, platform, scale, seed=seed + 1000 * instance)
        evaluator = explorer.build_evaluator(group)
        codec = evaluator.codec
        warm = engine.suggest(task.value, codec, count=scale.population_size, rng=seed + instance)

        # Raw: best of a random initial population (no optimization).
        random_population = codec.random_population(scale.population_size, rng=seed + instance)
        raw = float(np.max(evaluator.evaluate_population(random_population, count_samples=False)))

        # Transferred solution before further optimization.
        trf_0 = float(evaluator.evaluate(warm[0], count_sample=False))

        def _optimize_with_budget(budget: int) -> float:
            local_explorer = M3E(platform, sampling_budget=budget)
            optimizer = build_optimizer("magma", seed=seed + instance, **_optimizer_options("magma", scale))
            result = local_explorer.search(
                group, optimizer=optimizer, sampling_budget=budget, initial_encodings=warm
            )
            return result.throughput_gflops

        trf_1 = _optimize_with_budget(max(one_epoch * 2, one_epoch + 1))
        trf_30 = _optimize_with_budget(thirty_epochs)
        trf_full = _optimize_with_budget(scale.sampling_budget)

        rows[f"instance{instance}"] = {
            "raw": raw / trf_full if trf_full > 0 else 0.0,
            "trf_0_ep": trf_0 / trf_full if trf_full > 0 else 0.0,
            "trf_1_ep": trf_1 / trf_full if trf_full > 0 else 0.0,
            "trf_30_ep": trf_30 / trf_full if trf_full > 0 else 0.0,
            "trf_full": 1.0,
        }
    average = {
        key: float(np.mean([rows[inst][key] for inst in rows]))
        for key in ("raw", "trf_0_ep", "trf_1_ep", "trf_30_ep", "trf_full")
    }
    return {"instances": rows, "average": average, "source_throughput": source_result.throughput_gflops}
