"""Resumable campaign engine for the experiments layer.

A *campaign* executes one or more declarative scenarios
(:mod:`repro.experiments.scenarios`) as a flat stream of search cells:

* **Shared-work dedup** — every explorer the engine builds shares one
  process-wide ``(group fingerprint, platform fingerprint) ->
  JobAnalysisTable`` cache (:class:`~repro.core.analyzer.AnalysisTableCache`),
  so a grid that revisits a (group, platform) pair — different methods,
  objectives, seeds, or bandwidth points of one setting — builds each
  analysis table exactly once.  Identical cells appearing in several
  scenarios run once per campaign.
* **Uniform backend threading** — one ``eval_config``
  (:class:`~repro.core.evalconfig.EvalConfig`) applies to every cell (and to
  the custom scenario runners via :meth:`CampaignRunner.explorer`).
* **Resumable results store** — each finished cell is appended to a JSONL
  store keyed by the cell's deterministic fingerprint; re-running with
  ``resume=True`` skips every fingerprint already on disk, so an
  interrupted campaign continues where it stopped and converges to a store
  byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.accelerator import AcceleratorPlatform, build_setting
from repro.core.analyzer import AnalysisTableCache, JobAnalysisTable, shared_table_cache
from repro.core.evalconfig import EvalConfig, resolve_eval_config
from repro.core.framework import M3E, SearchResult
from repro.exceptions import ExperimentError
from repro.experiments.scenarios import (
    ScenarioSpec,
    SearchCell,
    _fingerprint,
    get_scenario,
    run_scenario,
    with_seed_replicates,
)
from repro.experiments.settings import ExperimentScale, get_scale
from repro.obs import get_tracer
from repro.utils.rng import spawn_rngs
from repro.utils.storage import BackedStore
from repro.utils.serialization import SearchResultSummary, jsonable
from repro.workloads.benchmark import TaskType, build_task_workload
from repro.workloads.groups import JobGroup


class CampaignResultsStore(BackedStore):
    """Append-only store of per-cell campaign results.

    One record per completed cell: ``{"fingerprint", "scenario", "cell",
    "result"}``.  The fingerprint is the cell's deterministic identity
    (:meth:`~repro.experiments.scenarios.SearchCell.fingerprint`), which is
    what makes interrupted campaigns resumable.  Append/repair/fingerprint
    mechanics live with the pluggable :class:`~repro.utils.storage.StoreBackend`
    (shared with the mapping service's solution store) — ``--out`` accepts
    any store URL, so several campaign processes can feed one ``sqlite:`` or
    ``tcp://`` store.  On the default JSONL backend ``fingerprints()`` scans
    the fingerprint key without parsing whole records, so resuming a large
    campaign does not pay for re-reading every stored convergence history.
    """

    def append(self, fingerprint: str, scenario: str, cell: Dict[str, Any], result: Dict[str, Any]) -> None:
        """Append one completed cell (flushed immediately, crash-safe)."""
        self.append_record(
            {"fingerprint": fingerprint, "scenario": scenario, "cell": cell, "result": result}
        )


@dataclass
class CampaignReport:
    """What a campaign did: cell counts and shared-work statistics."""

    store_path: Optional[str]
    scale: str
    scenarios: List[str]
    cells_total: int = 0
    cells_run: int = 0
    cells_skipped: int = 0
    cells_deduped: int = 0
    table_builds: int = 0
    table_hits: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (printed by the CLI)."""
        return jsonable(self.__dict__)


class CampaignRunner:
    """Executes search cells (and whole campaigns) with shared caches.

    Parameters
    ----------
    scale:
        Experiment scale (name, instance, or ``None`` for the environment
        default) every cell resolves budgets/group sizes against.
    eval_config:
        Evaluation-engine configuration
        (:class:`~repro.core.evalconfig.EvalConfig`) threaded into every
        explorer the engine builds — one knob for every cell of every
        scenario.
    eval_backend / eval_workers / eval_hosts / rpc_token:
        Deprecated spelling of ``eval_config`` (bit-identical, warns).
    table_cache:
        Analysis-table cache to share; defaults to the process-wide cache so
        independent runners in one process still dedup table builds.
    warm_store:
        Optional warm-start hook (e.g.
        :class:`~repro.service.warmlib.WarmStartLibrary`) handed to every
        explorer the engine builds: searches seed their initial populations
        from remembered same-task solutions and report their winners back.
    """

    def __init__(
        self,
        scale: "ExperimentScale | str | None" = None,
        eval_backend: Optional[str] = None,
        eval_workers: Optional[int] = None,
        eval_hosts: "str | Sequence[str] | None" = None,
        rpc_token: Optional[str] = None,
        table_cache: Optional[AnalysisTableCache] = None,
        warm_store: Optional[Any] = None,
        eval_config: Optional[EvalConfig] = None,
    ):
        self.scale = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
        self.eval_config = resolve_eval_config(
            eval_config,
            where="CampaignRunner",
            eval_backend=eval_backend,
            eval_workers=eval_workers,
            eval_hosts=eval_hosts,
            rpc_token=rpc_token,
        )
        self.table_cache = table_cache if table_cache is not None else shared_table_cache()
        self.warm_store = warm_store
        self._groups: Dict[Tuple[str, int, int, int], JobGroup] = {}  # guarded-by: _groups_lock
        # The mapping service drives one runner from several worker threads;
        # the group memo is the only mutable state they all write.
        self._groups_lock = threading.Lock()

    # Read-only views kept for callers of the pre-EvalConfig attributes.
    @property
    def eval_backend(self) -> str:
        return self.eval_config.backend

    @property
    def eval_workers(self) -> Optional[int]:
        return self.eval_config.workers

    @property
    def eval_hosts(self) -> "Tuple[str, ...] | None":
        return self.eval_config.hosts

    @property
    def rpc_token(self) -> Optional[str]:
        return self.eval_config.rpc_token

    # ------------------------------------------------------------------
    # Building blocks (also used by custom scenario runners)
    # ------------------------------------------------------------------
    def explorer(
        self,
        platform: AcceleratorPlatform,
        sampling_budget: Optional[int] = None,
        objective: str = "throughput",
    ) -> M3E:
        """An :class:`M3E` wired with the campaign's backend and caches."""
        return M3E(
            platform,
            objective=objective,
            sampling_budget=sampling_budget if sampling_budget is not None else self.scale.sampling_budget,
            eval_config=self.eval_config,
            table_cache=self.table_cache,
            warm_store=self.warm_store,
        )

    def group_for(
        self,
        task: "TaskType | str",
        num_sub_accelerators: int,
        seed: int,
        group_size: Optional[int] = None,
    ) -> JobGroup:
        """Build (and memoise) the first dependency-free group of a workload."""
        task = TaskType(task)
        size = group_size if group_size is not None else self.scale.group_size
        key = (task.value, int(size), int(seed), int(num_sub_accelerators))
        with self._groups_lock:
            group = self._groups.get(key)
        if group is None:
            groups = build_task_workload(
                task,
                group_size=size,
                num_groups=1,
                seed=seed,
                num_sub_accelerators=num_sub_accelerators,
            )
            if not groups:
                raise ExperimentError(f"workload for task {task} produced no groups")
            group = groups[0]
            with self._groups_lock:
                group = self._groups.setdefault(key, group)
        return group

    def analysis_table(self, platform: AcceleratorPlatform, group: JobGroup) -> JobAnalysisTable:
        """The (shared, cached) Job Analysis Table for one (platform, group)."""
        return self.table_cache.get_or_build(platform, group)

    # ------------------------------------------------------------------
    # Cell execution
    # ------------------------------------------------------------------
    def run_cell(self, cell: SearchCell) -> SearchResult:
        """Execute one search cell and return the full search result.

        Reproduces the historical per-figure code paths bit-for-bit: the
        cell's seed builds the group, and the optimizer's stream is either
        spawned (multi-method comparisons) or the seed itself (single-method
        figures), per ``cell.seed_strategy``.
        """
        from repro.optimizers import build_optimizer

        with get_tracer().span(
            "campaign.cell",
            setting=cell.setting,
            task=cell.task,
            method=cell.method,
            objective=cell.objective,
            seed=cell.seed,
        ):
            platform = build_setting(cell.setting, cell.bandwidth_gbps)
            group = self.group_for(
                cell.task, platform.num_sub_accelerators, cell.seed, cell.group_size
            )
            explorer = self.explorer(
                platform, sampling_budget=cell.budget, objective=cell.objective
            )
            if cell.seed_strategy == "spawn":
                rng = spawn_rngs(cell.seed, cell.num_methods)[cell.method_index]
            else:
                rng = cell.seed
            optimizer = build_optimizer(cell.method, seed=rng, **dict(cell.optimizer_options))
            return explorer.search(group, optimizer=optimizer, sampling_budget=cell.budget)

    # ------------------------------------------------------------------
    # Campaign driver
    # ------------------------------------------------------------------
    def run(
        self,
        scenarios: Sequence["str | ScenarioSpec"],
        store: "CampaignResultsStore | str | None" = None,
        resume: bool = False,
        base_seed: int = 0,
        seed_replicates: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> CampaignReport:
        """Run scenarios as one flat, deduplicated, resumable cell stream.

        Grid scenarios expand into cells; custom scenarios run as a single
        unit keyed by a ``(scenario, scale, seed)`` fingerprint.  With
        ``resume=True`` the store's existing fingerprints are skipped;
        otherwise the store is truncated first.  ``seed_replicates=N``
        replicates every grid scenario across seeds ``0..N-1`` (shifted by
        ``base_seed``), feeding the seed-replicate statistics layer
        (:mod:`repro.experiments.stats`); replication happens *before*
        fingerprinting, so an interrupted multi-seed campaign resumes to the
        same byte-identical store an uninterrupted one writes.
        """
        specs = [get_scenario(s) if isinstance(s, str) else s for s in scenarios]
        if seed_replicates is not None:
            specs = [with_seed_replicates(spec, seed_replicates) for spec in specs]
        owns_store = isinstance(store, str)
        if isinstance(store, str):
            # Any store URL (bare path = jsonl:), resolved by the one parser.
            store = CampaignResultsStore(store)
        try:
            return self._run(specs, store, resume, base_seed, progress)
        finally:
            if owns_store and store is not None:
                store.close()

    def _run(
        self,
        specs: Sequence[ScenarioSpec],
        store: Optional[CampaignResultsStore],
        resume: bool,
        base_seed: int,
        progress: Optional[Callable[[str], None]],
    ) -> CampaignReport:
        stored: Set[str] = set()
        if store is not None:
            # Repairing first keeps both branches safe against a torn trailing
            # line from a hard mid-write interruption (it is a no-op on
            # intact stores).
            store.repair()
            if resume:
                stored = store.fingerprints()
            else:
                if store.records():
                    raise ExperimentError(
                        f"results store {store.path!r} already holds completed cells; "
                        f"pass resume=True (--resume) to continue it, or point at a "
                        f"fresh path / delete it to start over"
                    )
                store.truncate()
        done: Set[str] = set(stored)

        report = CampaignReport(
            store_path=store.path if store is not None else None,
            scale=self.scale.name,
            scenarios=[spec.name for spec in specs],
        )
        builds_before, hits_before = self.table_cache.builds, self.table_cache.hits
        say = progress or (lambda message: None)

        for spec in specs:
            if spec.is_custom:
                payload = {
                    "scenario": spec.name,
                    "custom": True,
                    "scale": self.scale.name,
                    "seed": base_seed,
                }
                fingerprint = _fingerprint(payload)
                report.cells_total += 1
                if fingerprint in done:
                    report.cells_skipped += 1
                    say(f"[{spec.name}] complete in store, skipped")
                    continue
                say(f"[{spec.name}] running custom scenario")
                output = run_scenario(spec, engine=self, seed=base_seed)
                done.add(fingerprint)
                report.cells_run += 1
                if store is not None:
                    store.append(fingerprint, spec.name, payload, {"output": jsonable(output)})
                continue

            cells = spec.expand(self.scale, base_seed=base_seed)
            report.cells_total += len(cells)
            for index, cell in enumerate(cells):
                fingerprint = cell.fingerprint()
                if fingerprint in done:
                    # Completed in a previous (interrupted) run, or an
                    # identical cell shared by another scenario of this
                    # campaign — either way the work is not repeated.
                    if fingerprint in stored:
                        report.cells_skipped += 1
                    else:
                        report.cells_deduped += 1
                    continue
                say(f"[{spec.name}] cell {index + 1}/{len(cells)}: "
                    f"{cell.panel} {cell.method} seed={cell.seed}")
                result = self.run_cell(cell)
                done.add(fingerprint)
                report.cells_run += 1
                if store is not None:
                    store.append(
                        fingerprint,
                        spec.name,
                        cell.to_dict(),
                        SearchResultSummary.from_result(result).to_dict(),
                    )

        report.table_builds = self.table_cache.builds - builds_before
        report.table_hits = self.table_cache.hits - hits_before
        return report
