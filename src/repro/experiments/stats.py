"""Seed-replicate statistics for campaign results.

The paper's headline numbers compare *stochastic* optimizers, so a single
seed per cell is an anecdote, not a measurement.  This module turns
seed-replicated campaign cells — the same ``(panel, method, objective,
budget, ...)`` work run under several seeds — into aggregate statistics:

* per-cell **mean ± std** (plus min/max) of every scalar result metric, and
* **cross-seed agreement**: for each ``(panel, objective)`` comparison, the
  fraction of seeds on which the modal winning method actually won.

The aggregation policy follows the seed-repeat scheme of the sentiment-
replication exemplar (group by everything-but-seed, report mean ± std and a
stability score) rather than inventing a new one.  Everything here operates
on plain ``(cell dict, result dict)`` pairs, so it works identically on
in-memory :class:`~repro.core.framework.SearchResult` runs and on records
read back from a :class:`~repro.experiments.campaign.CampaignResultsStore` —
which is what lets ``repro-magma campaign --seeds N`` print the same tables
an interrupted-and-resumed campaign reproduces byte-identically.
"""

from __future__ import annotations

import json
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.tables import format_table

#: Scalar result metrics aggregated across seed replicates.
REPLICATE_METRICS = ("throughput_gflops", "best_fitness", "objective_value", "samples_used")

#: Cell keys that identify a replicate *group* — everything except the seed.
#: (``seed`` is the replicate axis; the labels stay so tables can name rows.)
_REPLICATE_AXIS = "seed"


@dataclass(frozen=True)
class MetricStats:
    """Mean ± std (and range) of one metric across seed replicates."""

    count: int
    mean: float
    std: float
    min: float
    max: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricStats":
        """Aggregate raw per-seed values (sample std, ``ddof=1``; 0 for n=1)."""
        if not values:
            raise ValueError("cannot aggregate an empty value list")
        floats = [float(v) for v in values]
        n = len(floats)
        mean = sum(floats) / n
        if n > 1:
            std = math.sqrt(sum((v - mean) ** 2 for v in floats) / (n - 1))
        else:
            std = 0.0
        return cls(count=n, mean=mean, std=std, min=min(floats), max=max(floats))

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready form."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }

    def format(self) -> str:
        """Human form: ``mean ± std``."""
        return f"{self.mean:.4g} ± {self.std:.3g}"


@dataclass
class ReplicateAggregate:
    """One replicate group: a cell identity plus its cross-seed statistics."""

    cell: Dict[str, Any]
    seeds: List[int]
    metrics: Dict[str, MetricStats]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "cell": dict(self.cell),
            "seeds": list(self.seeds),
            "metrics": {name: stats.to_dict() for name, stats in self.metrics.items()},
        }


def replicate_key(cell: Dict[str, Any]) -> str:
    """Canonical identity of a cell's replicate group (the cell minus its seed)."""
    payload = {k: v for k, v in cell.items() if k != _REPLICATE_AXIS}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def aggregate_cells(
    rows: Iterable[Tuple[Dict[str, Any], Dict[str, Any]]],
    metrics: Sequence[str] = REPLICATE_METRICS,
) -> List[ReplicateAggregate]:
    """Group ``(cell, result)`` pairs by everything-but-seed and aggregate.

    Rows whose result lacks a metric (custom scenarios) skip that metric;
    groups appear in first-seen order, seeds sorted within each group.
    """
    grouped: "OrderedDict[str, Tuple[Dict[str, Any], List[Tuple[int, Dict[str, Any]]]]]" = OrderedDict()
    for cell, result in rows:
        key = replicate_key(cell)
        if key not in grouped:
            identity = {k: v for k, v in cell.items() if k != _REPLICATE_AXIS}
            grouped[key] = (identity, [])
        grouped[key][1].append((int(cell.get(_REPLICATE_AXIS, 0)), result))

    aggregates: List[ReplicateAggregate] = []
    for identity, members in grouped.values():
        members.sort(key=lambda pair: pair[0])
        seeds = [seed for seed, _ in members]
        stats: Dict[str, MetricStats] = {}
        for metric in metrics:
            values = [result[metric] for _, result in members if metric in result]
            if values:
                stats[metric] = MetricStats.from_values(values)
        aggregates.append(ReplicateAggregate(cell=identity, seeds=seeds, metrics=stats))
    return aggregates


def cross_seed_agreement(
    rows: Iterable[Tuple[Dict[str, Any], Dict[str, Any]]],
    metric: str = "throughput_gflops",
) -> Dict[str, Dict[str, Any]]:
    """Winner stability of each ``(panel, objective)`` comparison across seeds.

    For every seed the winning method is the one maximising *metric*; the
    comparison's ``agreement`` is the fraction of seeds whose winner is the
    modal winner (1.0 = every seed picks the same method).  Comparisons with
    a single method are trivially stable and still reported.
    """
    # (panel, objective) -> seed -> [(method, value)]
    contests: "OrderedDict[Tuple[str, str], Dict[int, List[Tuple[str, float]]]]" = OrderedDict()
    for cell, result in rows:
        if metric not in result:
            continue
        key = (str(cell.get("panel", "")), str(cell.get("objective", "")))
        seed = int(cell.get(_REPLICATE_AXIS, 0))
        contests.setdefault(key, {}).setdefault(seed, []).append(
            (str(cell.get("method", "")), float(result[metric]))
        )

    agreement: Dict[str, Dict[str, Any]] = {}
    for (panel, objective), by_seed in contests.items():
        per_seed_winner = {
            seed: max(entries, key=lambda pair: pair[1])[0]
            for seed, entries in sorted(by_seed.items())
        }
        tally: Dict[str, int] = {}
        for winner in per_seed_winner.values():
            tally[winner] = tally.get(winner, 0) + 1
        modal = max(tally, key=lambda method: (tally[method], method))
        agreement[f"{panel}/{objective}"] = {
            "panel": panel,
            "objective": objective,
            "winner": modal,
            "agreement": tally[modal] / len(per_seed_winner),
            "num_seeds": len(per_seed_winner),
            "per_seed_winner": {str(seed): w for seed, w in per_seed_winner.items()},
        }
    return agreement


def rows_from_run(cells: Sequence[Any], results: Sequence[Any]) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """``(cell dict, metric dict)`` pairs from an in-memory scenario run."""
    rows = []
    for cell, result in zip(cells, results):
        rows.append((
            cell.to_dict(),
            {
                "throughput_gflops": float(result.throughput_gflops),
                "best_fitness": float(result.best_fitness),
                "objective_value": float(result.objective_value),
                "samples_used": int(result.samples_used),
            },
        ))
    return rows


def rows_from_store(store: Any) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """``(cell, result)`` pairs from a campaign results store (or its path).

    Custom-scenario records (whose payload is an opaque ``output`` dict, not
    per-cell metrics) are skipped — they have no seed-replicate semantics.
    """
    from repro.experiments.campaign import CampaignResultsStore

    owns_store = isinstance(store, str)
    if owns_store:
        # Any store URL (bare path = jsonl:); closed again before returning.
        store = CampaignResultsStore(store)
    try:
        rows = []
        for record in store.records():
            cell = record.get("cell") or {}
            result = record.get("result") or {}
            if cell.get("custom") or "output" in result:
                continue
            rows.append((cell, result))
        return rows
    finally:
        if owns_store:
            store.close()


def replicate_summary(
    rows: Sequence[Tuple[Dict[str, Any], Dict[str, Any]]],
    metrics: Sequence[str] = REPLICATE_METRICS,
) -> Dict[str, Any]:
    """The full seed-replicate report for a set of ``(cell, result)`` rows."""
    aggregates = aggregate_cells(rows, metrics=metrics)
    return {
        "replicates": [aggregate.to_dict() for aggregate in aggregates],
        "cross_seed_agreement": cross_seed_agreement(rows),
        "num_cells": len(rows),
        "num_groups": len(aggregates),
    }


def replicate_table(
    aggregates: Sequence[ReplicateAggregate],
    metric: str = "throughput_gflops",
    title: Optional[str] = None,
) -> str:
    """ASCII table of per-group uncertainty columns for one metric."""
    headers = ["panel", "method", "objective", "seeds", "mean", "std", "min", "max"]
    rows = []
    for aggregate in aggregates:
        stats = aggregate.metrics.get(metric)
        if stats is None:
            continue
        cell = aggregate.cell
        rows.append([
            cell.get("panel", ""),
            cell.get("method", ""),
            cell.get("objective", ""),
            stats.count,
            stats.mean,
            stats.std,
            stats.min,
            stats.max,
        ])
    table = format_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table
