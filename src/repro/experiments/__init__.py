"""Declarative experiment definitions for every table and figure in the paper.

The scenario registry (:mod:`repro.experiments.scenarios`) describes each
figure/table as a declarative grid spec plus a post-processing hook; the
campaign engine (:mod:`repro.experiments.campaign`) executes one or more
scenarios as a flat, deduplicated, resumable stream of search cells.  The
``run_fig*`` functions are thin compatibility wrappers over the registry.
"""

from repro.experiments.settings import ExperimentScale, get_scale, list_scales
from repro.experiments.scenarios import (
    BudgetPolicy,
    Panel,
    ScenarioSpec,
    SearchCell,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
    spec_from_grid,
)
from repro.experiments.campaign import CampaignReport, CampaignResultsStore, CampaignRunner
from repro.experiments.runner import (
    run_method_comparison,
    run_fig7_job_analysis,
    run_fig8_homogeneous,
    run_fig9_heterogeneous,
    run_fig10_exploration,
    run_fig11_convergence,
    run_fig12_bw_sweep,
    run_fig13_subaccel_combinations,
    run_fig14_flexible,
    run_fig15_schedule_visualization,
    run_fig16_operator_ablation,
    run_fig17_group_size,
    run_table5_warm_start,
)

__all__ = [
    "ExperimentScale",
    "get_scale",
    "list_scales",
    "BudgetPolicy",
    "Panel",
    "ScenarioSpec",
    "SearchCell",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "spec_from_grid",
    "CampaignReport",
    "CampaignResultsStore",
    "CampaignRunner",
    "run_method_comparison",
    "run_fig7_job_analysis",
    "run_fig8_homogeneous",
    "run_fig9_heterogeneous",
    "run_fig10_exploration",
    "run_fig11_convergence",
    "run_fig12_bw_sweep",
    "run_fig13_subaccel_combinations",
    "run_fig14_flexible",
    "run_fig15_schedule_visualization",
    "run_fig16_operator_ablation",
    "run_fig17_group_size",
    "run_table5_warm_start",
]
