"""Declarative experiment definitions for every table and figure in the paper."""

from repro.experiments.settings import ExperimentScale, get_scale
from repro.experiments.runner import (
    run_method_comparison,
    run_fig7_job_analysis,
    run_fig8_homogeneous,
    run_fig9_heterogeneous,
    run_fig10_exploration,
    run_fig11_convergence,
    run_fig12_bw_sweep,
    run_fig13_subaccel_combinations,
    run_fig14_flexible,
    run_fig15_schedule_visualization,
    run_fig16_operator_ablation,
    run_fig17_group_size,
    run_table5_warm_start,
)

__all__ = [
    "ExperimentScale",
    "get_scale",
    "run_method_comparison",
    "run_fig7_job_analysis",
    "run_fig8_homogeneous",
    "run_fig9_heterogeneous",
    "run_fig10_exploration",
    "run_fig11_convergence",
    "run_fig12_bw_sweep",
    "run_fig13_subaccel_combinations",
    "run_fig14_flexible",
    "run_fig15_schedule_visualization",
    "run_fig16_operator_ablation",
    "run_fig17_group_size",
    "run_table5_warm_start",
]
