"""Declarative scenario specs and the scenario registry.

The paper's whole evaluation (Figs. 7-17, Table V) is one parametric grid:
``(platform setting x bandwidth x task x objective x method x seed)``.  A
:class:`ScenarioSpec` describes one slice of that grid as *data* — axes (or
explicit panels), methods, objective(s), seeds, and a budget policy — plus a
small post-processing hook that shapes raw per-cell search results into the
figure's output dict.  Scenarios that do not decompose into independent
search cells (sample recording, warm-start transfer, pure job analysis)
register a ``custom_runner`` instead and still plug into the same registry,
CLI, and campaign engine.

:mod:`repro.experiments.runner` registers one spec per figure/table and
keeps the historical ``run_fig*`` entry points as thin wrappers;
:mod:`repro.experiments.campaign` executes expanded cells with shared-work
dedup, a JSONL results store, and ``--resume``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.exceptions import ExperimentError
from repro.experiments.settings import ExperimentScale, get_scale
from repro.optimizers.registry import is_rl_method
from repro.utils.serialization import payload_fingerprint
from repro.utils.tables import unique_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.evalconfig import EvalConfig
    from repro.core.framework import SearchResult
    from repro.experiments.campaign import CampaignRunner


# ----------------------------------------------------------------------
# Budget policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BudgetPolicy:
    """How a scenario turns (method, scale) into a sampling budget.

    ``base`` selects the scale's budget family (``"sampling"`` for the
    paper's standard 10K-sample searches, ``"convergence"`` for the extended
    Fig. 11/16-style studies).  With ``rl_reduction`` enabled (the default),
    reinforcement-learning methods are capped at the scale's reduced RL
    budget — RL-ness is resolved through the optimizer registry
    (:func:`repro.optimizers.registry.is_rl_method`), not a hard-coded name
    set, so new RL aliases are never silently missed.
    """

    base: str = "sampling"
    rl_reduction: bool = True

    _BASES = ("sampling", "convergence")

    def __post_init__(self) -> None:
        if self.base not in self._BASES:
            raise ExperimentError(
                f"unknown budget base {self.base!r}; available: {list(self._BASES)}"
            )

    def base_budget(self, scale: ExperimentScale) -> int:
        """The non-RL budget for *scale*."""
        return scale.convergence_budget if self.base == "convergence" else scale.sampling_budget

    def budget_for(self, method: str, scale: ExperimentScale) -> int:
        """Sampling budget for one method at one scale."""
        budget = self.base_budget(scale)
        if self.rl_reduction and is_rl_method(method):
            return min(budget, scale.rl_sampling_budget)
        return budget


# ----------------------------------------------------------------------
# Grid cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Panel:
    """One (setting, bandwidth, task) problem instance of a scenario grid.

    ``tag`` is a free-form grouping key for post-processing hooks (e.g. the
    sweep a bandwidth point belongs to); ``group_size`` overrides the
    scale's default group size (Fig. 17's sweep axis).
    """

    label: str
    setting: str
    bandwidth_gbps: float
    task: str
    group_size: Optional[int] = None
    tag: Optional[str] = None


@dataclass(frozen=True)
class SearchCell:
    """One fully resolved unit of campaign work: a single mapping search.

    Every field is a concrete value (budgets and group sizes already
    resolved against the scale), so a cell is self-describing: the campaign
    engine can execute it in isolation, and :meth:`fingerprint` identifies
    it deterministically across runs for the ``--resume`` results store.

    ``seed_strategy`` fixes how the optimizer's random stream derives from
    ``seed``: ``"spawn"`` reproduces the multi-method comparison runners
    (``spawn_rngs(seed, num_methods)[method_index]``) and ``"direct"``
    reproduces the single-method figure runners (the seed is passed to the
    optimizer as-is).  Both are kept bit-compatible with the historical
    per-figure code paths.
    """

    scenario: str
    panel: str
    setting: str
    bandwidth_gbps: float
    task: str
    method: str
    objective: str
    seed: int
    method_index: int
    num_methods: int
    seed_strategy: str
    group_size: int
    budget: int
    optimizer_options: Tuple[Tuple[str, Any], ...] = ()
    tag: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (used by the results store and the fingerprint)."""
        return {
            "scenario": self.scenario,
            "panel": self.panel,
            "tag": self.tag,
            "setting": self.setting,
            "bandwidth_gbps": self.bandwidth_gbps,
            "task": self.task,
            "method": self.method,
            "objective": self.objective,
            "seed": self.seed,
            "method_index": self.method_index,
            "num_methods": self.num_methods,
            "seed_strategy": self.seed_strategy,
            "group_size": self.group_size,
            "budget": self.budget,
            "optimizer_options": dict(self.optimizer_options),
        }

    def fingerprint(self) -> str:
        """Deterministic identity of the cell's *work* (backend-independent).

        Everything that influences the search result is included — platform,
        problem, method, objective, seed derivation, budget, optimizer
        options.  Labels that do not (``scenario``, ``panel``, ``tag``) are
        excluded, so an identical cell appearing in two scenarios of one
        campaign runs once; the evaluation backend is excluded too (all
        backends are bit-identical), so a campaign interrupted under one
        backend can resume under another.
        """
        payload = self.to_dict()
        for label_only in ("scenario", "panel", "tag"):
            payload.pop(label_only)
        return _fingerprint(payload)


#: Cell identity = canonical-JSON SHA-256 (shared with the mapping service's
#: request fingerprints via :func:`repro.utils.serialization.payload_fingerprint`).
_fingerprint = payload_fingerprint


#: GA-family methods that accept a population size (mirrors the historical
#: per-figure runners).
_POPULATION_METHODS = {"magma", "magma-mut", "magma-mut-gen", "stdga", "de", "cma", "pso"}


def default_optimizer_options(method: str, scale: ExperimentScale, panel: Panel) -> Dict[str, Any]:
    """Per-method construction options derived from the scale."""
    if method.lower() in _POPULATION_METHODS:
        return {"population_size": scale.population_size}
    return {}


# ----------------------------------------------------------------------
# Scenario spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative description of one experiment scenario.

    Grid scenarios list axes (``settings x bandwidths x tasks``) or explicit
    ``panels`` (when bandwidth is tied to the setting, as in Fig. 9/12), and
    expand into flat :class:`SearchCell` lists via :meth:`expand`.
    ``panels_fn`` computes panels from the scale at expansion time (Fig. 17's
    scale-dependent group sizes).  ``post_process`` shapes the executed cells
    into the scenario's output dict; ``custom_runner`` replaces cell
    expansion entirely for scenarios that are not grids of independent
    searches.
    """

    name: str
    description: str
    settings: Tuple[str, ...] = ("S2",)
    bandwidths: Tuple[float, ...] = (16.0,)
    tasks: Tuple[str, ...] = ("mix",)
    methods: Tuple[str, ...] = ("magma",)
    objectives: Tuple[str, ...] = ("throughput",)
    seeds: Tuple[int, ...] = (0,)
    group_size: Optional[int] = None
    seed_strategy: str = "spawn"
    budget_policy: BudgetPolicy = BudgetPolicy()
    panels: Optional[Tuple[Panel, ...]] = None
    panels_fn: Optional[Callable[[ExperimentScale], Tuple[Panel, ...]]] = None
    optimizer_options: Callable[[str, ExperimentScale, Panel], Dict[str, Any]] = default_optimizer_options
    post_process: Optional[Callable[["ScenarioRun"], Dict[str, Any]]] = None
    custom_runner: Optional[Callable[["ScenarioContext"], Dict[str, Any]]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("a scenario needs a name")
        if self.seed_strategy not in ("spawn", "direct"):
            raise ExperimentError(
                f"unknown seed strategy {self.seed_strategy!r}; use 'spawn' or 'direct'"
            )
        if self.custom_runner is None and (not self.methods or not self.objectives or not self.seeds):
            raise ExperimentError(f"scenario {self.name!r} expands to an empty grid")

    @property
    def is_custom(self) -> bool:
        """Whether the scenario runs through a custom runner instead of cells."""
        return self.custom_runner is not None

    def resolved_panels(self, scale: ExperimentScale) -> Tuple[Panel, ...]:
        """The scenario's panels at one scale (explicit, computed, or axis product)."""
        if self.panels is not None:
            return self.panels
        if self.panels_fn is not None:
            return tuple(self.panels_fn(scale))
        return tuple(
            Panel(label=f"{setting}@{bandwidth:g}/{task}", setting=setting,
                  bandwidth_gbps=bandwidth, task=task)
            for setting in self.settings
            for bandwidth in self.bandwidths
            for task in self.tasks
        )

    def expand(self, scale: ExperimentScale, base_seed: int = 0) -> List[SearchCell]:
        """Flatten the scenario into fully resolved search cells.

        Expansion order — panels, then seeds, then objectives, then methods —
        is part of the contract: post-processing hooks and the resumable
        results store both rely on it being deterministic.
        """
        if self.is_custom:
            raise ExperimentError(f"scenario {self.name!r} is custom and has no cell grid")
        cells: List[SearchCell] = []
        for panel in self.resolved_panels(scale):
            group_size = panel.group_size or self.group_size or scale.group_size
            for offset in self.seeds:
                for objective in self.objectives:
                    for index, method in enumerate(self.methods):
                        options = self.optimizer_options(method, scale, panel)
                        cells.append(
                            SearchCell(
                                scenario=self.name,
                                panel=panel.label,
                                tag=panel.tag,
                                setting=panel.setting,
                                bandwidth_gbps=float(panel.bandwidth_gbps),
                                task=panel.task,
                                method=method,
                                objective=objective,
                                seed=base_seed + offset,
                                method_index=index,
                                num_methods=len(self.methods),
                                seed_strategy=self.seed_strategy,
                                group_size=int(group_size),
                                budget=int(self.budget_policy.budget_for(method, scale)),
                                optimizer_options=tuple(sorted(options.items())),
                            )
                        )
        return cells


# ----------------------------------------------------------------------
# Execution context / results
# ----------------------------------------------------------------------
@dataclass
class ScenarioContext:
    """Everything a custom runner or post-processing hook may need.

    ``engine`` is the :class:`~repro.experiments.campaign.CampaignRunner`
    executing the scenario: it carries the scale, the evaluation backend
    configuration, and the shared analysis-table/group caches, and builds
    properly wired :class:`~repro.core.framework.M3E` explorers.
    ``options`` holds scenario-specific keyword overrides forwarded by the
    historical ``run_*`` wrappers (e.g. Table V's ``num_instances``).
    """

    spec: ScenarioSpec
    engine: "CampaignRunner"
    base_seed: int = 0
    options: Dict[str, Any] = field(default_factory=dict)

    @property
    def scale(self) -> ExperimentScale:
        """The experiment scale the scenario runs at."""
        return self.engine.scale


@dataclass
class ScenarioRun:
    """The executed cells of a grid scenario, handed to post-processing."""

    spec: ScenarioSpec
    context: ScenarioContext
    cells: List[SearchCell]
    results: List["SearchResult"]

    @property
    def scale(self) -> ExperimentScale:
        return self.context.scale

    @property
    def base_seed(self) -> int:
        return self.context.base_seed

    def panel_map(self) -> "OrderedDict[str, Panel]":
        """Panel label -> panel, in expansion order."""
        panels = OrderedDict()
        for panel in self.spec.resolved_panels(self.scale):
            panels[panel.label] = panel
        return panels

    def by_panel(self) -> "OrderedDict[str, Dict[str, SearchResult]]":
        """Per-panel results keyed by (collision-suffixed) optimizer name.

        Mirrors the historical comparison runners: results appear in cell
        order and same-named methods are suffixed ``#2``/``#3`` rather than
        overwritten.
        """
        grouped: "OrderedDict[str, Dict[str, SearchResult]]" = OrderedDict()
        for cell, result in zip(self.cells, self.results):
            bucket = grouped.setdefault(cell.panel, {})
            bucket[unique_key(result.optimizer_name, bucket)] = result
        return grouped

    def seeds(self) -> List[int]:
        """Distinct cell seeds, in expansion order (one entry per replicate)."""
        return list(dict.fromkeys(cell.seed for cell in self.cells))

    def by_panel_and_seed(self) -> "OrderedDict[Tuple[str, int], Dict[str, SearchResult]]":
        """Like :meth:`by_panel`, but seed replicates stay separate.

        Post-processing hooks that aggregate across seed replicates
        (mean ± std, cross-seed agreement) need per-seed method maps;
        :meth:`by_panel` would suffix same-named methods from different
        seeds as collisions instead.
        """
        grouped: "OrderedDict[Tuple[str, int], Dict[str, SearchResult]]" = OrderedDict()
        for cell, result in zip(self.cells, self.results):
            bucket = grouped.setdefault((cell.panel, cell.seed), {})
            bucket[unique_key(result.optimizer_name, bucket)] = result
        return grouped


def default_post_process(run: ScenarioRun) -> Dict[str, Any]:
    """Generic scenario output: one summary row per executed cell."""
    rows = []
    for cell, result in zip(run.cells, run.results):
        row = cell.to_dict()
        row.update(
            optimizer_name=result.optimizer_name,
            best_fitness=float(result.best_fitness),
            objective_value=float(result.objective_value),
            throughput_gflops=float(result.throughput_gflops),
            samples_used=int(result.samples_used),
        )
        rows.append(row)
    return {"scenario": run.spec.name, "scale": run.scale.name, "cells": rows}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
SCENARIO_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (and return it, for aliasing)."""
    key = spec.name.lower()
    if key in SCENARIO_REGISTRY and not overwrite:
        raise ExperimentError(f"scenario {spec.name!r} is already registered")
    SCENARIO_REGISTRY[key] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by (case-insensitive) name."""
    # The per-figure specs register on import of the runner module.
    import repro.experiments.runner  # noqa: F401

    key = str(name).lower()
    if key not in SCENARIO_REGISTRY:
        raise ExperimentError(
            f"unknown scenario {name!r}; available: {list_scenarios()}"
        )
    return SCENARIO_REGISTRY[key]


def list_scenarios() -> List[str]:
    """Sorted names of every registered scenario."""
    import repro.experiments.runner  # noqa: F401

    return sorted(SCENARIO_REGISTRY)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenario(
    scenario: "str | ScenarioSpec",
    scale: "ExperimentScale | str | None" = None,
    seed: int = 0,
    eval_backend: Optional[str] = None,
    eval_workers: Optional[int] = None,
    eval_hosts: "str | Sequence[str] | None" = None,
    rpc_token: Optional[str] = None,
    engine: Optional["CampaignRunner"] = None,
    options: Optional[Dict[str, Any]] = None,
    warm_store: Optional[Any] = None,
    eval_config: Optional["EvalConfig"] = None,
) -> Dict[str, Any]:
    """Run one scenario end to end and return its post-processed output.

    This is the single entry point behind ``repro experiment <name>`` and
    the historical ``run_fig*`` wrappers.  ``engine`` reuses an existing
    campaign runner (sharing its caches and backend settings); otherwise one
    is built from ``scale``/``eval_config``/``warm_store`` (the latter a
    persistent warm-start provider such as
    :class:`~repro.service.warmlib.WarmStartLibrary`, threaded into every
    explorer the scenario builds).  The legacy
    ``eval_backend``/``eval_workers``/``eval_hosts``/``rpc_token`` keywords
    build the identical config but emit :class:`DeprecationWarning`.
    """
    from repro.core.evalconfig import resolve_eval_config
    from repro.experiments.campaign import CampaignRunner

    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if engine is None:
        resolved = scale if isinstance(scale, ExperimentScale) else get_scale(scale)
        engine = CampaignRunner(
            scale=resolved,
            eval_config=resolve_eval_config(
                eval_config,
                where="run_scenario",
                eval_backend=eval_backend,
                eval_workers=eval_workers,
                eval_hosts=eval_hosts,
                rpc_token=rpc_token,
            ),
            warm_store=warm_store,
        )
    context = ScenarioContext(spec=spec, engine=engine, base_seed=seed, options=dict(options or {}))
    if spec.is_custom:
        return spec.custom_runner(context)
    cells = spec.expand(engine.scale, base_seed=seed)
    results = [engine.run_cell(cell) for cell in cells]
    run = ScenarioRun(spec=spec, context=context, cells=cells, results=results)
    post = spec.post_process or default_post_process
    return post(run)


def with_seed_replicates(spec: ScenarioSpec, count: int) -> ScenarioSpec:
    """The spec, replicated across seeds ``0..count-1``.

    This is the axis behind ``repro-magma campaign --seeds N``: every grid
    cell runs once per seed offset (the campaign's ``base_seed`` still
    shifts all of them), feeding the seed-replicate statistics layer
    (:mod:`repro.experiments.stats`).  Custom scenarios have no cell grid to
    replicate and are returned unchanged.
    """
    if count <= 0:
        raise ExperimentError(f"seed replicate count must be positive, got {count}")
    if spec.is_custom:
        return spec
    from dataclasses import replace

    seeds = tuple(range(count))
    return spec if spec.seeds == seeds else replace(spec, seeds=seeds)


def spec_from_grid(grid: Dict[str, Any]) -> ScenarioSpec:
    """Build an ad-hoc grid scenario from a plain dict (``--grid`` JSON).

    Recognised keys: ``name``, ``description``, ``settings``, ``bandwidths``,
    ``tasks``, ``methods``, ``objectives``, ``seeds``, ``group_size``,
    ``budget`` (``"sampling"``/``"convergence"``).  Unknown keys are rejected
    so typos fail loudly instead of silently shrinking the grid.
    """
    known = {
        "name", "description", "settings", "bandwidths", "tasks", "methods",
        "objectives", "seeds", "group_size", "budget",
    }
    unknown = set(grid) - known
    if unknown:
        raise ExperimentError(f"unknown grid keys: {sorted(unknown)}; known: {sorted(known)}")

    def axis(key: str, default: Tuple, convert: Callable[[Any], Any]) -> Tuple:
        # A bare scalar is a one-element axis; tuple("S1") splitting into
        # ('S', '1') would otherwise expand a silently bogus grid.
        value = grid.get(key, default)
        if isinstance(value, (str, int, float)):
            value = (value,)
        return tuple(convert(v) for v in value)

    return ScenarioSpec(
        name=str(grid.get("name", "custom-grid")),
        description=str(grid.get("description", "ad-hoc campaign grid")),
        settings=axis("settings", ("S2",), str),
        bandwidths=axis("bandwidths", (16.0,), float),
        tasks=axis("tasks", ("mix",), str),
        methods=axis("methods", ("magma",), str),
        objectives=axis("objectives", ("throughput",), str),
        seeds=axis("seeds", (0,), int),
        group_size=grid.get("group_size"),
        budget_policy=BudgetPolicy(base=str(grid.get("budget", "sampling"))),
    )
