"""Multi-core accelerator platform.

A platform houses several sub-accelerators that share the *system bandwidth*
— the minimum of the host-to-accelerator link (PCIe/M.2) and the main memory
(DRAM/HBM) bandwidth (Section II-B1).  The platform object is what the M3E
framework optimizes mappings for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Tuple

from repro.accelerator.subaccel import SubAcceleratorConfig
from repro.costmodel import DataflowStyle
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class AcceleratorPlatform:
    """A multi-core accelerator with a shared system-bandwidth budget.

    Attributes
    ----------
    name:
        Setting identifier (e.g. ``"S4"``).
    sub_accelerators:
        The cores that make up the platform.
    system_bandwidth_gbps:
        Shared bandwidth between host memory and the accelerator, in GB/s.
        This is the constraint the BW allocator divides among cores.
    """

    name: str
    sub_accelerators: Tuple[SubAcceleratorConfig, ...]
    system_bandwidth_gbps: float

    def __post_init__(self) -> None:
        if not self.sub_accelerators:
            raise ConfigurationError("a platform needs at least one sub-accelerator")
        if self.system_bandwidth_gbps <= 0:
            raise ConfigurationError(
                f"system bandwidth must be positive, got {self.system_bandwidth_gbps}"
            )
        names = [sub.name for sub in self.sub_accelerators]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"sub-accelerator names must be unique, got {names}")
        if not isinstance(self.sub_accelerators, tuple):
            object.__setattr__(self, "sub_accelerators", tuple(self.sub_accelerators))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.sub_accelerators)

    def __iter__(self) -> Iterator[SubAcceleratorConfig]:
        return iter(self.sub_accelerators)

    def __getitem__(self, index: int) -> SubAcceleratorConfig:
        return self.sub_accelerators[index]

    @property
    def num_sub_accelerators(self) -> int:
        """Number of cores in the platform."""
        return len(self.sub_accelerators)

    @property
    def total_pes(self) -> int:
        """Total PE count across all cores."""
        return sum(sub.num_pes for sub in self.sub_accelerators)

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak compute throughput of the platform in GFLOP/s."""
        return sum(sub.peak_gflops for sub in self.sub_accelerators)

    @property
    def is_homogeneous(self) -> bool:
        """True when every core has the same PE array, dataflow, and buffers."""
        first = self.sub_accelerators[0]
        return all(
            sub.pe_rows == first.pe_rows
            and sub.pe_cols == first.pe_cols
            and sub.dataflow == first.dataflow
            and sub.sg_kilobytes == first.sg_kilobytes
            for sub in self.sub_accelerators
        )

    @property
    def dataflow_styles(self) -> List[DataflowStyle]:
        """Dataflow style of each core, in core order."""
        return [sub.dataflow for sub in self.sub_accelerators]

    def describe(self) -> str:
        """Multi-line, human-readable description of the platform."""
        lines = [
            f"{self.name}: {self.num_sub_accelerators} sub-accelerators, "
            f"system BW {self.system_bandwidth_gbps:g} GB/s, "
            f"{'homogeneous' if self.is_homogeneous else 'heterogeneous'}"
        ]
        lines.extend(f"  - {sub.describe()}" for sub in self.sub_accelerators)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def with_bandwidth(self, system_bandwidth_gbps: float) -> "AcceleratorPlatform":
        """Return a copy of the platform with a different system bandwidth."""
        return replace(self, system_bandwidth_gbps=system_bandwidth_gbps)

    def with_flexible_arrays(self, flexible: bool = True) -> "AcceleratorPlatform":
        """Return a copy in which every core has (or has not) a flexible PE array."""
        subs = tuple(replace(sub, flexible=flexible) for sub in self.sub_accelerators)
        suffix = "-flex" if flexible else "-fixed"
        return AcceleratorPlatform(
            name=self.name + suffix if not self.name.endswith(suffix) else self.name,
            sub_accelerators=subs,
            system_bandwidth_gbps=self.system_bandwidth_gbps,
        )

    def index_of(self, sub_name: str) -> int:
        """Return the index of the core named *sub_name*."""
        for i, sub in enumerate(self.sub_accelerators):
            if sub.name == sub_name:
                return i
        raise ConfigurationError(f"no sub-accelerator named {sub_name!r} in platform {self.name}")
