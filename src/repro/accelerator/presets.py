"""Preset accelerator settings S1-S6 from Table III of the paper.

All settings use a PE-array width of 64 and scale the height (32 / 64 / 128).
"HB" cores use the high-bandwidth (NVDLA-like) dataflow; "LB" cores use the
low-bandwidth (Eyeriss-like) dataflow.  Buffer sizes are the global
scratchpad capacities listed in the table.

Default system bandwidths follow Section VI-A3: Small settings are evaluated
in the 1-16 GB/s range (default 16), Large settings in the 1-256 GB/s range
(default 256).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.accelerator.platform import AcceleratorPlatform
from repro.accelerator.subaccel import SubAcceleratorConfig
from repro.costmodel import DataflowStyle
from repro.exceptions import ConfigurationError

#: Default system bandwidth (GB/s) for Small-class settings (DDR/PCIe range).
DEFAULT_SMALL_BANDWIDTH_GBPS = 16.0
#: Default system bandwidth (GB/s) for Large-class settings (HBM/PCIe5 range).
DEFAULT_LARGE_BANDWIDTH_GBPS = 256.0


def _sub(name: str, rows: int, dataflow: DataflowStyle, sg_kb: float) -> SubAcceleratorConfig:
    return SubAcceleratorConfig(
        name=name,
        pe_rows=rows,
        pe_cols=64,
        dataflow=dataflow,
        sg_kilobytes=sg_kb,
    )


def small_homogeneous(system_bandwidth_gbps: float = DEFAULT_SMALL_BANDWIDTH_GBPS) -> AcceleratorPlatform:
    """S1 — Small homogeneous: 4 x (32-high, HB, 146KB)."""
    subs = tuple(_sub(f"sub{i}", 32, DataflowStyle.HB, 146.0) for i in range(4))
    return AcceleratorPlatform("S1", subs, system_bandwidth_gbps)


def small_heterogeneous(system_bandwidth_gbps: float = DEFAULT_SMALL_BANDWIDTH_GBPS) -> AcceleratorPlatform:
    """S2 — Small heterogeneous: 3 x (32, HB, 146KB) + 1 x (32, LB, 110KB)."""
    subs = tuple(
        [_sub(f"sub{i}", 32, DataflowStyle.HB, 146.0) for i in range(3)]
        + [_sub("sub3", 32, DataflowStyle.LB, 110.0)]
    )
    return AcceleratorPlatform("S2", subs, system_bandwidth_gbps)


def large_homogeneous(system_bandwidth_gbps: float = DEFAULT_LARGE_BANDWIDTH_GBPS) -> AcceleratorPlatform:
    """S3 — Large homogeneous: 8 x (128, HB, 580KB)."""
    subs = tuple(_sub(f"sub{i}", 128, DataflowStyle.HB, 580.0) for i in range(8))
    return AcceleratorPlatform("S3", subs, system_bandwidth_gbps)


def large_heterogeneous(system_bandwidth_gbps: float = DEFAULT_LARGE_BANDWIDTH_GBPS) -> AcceleratorPlatform:
    """S4 — Large heterogeneous: 7 x (128, HB, 580KB) + 1 x (128, LB, 434KB)."""
    subs = tuple(
        [_sub(f"sub{i}", 128, DataflowStyle.HB, 580.0) for i in range(7)]
        + [_sub("sub7", 128, DataflowStyle.LB, 434.0)]
    )
    return AcceleratorPlatform("S4", subs, system_bandwidth_gbps)


def large_big_little(system_bandwidth_gbps: float = DEFAULT_LARGE_BANDWIDTH_GBPS) -> AcceleratorPlatform:
    """S5 — Large heterogeneous BigLittle.

    3 x (128, HB, 580KB) + 1 x (128, LB, 434KB) +
    3 x (64, HB, 291KB) + 1 x (64, LB, 218KB).
    """
    subs = tuple(
        [_sub(f"sub{i}", 128, DataflowStyle.HB, 580.0) for i in range(3)]
        + [_sub("sub3", 128, DataflowStyle.LB, 434.0)]
        + [_sub(f"sub{i}", 64, DataflowStyle.HB, 291.0) for i in range(4, 7)]
        + [_sub("sub7", 64, DataflowStyle.LB, 218.0)]
    )
    return AcceleratorPlatform("S5", subs, system_bandwidth_gbps)


def large_scale_up(system_bandwidth_gbps: float = DEFAULT_LARGE_BANDWIDTH_GBPS) -> AcceleratorPlatform:
    """S6 — Large scale-up: 16 cores mixing big/little and HB/LB.

    7 x (128, HB, 580KB) + 1 x (128, LB, 434KB) +
    7 x (64, HB, 291KB) + 1 x (64, LB, 218KB).
    """
    subs = tuple(
        [_sub(f"sub{i}", 128, DataflowStyle.HB, 580.0) for i in range(7)]
        + [_sub("sub7", 128, DataflowStyle.LB, 434.0)]
        + [_sub(f"sub{i}", 64, DataflowStyle.HB, 291.0) for i in range(8, 15)]
        + [_sub("sub15", 64, DataflowStyle.LB, 218.0)]
    )
    return AcceleratorPlatform("S6", subs, system_bandwidth_gbps)


#: Registry of setting name -> builder.
ACCELERATOR_SETTINGS: Dict[str, Callable[..., AcceleratorPlatform]] = {
    "S1": small_homogeneous,
    "S2": small_heterogeneous,
    "S3": large_homogeneous,
    "S4": large_heterogeneous,
    "S5": large_big_little,
    "S6": large_scale_up,
}


def build_setting(name: str, system_bandwidth_gbps: float | None = None) -> AcceleratorPlatform:
    """Build one of the Table III settings by name (``"S1"`` .. ``"S6"``)."""
    key = name.upper()
    if key not in ACCELERATOR_SETTINGS:
        raise ConfigurationError(
            f"unknown accelerator setting {name!r}; available: {sorted(ACCELERATOR_SETTINGS)}"
        )
    builder = ACCELERATOR_SETTINGS[key]
    if system_bandwidth_gbps is None:
        return builder()
    return builder(system_bandwidth_gbps)


def list_settings() -> List[str]:
    """Names of the available preset settings."""
    return sorted(ACCELERATOR_SETTINGS)
