"""Accelerator platform substrate: sub-accelerator configs and multi-core platforms."""

from repro.accelerator.subaccel import SubAcceleratorConfig
from repro.accelerator.platform import AcceleratorPlatform
from repro.accelerator.presets import (
    ACCELERATOR_SETTINGS,
    build_setting,
    list_settings,
    small_homogeneous,
    small_heterogeneous,
    large_homogeneous,
    large_heterogeneous,
    large_big_little,
    large_scale_up,
)

__all__ = [
    "SubAcceleratorConfig",
    "AcceleratorPlatform",
    "ACCELERATOR_SETTINGS",
    "build_setting",
    "list_settings",
    "small_homogeneous",
    "small_heterogeneous",
    "large_homogeneous",
    "large_heterogeneous",
    "large_big_little",
    "large_scale_up",
]
