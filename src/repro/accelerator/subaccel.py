"""Sub-accelerator (core) configuration.

Each sub-accelerator is a conventional DNN accelerator: a 2-D PE array, a
PE-local scratchpad (SL), a shared global scratchpad (SG), and a dataflow
style (Section II-B2 of the paper).  This module describes the hardware
configuration; the analytical cost model turns a configuration plus a layer
into latency/bandwidth estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel import AnalyticalCostModel, DataflowStyle, FlexibleArrayCostModel, get_dataflow
from repro.exceptions import ConfigurationError
from repro.utils.units import DEFAULT_BYTES_PER_ELEMENT, DEFAULT_FREQUENCY_HZ


@dataclass(frozen=True)
class SubAcceleratorConfig:
    """Hardware configuration of one accelerator core.

    Attributes
    ----------
    name:
        Identifier used in schedules and reports, e.g. ``"sub0"``.
    pe_rows, pe_cols:
        Height and width of the PE array.  The paper fixes the width to 64
        and scales the height (32 / 64 / 128) between Small and Large
        settings.
    dataflow:
        Dataflow style, ``HB`` or ``LB``.
    sg_kilobytes:
        Shared global scratchpad capacity in KB (Table III column "buffer").
    sl_kilobytes:
        Per-PE local scratchpad capacity in KB.
    flexible:
        If true, the PE array shape is reconfigurable per layer (Section VI-F)
        while keeping the same total PE count.
    frequency_hz:
        Clock frequency, 200 MHz by default.
    """

    name: str
    pe_rows: int
    pe_cols: int = 64
    dataflow: DataflowStyle = DataflowStyle.HB
    sg_kilobytes: float = 146.0
    sl_kilobytes: float = 1.0
    flexible: bool = False
    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    bytes_per_element: int = DEFAULT_BYTES_PER_ELEMENT

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sub-accelerator name must not be empty")
        if self.pe_rows <= 0 or self.pe_cols <= 0:
            raise ConfigurationError(
                f"PE array dimensions must be positive, got {self.pe_rows}x{self.pe_cols}"
            )
        if self.sg_kilobytes <= 0 or self.sl_kilobytes <= 0:
            raise ConfigurationError("scratchpad sizes must be positive")
        if isinstance(self.dataflow, str):
            # Allow string dataflows for convenience in user configs.
            object.__setattr__(self, "dataflow", get_dataflow(self.dataflow).style)

    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        """Total number of processing elements."""
        return self.pe_rows * self.pe_cols

    @property
    def sg_bytes(self) -> int:
        """Global scratchpad size in bytes."""
        return int(self.sg_kilobytes * 1024)

    @property
    def sl_bytes(self) -> int:
        """Per-PE local scratchpad size in bytes."""
        return int(self.sl_kilobytes * 1024)

    @property
    def peak_gflops(self) -> float:
        """Peak throughput of this core in GFLOP/s (2 ops per MAC per cycle)."""
        return 2.0 * self.num_pes * self.frequency_hz / 1e9

    def describe(self) -> str:
        """Single-line description matching the Table III notation."""
        flex = ", flexible" if self.flexible else ""
        return (
            f"{self.name}: {self.pe_rows}x{self.pe_cols} PEs, "
            f"{self.dataflow.value}, SG {self.sg_kilobytes:.0f}KB{flex}"
        )

    # ------------------------------------------------------------------
    def build_cost_model(self) -> AnalyticalCostModel | FlexibleArrayCostModel:
        """Instantiate the analytical cost model for this configuration."""
        if self.flexible:
            return FlexibleArrayCostModel(
                total_pes=self.num_pes,
                dataflow=self.dataflow,
                sg_bytes=self.sg_bytes,
                sl_bytes=self.sl_bytes,
                frequency_hz=self.frequency_hz,
                bytes_per_element=self.bytes_per_element,
            )
        return AnalyticalCostModel(
            pe_rows=self.pe_rows,
            pe_cols=self.pe_cols,
            dataflow=self.dataflow,
            sg_bytes=self.sg_bytes,
            sl_bytes=self.sl_bytes,
            frequency_hz=self.frequency_hz,
            bytes_per_element=self.bytes_per_element,
        )

    def scaled(self, row_factor: float, name: str | None = None) -> "SubAcceleratorConfig":
        """Return a copy with the PE-array height and SG scaled by *row_factor*.

        Used to derive "little" cores from "big" ones (settings S5/S6).
        """
        if row_factor <= 0:
            raise ConfigurationError(f"row_factor must be positive, got {row_factor}")
        return SubAcceleratorConfig(
            name=name or self.name,
            pe_rows=max(1, int(self.pe_rows * row_factor)),
            pe_cols=self.pe_cols,
            dataflow=self.dataflow,
            sg_kilobytes=max(1.0, self.sg_kilobytes * row_factor),
            sl_kilobytes=self.sl_kilobytes,
            flexible=self.flexible,
            frequency_hz=self.frequency_hz,
            bytes_per_element=self.bytes_per_element,
        )
