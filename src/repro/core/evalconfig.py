"""One frozen configuration object for the evaluation engine.

Every layer that runs searches — :class:`~repro.core.framework.M3E`, the
:class:`~repro.core.evaluator.MappingEvaluator`, the campaign engine, the
experiment runners, the mapping service, and the CLI — needs the same four
decisions: which evaluation backend, how many worker processes, which remote
hosts, which RPC token.  Since PR 5 those four travelled as separate
``eval_backend/eval_workers/eval_hosts/rpc_token`` keyword arguments through
*seven* constructor signatures, each re-validating the combinations.

:class:`EvalConfig` collapses the sprawl: one frozen, hashable dataclass,
validated once at construction, accepted everywhere as ``eval_config=``.
The old kwargs still work on every public entry point — they build the same
``EvalConfig`` internally via :func:`resolve_eval_config` and are therefore
bit-identical by construction — but emit :class:`DeprecationWarning`.

The canonical backend names also live here (re-exported from
:mod:`repro.core.evaluator` for compatibility).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Registered evaluation backends, in oracle-to-fleet order.
EVAL_BACKENDS: Tuple[str, ...] = ("scalar", "batch", "parallel", "rpc")

#: The default backend: the vectorized batch sweep (fast everywhere, no
#: worker processes to manage).
DEFAULT_EVAL_BACKEND = "batch"


@dataclass(frozen=True)
class EvalConfig:
    """How fitness evaluations run: backend, local workers, remote fleet.

    Parameters
    ----------
    backend:
        ``"batch"`` (vectorized population sweep, the default), ``"parallel"``
        (the batch sweep sharded across worker processes), ``"rpc"`` (the
        same sweep sharded across remote worker hosts), or ``"scalar"`` (the
        one-at-a-time reference oracle).  All four are bit-identical.
    workers:
        Worker-process count for the ``parallel`` backend (default: one per
        CPU core).  Rejected for other backends, where it would be silently
        meaningless.
    hosts:
        Remote worker addresses for the ``rpc`` backend — a
        ``"host:port,host:port"`` string or a sequence of ``host:port``
        entries (normalised to a tuple), each running ``repro-magma
        eval-worker``.  Rejected for other backends.  ``None`` with
        ``backend="rpc"`` is the degenerate no-fleet mode: everything
        evaluates locally.
    rpc_token:
        Shared authentication token for the ``rpc`` backend (default: the
        ``REPRO_RPC_TOKEN`` environment variable).
    """

    backend: str = DEFAULT_EVAL_BACKEND
    workers: Optional[int] = None
    hosts: Optional[Tuple[str, ...]] = None
    rpc_token: Optional[str] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.backend not in EVAL_BACKENDS:
            raise ConfigurationError(
                f"unknown evaluation backend {self.backend!r}; available: {list(EVAL_BACKENDS)}"
            )
        if self.workers is not None:
            if self.backend != "parallel":
                raise ConfigurationError(
                    f"eval workers are only meaningful for the 'parallel' backend, "
                    f"not {self.backend!r}"
                )
            if int(self.workers) < 1:
                raise ConfigurationError(f"eval workers must be >= 1, got {self.workers}")
            object.__setattr__(self, "workers", int(self.workers))
        if self.hosts is not None or self.rpc_token is not None:
            if self.backend != "rpc":
                raise ConfigurationError(
                    f"eval hosts/rpc_token are only meaningful for the 'rpc' backend, "
                    f"not {self.backend!r}"
                )
        if isinstance(self.hosts, str):
            object.__setattr__(
                self,
                "hosts",
                tuple(part.strip() for part in self.hosts.split(",") if part.strip()),
            )
        elif self.hosts is not None:
            object.__setattr__(self, "hosts", tuple(str(host) for host in self.hosts))
        if self.backend == "rpc":
            # Malformed host lists must fail at configuration time, not on
            # the first evaluated population.  Imported lazily: the rpc
            # module builds on core layers that import this one.
            from repro.core.rpc import parse_hosts

            parse_hosts(self.hosts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (the token is deliberately included — callers that
        serialize configs for display should drop it themselves)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "hosts": list(self.hosts) if self.hosts is not None else None,
            "rpc_token": self.rpc_token,
        }


def resolve_eval_config(
    eval_config: "EvalConfig | None",
    *,
    where: str,
    eval_backend: Optional[str] = None,
    eval_workers: Optional[int] = None,
    eval_hosts: "str | Sequence[str] | None" = None,
    rpc_token: Optional[str] = None,
    stacklevel: int = 3,
    warn_on: Optional[Sequence[str]] = None,
) -> EvalConfig:
    """The one migration shim behind every ``eval_config=`` entry point.

    New code passes ``eval_config=EvalConfig(...)`` and nothing else.  Old
    code keeps passing the four legacy kwargs: they build the identical
    ``EvalConfig`` (bit-identical results by construction) and emit one
    :class:`DeprecationWarning` naming the call site's owner *where*.
    Mixing both styles is ambiguous and fails loudly.  *warn_on* restricts
    which legacy kwargs trigger the warning (the evaluator keeps
    ``backend``/``num_workers`` as silent conveniences); ``None`` warns on
    all of them.
    """
    legacy = {
        "eval_backend": eval_backend,
        "eval_workers": eval_workers,
        "eval_hosts": eval_hosts,
        "rpc_token": rpc_token,
    }
    used = [name for name, value in legacy.items() if value is not None]
    if eval_config is not None:
        if used:
            raise ConfigurationError(
                f"{where}: pass either eval_config= or the legacy "
                f"{'/'.join(used)} keyword(s), not both"
            )
        if not isinstance(eval_config, EvalConfig):
            raise ConfigurationError(
                f"{where}: eval_config must be an EvalConfig, got {eval_config!r}"
            )
        return eval_config
    warned = used if warn_on is None else [name for name in used if name in warn_on]
    if warned:
        warnings.warn(
            f"{where}: the {'/'.join(warned)} keyword(s) are deprecated; "
            f"pass eval_config=EvalConfig(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    return EvalConfig(
        backend=eval_backend if eval_backend is not None else DEFAULT_EVAL_BACKEND,
        workers=eval_workers,
        hosts=eval_hosts,  # type: ignore[arg-type]  # normalised in __post_init__
        rpc_token=rpc_token,
    )


__all__ = [
    "DEFAULT_EVAL_BACKEND",
    "EVAL_BACKENDS",
    "EvalConfig",
    "resolve_eval_config",
]
