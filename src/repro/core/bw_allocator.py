"""Bandwidth allocator — Algorithm 1 of the paper.

The shared system bandwidth is a global resource.  Splitting it evenly across
cores wastes it (a core running a compute-bound job does not need its even
share, while a core running a memory-bound job starves).  Algorithm 1 instead
re-allocates the bandwidth proportionally to the *required* bandwidth of the
jobs currently live on each core, re-computing the split every time a job
finishes and the next job on that core launches.

The allocator consumes the decoded mapping description plus the Job Analysis
Table and produces either just the makespan (fast path used inside the
optimization loop) or a full :class:`~repro.core.schedule.Schedule` with the
job timeline and bandwidth segments (used for reporting and Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.analyzer import JobAnalysisTable
from repro.core.encoding import Mapping
from repro.core.schedule import BandwidthSegment, Schedule, ScheduledJob
from repro.exceptions import SchedulingError
from repro.utils.units import DEFAULT_FREQUENCY_HZ

#: Numerical tolerance when deciding that a job's remaining work is finished.
_EPSILON = 1e-9


@dataclass(frozen=True)
class ScheduleEvent:
    """One re-allocation event: a job finished and bandwidth was re-split."""

    time_cycles: float
    finished_job_index: int
    sub_accelerator_index: int


class BandwidthAllocator:
    """Implements the proportional bandwidth re-allocation of Algorithm 1."""

    def __init__(self, system_bandwidth_gbps: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ):
        if system_bandwidth_gbps <= 0:
            raise SchedulingError(
                f"system bandwidth must be positive, got {system_bandwidth_gbps}"
            )
        if frequency_hz <= 0:
            raise SchedulingError(f"frequency must be positive, got {frequency_hz}")
        self.system_bandwidth_gbps = system_bandwidth_gbps
        self.frequency_hz = frequency_hz

    # ------------------------------------------------------------------
    def makespan_cycles(self, mapping: Mapping, table: JobAnalysisTable) -> float:
        """Fast path: simulate the schedule and return only the makespan."""
        return self._simulate(mapping, table, record=False)[0]

    def allocate(self, mapping: Mapping, table: JobAnalysisTable) -> Schedule:
        """Full path: simulate the schedule and return the complete timeline."""
        makespan, jobs, segments = self._simulate(mapping, table, record=True)
        return Schedule(
            jobs=jobs,
            segments=segments,
            num_sub_accelerators=mapping.num_sub_accelerators,
            total_flops=table.total_flops,
            frequency_hz=self.frequency_hz,
        )

    # ------------------------------------------------------------------
    def _simulate(
        self,
        mapping: Mapping,
        table: JobAnalysisTable,
        record: bool,
    ) -> Tuple[float, List[ScheduledJob], List[BandwidthSegment]]:
        """Event-driven simulation of Algorithm 1.

        Each core executes its assigned jobs in order.  At every event (a job
        completion) the system bandwidth is re-split proportionally to the
        live jobs' required bandwidth, capped so no job receives more than it
        needs when the total demand is below the system budget.
        """
        if mapping.num_jobs != table.num_jobs:
            raise SchedulingError(
                f"mapping covers {mapping.num_jobs} jobs but the analysis table has {table.num_jobs}"
            )
        num_cores = mapping.num_sub_accelerators
        if num_cores > table.num_sub_accelerators:
            raise SchedulingError(
                f"mapping targets {num_cores} cores but the analysis table only has "
                f"{table.num_sub_accelerators}"
            )

        queues: List[List[int]] = [list(core_jobs) for core_jobs in mapping.assignments]
        queue_pos = [0] * num_cores

        # Per-core live-job state.
        current_job = np.full(num_cores, -1, dtype=int)
        remaining_work = np.zeros(num_cores)  # latency_cycles * required_bw
        required_bw = np.zeros(num_cores)
        job_start = np.zeros(num_cores)

        scheduled_jobs: List[ScheduledJob] = []
        segments: List[BandwidthSegment] = []

        def launch_next(core: int, now: float) -> None:
            """Pop the next job of *core*'s queue (if any) and make it live."""
            if queue_pos[core] < len(queues[core]):
                job_index = queues[core][queue_pos[core]]
                queue_pos[core] += 1
                latency = table.latency_cycles[job_index, core]
                bw = table.required_bw_gbps[job_index, core]
                if latency <= 0 or bw <= 0:
                    raise SchedulingError(
                        f"job {job_index} has non-positive latency/bandwidth on core {core}"
                    )
                current_job[core] = job_index
                remaining_work[core] = latency * bw
                required_bw[core] = bw
                job_start[core] = now
            else:
                current_job[core] = -1
                remaining_work[core] = 0.0
                required_bw[core] = 0.0

        now = 0.0
        for core in range(num_cores):
            launch_next(core, now)

        active = current_job >= 0
        while np.any(active):
            demand = required_bw[active]
            total_demand = float(demand.sum())
            allocation = np.zeros(num_cores)
            if total_demand <= self.system_bandwidth_gbps:
                allocation[active] = required_bw[active]
            else:
                allocation[active] = required_bw[active] * (self.system_bandwidth_gbps / total_demand)

            with np.errstate(divide="ignore", invalid="ignore"):
                runtimes = np.where(active, remaining_work / np.maximum(allocation, _EPSILON), np.inf)
            dt = float(runtimes.min())
            if not np.isfinite(dt) or dt < 0:
                raise SchedulingError("bandwidth allocation produced a non-finite time step")

            if record:
                segments.append(
                    BandwidthSegment(
                        start_cycle=now,
                        end_cycle=now + dt,
                        allocation_gbps=tuple(float(a) for a in allocation),
                    )
                )

            # Cores whose runtime equals the step finish now; computing this from
            # the runtimes (rather than the drained remaining work) guarantees
            # at least one job completes per event even under floating-point
            # rounding, so the loop always terminates.
            finished = active & (runtimes <= dt * (1.0 + 1e-12) + _EPSILON)

            # Advance time and drain work proportionally to each core's allocation.
            remaining_work[active] -= dt * allocation[active]
            remaining_work[finished] = 0.0
            now += dt
            for core in np.flatnonzero(finished):
                job_index = int(current_job[core])
                if record:
                    scheduled_jobs.append(
                        ScheduledJob(
                            job_index=job_index,
                            sub_accelerator_index=int(core),
                            start_cycle=float(job_start[core]),
                            end_cycle=float(now),
                            no_stall_latency_cycles=float(table.latency_cycles[job_index, core]),
                            required_bw_gbps=float(table.required_bw_gbps[job_index, core]),
                        )
                    )
                launch_next(int(core), now)
            active = current_job >= 0

        return now, scheduled_jobs, segments
