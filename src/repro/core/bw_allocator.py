"""Bandwidth allocator — Algorithm 1 of the paper.

The shared system bandwidth is a global resource.  Splitting it evenly across
cores wastes it (a core running a compute-bound job does not need its even
share, while a core running a memory-bound job starves).  Algorithm 1 instead
re-allocates the bandwidth proportionally to the *required* bandwidth of the
jobs currently live on each core, re-computing the split every time a job
finishes and the next job on that core launches.

The allocator consumes the decoded mapping description plus the Job Analysis
Table and produces either just the makespan (fast path used inside the
optimization loop) or a full :class:`~repro.core.schedule.Schedule` with the
job timeline and bandwidth segments (used for reporting and Fig. 15).

Two allocators implement the same simulation:

* :class:`BandwidthAllocator` — the scalar reference oracle, one mapping at a
  time, able to record the full timeline, and
* :class:`BatchBandwidthAllocator` — the vectorized engine behind the
  ``batch`` evaluation backend: it stacks the per-core live-job state of a
  whole population (``(pop, cores)`` arrays) so each iteration of the event
  loop advances *every* individual at once.  Its makespans are bit-identical
  to the scalar path; both share the same explicitly-sequential bandwidth
  demand summation so floating-point rounding cannot diverge between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.analyzer import JobAnalysisTable
from repro.core.encoding import Mapping, MappingBatch
from repro.core.schedule import BandwidthSegment, Schedule, ScheduledJob
from repro.exceptions import SchedulingError
from repro.utils.units import DEFAULT_FREQUENCY_HZ

#: Numerical tolerance when deciding that a job's remaining work is finished.
_EPSILON = 1e-9

#: The batched sweep compacts its state arrays down to the still-running rows
#: once at least this many rows have converged (and they are the majority):
#: below this, the gather costs more than the dead rows' masked no-op steps.
_COMPACTION_MIN_ROWS = 16


@dataclass(frozen=True)
class ScheduleEvent:
    """One re-allocation event: a job finished and bandwidth was re-split."""

    time_cycles: float
    finished_job_index: int
    sub_accelerator_index: int


class BandwidthAllocator:
    """Implements the proportional bandwidth re-allocation of Algorithm 1."""

    def __init__(self, system_bandwidth_gbps: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ):
        if system_bandwidth_gbps <= 0:
            raise SchedulingError(
                f"system bandwidth must be positive, got {system_bandwidth_gbps}"
            )
        if frequency_hz <= 0:
            raise SchedulingError(f"frequency must be positive, got {frequency_hz}")
        self.system_bandwidth_gbps = system_bandwidth_gbps
        self.frequency_hz = frequency_hz

    # ------------------------------------------------------------------
    def makespan_cycles(self, mapping: Mapping, table: JobAnalysisTable) -> float:
        """Fast path: simulate the schedule and return only the makespan."""
        return self._simulate(mapping, table, record=False)[0]

    def allocate(self, mapping: Mapping, table: JobAnalysisTable) -> Schedule:
        """Full path: simulate the schedule and return the complete timeline."""
        makespan, jobs, segments = self._simulate(mapping, table, record=True)
        return Schedule(
            jobs=jobs,
            segments=segments,
            num_sub_accelerators=mapping.num_sub_accelerators,
            total_flops=table.total_flops,
            frequency_hz=self.frequency_hz,
        )

    # ------------------------------------------------------------------
    def _simulate(
        self,
        mapping: Mapping,
        table: JobAnalysisTable,
        record: bool,
    ) -> Tuple[float, List[ScheduledJob], List[BandwidthSegment]]:
        """Event-driven simulation of Algorithm 1.

        Each core executes its assigned jobs in order.  At every event (a job
        completion) the system bandwidth is re-split proportionally to the
        live jobs' required bandwidth, capped so no job receives more than it
        needs when the total demand is below the system budget.
        """
        if mapping.num_jobs != table.num_jobs:
            raise SchedulingError(
                f"mapping covers {mapping.num_jobs} jobs but the analysis table has {table.num_jobs}"
            )
        num_cores = mapping.num_sub_accelerators
        if num_cores > table.num_sub_accelerators:
            raise SchedulingError(
                f"mapping targets {num_cores} cores but the analysis table only has "
                f"{table.num_sub_accelerators}"
            )

        queues: List[List[int]] = [list(core_jobs) for core_jobs in mapping.assignments]
        queue_pos = [0] * num_cores

        # Per-core live-job state.
        current_job = np.full(num_cores, -1, dtype=int)
        remaining_work = np.zeros(num_cores)  # latency_cycles * required_bw
        required_bw = np.zeros(num_cores)
        job_start = np.zeros(num_cores)

        scheduled_jobs: List[ScheduledJob] = []
        segments: List[BandwidthSegment] = []

        def launch_next(core: int, now: float) -> None:
            """Pop the next job of *core*'s queue (if any) and make it live."""
            if queue_pos[core] < len(queues[core]):
                job_index = queues[core][queue_pos[core]]
                queue_pos[core] += 1
                latency = table.latency_cycles[job_index, core]
                bw = table.required_bw_gbps[job_index, core]
                if latency <= 0 or bw <= 0:
                    raise SchedulingError(
                        f"job {job_index} has non-positive latency/bandwidth on core {core}"
                    )
                current_job[core] = job_index
                remaining_work[core] = latency * bw
                required_bw[core] = bw
                job_start[core] = now
            else:
                current_job[core] = -1
                remaining_work[core] = 0.0
                required_bw[core] = 0.0

        now = 0.0
        for core in range(num_cores):
            launch_next(core, now)

        active = current_job >= 0
        while np.any(active):
            # Sum the demand core-by-core in index order (idle cores hold an
            # exact 0.0, which leaves a sequential float sum unchanged).  The
            # batched allocator accumulates its per-row demand column-by-column
            # in the same order, so both paths round identically even on
            # platforms with 8+ cores where NumPy's pairwise sum would differ.
            total_demand = 0.0
            for bw_value in required_bw:
                total_demand += float(bw_value)
            allocation = np.zeros(num_cores)
            if total_demand <= self.system_bandwidth_gbps:
                allocation[active] = required_bw[active]
            else:
                allocation[active] = required_bw[active] * (self.system_bandwidth_gbps / total_demand)

            with np.errstate(divide="ignore", invalid="ignore"):
                runtimes = np.where(active, remaining_work / np.maximum(allocation, _EPSILON), np.inf)
            dt = float(runtimes.min())
            if not np.isfinite(dt) or dt < 0:
                raise SchedulingError("bandwidth allocation produced a non-finite time step")

            if record:
                segments.append(
                    BandwidthSegment(
                        start_cycle=now,
                        end_cycle=now + dt,
                        allocation_gbps=tuple(float(a) for a in allocation),
                    )
                )

            # Cores whose runtime equals the step finish now; computing this from
            # the runtimes (rather than the drained remaining work) guarantees
            # at least one job completes per event even under floating-point
            # rounding, so the loop always terminates.
            finished = active & (runtimes <= dt * (1.0 + 1e-12) + _EPSILON)

            # Advance time and drain work proportionally to each core's allocation.
            remaining_work[active] -= dt * allocation[active]
            # Floating-point rounding can drive a non-finished core's residual
            # slightly negative, which would yield a negative runtime (and a
            # spurious SchedulingError) on the next event; clamp at zero.
            np.maximum(remaining_work, 0.0, out=remaining_work)
            remaining_work[finished] = 0.0
            now += dt
            for core in np.flatnonzero(finished):
                job_index = int(current_job[core])
                if record:
                    scheduled_jobs.append(
                        ScheduledJob(
                            job_index=job_index,
                            sub_accelerator_index=int(core),
                            start_cycle=float(job_start[core]),
                            end_cycle=float(now),
                            no_stall_latency_cycles=float(table.latency_cycles[job_index, core]),
                            required_bw_gbps=float(table.required_bw_gbps[job_index, core]),
                        )
                    )
                launch_next(int(core), now)
            active = current_job >= 0

        return now, scheduled_jobs, segments


class BatchBandwidthAllocator:
    """Vectorized Algorithm 1 over a whole population of mappings.

    State arrays are shaped ``(pop, cores)``; each iteration of the event
    loop advances every still-running individual by its own next event.
    Individuals finish after different event counts — completed rows are
    masked (their time step is forced to zero) until the whole batch drains.

    Every floating-point operation mirrors the scalar
    :class:`BandwidthAllocator` element-wise, so the returned makespans are
    bit-identical to running the scalar simulation per individual.
    """

    def __init__(self, system_bandwidth_gbps: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ):
        if system_bandwidth_gbps <= 0:
            raise SchedulingError(
                f"system bandwidth must be positive, got {system_bandwidth_gbps}"
            )
        if frequency_hz <= 0:
            raise SchedulingError(f"frequency must be positive, got {frequency_hz}")
        self.system_bandwidth_gbps = system_bandwidth_gbps
        self.frequency_hz = frequency_hz

    # ------------------------------------------------------------------
    def makespan_cycles(self, batch: MappingBatch, table: JobAnalysisTable) -> np.ndarray:
        """Simulate every mapping of *batch* and return a ``(pop,)`` makespan array."""
        if batch.num_jobs != table.num_jobs:
            raise SchedulingError(
                f"mapping covers {batch.num_jobs} jobs but the analysis table has {table.num_jobs}"
            )
        num_cores = batch.num_sub_accelerators
        if num_cores > table.num_sub_accelerators:
            raise SchedulingError(
                f"mapping targets {num_cores} cores but the analysis table only has "
                f"{table.num_sub_accelerators}"
            )
        pop = batch.pop_size
        job_axis = np.arange(batch.num_jobs)[None, :]
        latency_of_job = table.latency_cycles[job_axis, batch.selection]
        bw_of_job = table.required_bw_gbps[job_axis, batch.selection]
        bad = (latency_of_job <= 0) | (bw_of_job <= 0)
        if np.any(bad):
            first_row, first_job = np.argwhere(bad)[0]
            raise SchedulingError(
                f"job {first_job} has non-positive latency/bandwidth on core "
                f"{batch.selection[first_row, first_job]}"
            )

        num_jobs = batch.num_jobs
        # The execution order per (row, core) is static — only the launch
        # *times* are dynamic — so the work every launch installs is
        # precomputable per job: latency * bw, the exact multiplication the
        # scalar launch performs.  The event loop then never touches the
        # analysis table again: a launch is a handful of flat gathers into
        # these (pop, jobs) tables and the queue array, addressed through
        # base-offset arrays that survive row compaction (the big per-job
        # tables are never copied — only the small (rows, cores) offsets).
        work_of_job = latency_of_job * bw_of_job
        queues = batch.queues
        rows_2d = np.arange(pop, dtype=np.intp)[:, None]
        cores_2d = np.arange(num_cores, dtype=np.intp)[None, :]
        #: Flat offset of lane (row, core)'s queue in ``queues.ravel()``.
        lane_base = (rows_2d * num_cores + cores_2d) * num_jobs
        #: Flat offset of row's job table in ``work_of_job.ravel()``.
        job_base = rows_2d * num_jobs + np.zeros_like(cores_2d)

        # Per-(row, core) live-lane state.  Queue cursors are int32: positions
        # fit comfortably, and halving the index bytes trims the flat gathers.
        queue_pos = np.zeros((pop, num_cores), dtype=np.int32)
        remaining_work = np.zeros((pop, num_cores))
        required_bw = np.zeros((pop, num_cores))
        active = np.zeros((pop, num_cores), dtype=bool)
        queue_len = batch.queue_lengths.astype(np.int32)
        now = np.zeros(pop)
        #: Compacted-row -> original-row map (identity until rows retire).
        row_index = np.arange(pop, dtype=np.intp)
        makespans = np.zeros(pop)

        self._launch_lanes(
            np.arange(pop * num_cores, dtype=np.intp),
            queues, queue_pos, queue_len, lane_base, job_base,
            work_of_job, bw_of_job, remaining_work, required_bw, active,
        )
        live = active.any(axis=1)

        # Preallocated per-iteration buffers: the event loop runs O(G)
        # iterations whose cost is dominated by per-op overhead on small
        # arrays, so every step below is an in-place ufunc (identical values,
        # no reallocation) over [:n] views of these full-size buffers — which
        # is also what lets the distributed backends' shards scale.  The
        # errstate guard is hoisted for the same reason.
        total_demand = np.empty(pop)
        scale = np.empty(pop)
        dt = np.empty(pop)
        threshold = np.empty(pop)
        over = np.empty(pop, dtype=bool)
        not_live = np.empty(pop, dtype=bool)
        allocation = np.empty((pop, num_cores))
        runtimes = np.empty((pop, num_cores))
        step_work = np.empty((pop, num_cores))
        finished = np.empty((pop, num_cores), dtype=bool)
        inactive = np.empty((pop, num_cores), dtype=bool)

        n = pop  # rows still carried by the (compacted) state arrays
        with np.errstate(divide="ignore", invalid="ignore"):
            while n:
                num_live = int(np.count_nonzero(live))
                if num_live == 0:
                    break
                if 2 * num_live <= n and n - num_live >= _COMPACTION_MIN_ROWS:
                    # Active-row compaction: converged rows' state never
                    # changes again, yet every masked step below still pays
                    # for them.  Scatter their final times into the output
                    # and shrink every state array to the live rows — each
                    # row's trajectory is independent (every op is
                    # elementwise per row), so dropping finished rows cannot
                    # perturb the survivors' bits.
                    retired = np.flatnonzero(~live)
                    makespans[row_index[retired]] = now[retired]
                    keep = np.flatnonzero(live)
                    n = len(keep)
                    row_index = row_index[keep]
                    queue_pos = queue_pos[keep]
                    queue_len = queue_len[keep]
                    lane_base = lane_base[keep]
                    job_base = job_base[keep]
                    remaining_work = remaining_work[keep]
                    required_bw = required_bw[keep]
                    active = active[keep]
                    now = now[keep]
                    live = live[keep]

                demand = total_demand[:n]
                ratio = scale[:n]
                step = dt[:n]
                thresh = threshold[:n]
                capped = over[:n]
                dead = not_live[:n]
                alloc = allocation[:n]
                runtime = runtimes[:n]
                work = step_work[:n]
                done = finished[:n]
                idle = inactive[:n]

                # Column-by-column accumulation mirrors the scalar allocator's
                # sequential per-core demand sum bit for bit (idle slots hold 0.0).
                demand[:] = required_bw[:, 0]
                for core in range(1, num_cores):
                    np.add(demand, required_bw[:, core], out=demand)
                np.greater(demand, self.system_bandwidth_gbps, out=capped)
                ratio.fill(1.0)
                np.divide(self.system_bandwidth_gbps, demand, out=ratio, where=capped)
                # Rows under budget keep ratio == 1.0, and IEEE-754 guarantees
                # x * 1.0 returns x's bits exactly, so one unconditional
                # multiply replaces the old np.where copy bit for bit.
                np.multiply(required_bw, ratio[:, None], out=alloc)

                np.maximum(alloc, _EPSILON, out=work)  # reuse step_work as the denominator
                np.divide(remaining_work, work, out=runtime)
                np.logical_not(active, out=idle)
                np.copyto(runtime, np.inf, where=idle)
                runtime.min(axis=1, out=step)
                np.logical_not(live, out=dead)
                np.copyto(step, 0.0, where=dead)
                # Live steps are quotients of clamped non-negative numerators
                # and >= _EPSILON denominators, so they cannot be negative or
                # NaN — only +inf (an all-idle "active" row) is possible, and
                # one summed finiteness probe catches it.  The probe also
                # guarantees termination: an infinite step would otherwise
                # poison remaining_work and spin this loop forever.
                if not np.isfinite(float(step.sum())):
                    raise SchedulingError("bandwidth allocation produced a non-finite time step")

                np.multiply(step, 1.0 + 1e-12, out=thresh)
                np.add(thresh, _EPSILON, out=thresh)
                np.less_equal(runtime, thresh[:, None], out=done)
                np.logical_and(done, active, out=done)

                np.multiply(alloc, step[:, None], out=work)
                np.subtract(remaining_work, work, out=remaining_work)
                np.maximum(remaining_work, 0.0, out=remaining_work)
                np.copyto(remaining_work, 0.0, where=done)
                np.add(now, step, out=now)

                lanes = np.flatnonzero(done)
                if lanes.size:
                    self._launch_lanes(
                        lanes, queues, queue_pos, queue_len, lane_base, job_base,
                        work_of_job, bw_of_job, remaining_work, required_bw, active,
                    )
                    np.any(active, axis=1, out=live)

        makespans[row_index] = now
        return makespans

    # ------------------------------------------------------------------
    @staticmethod
    def _launch_lanes(
        lanes: np.ndarray,
        queues: np.ndarray,
        queue_pos: np.ndarray,
        queue_len: np.ndarray,
        lane_base: np.ndarray,
        job_base: np.ndarray,
        work_of_job: np.ndarray,
        bw_of_job: np.ndarray,
        remaining_work: np.ndarray,
        required_bw: np.ndarray,
        active: np.ndarray,
    ) -> None:
        """Pop the next queued job (if any) on every flat ``(row, core)`` lane.

        *lanes* are flat indices into the (possibly compacted)
        ``(rows, cores)`` state arrays; ``lane_base``/``job_base`` map each
        lane back to its original row's flat offsets in ``queues`` and the
        per-job launch tables, so advancing a lane is a cursor bump plus
        three flat gathers — no 2-D fancy indexing, no table copies at
        compaction.  Lanes whose queue is exhausted go (and stay) inactive.
        """
        pos = queue_pos.ravel()[lanes]
        has_next = pos < queue_len.ravel()[lanes]
        active.ravel()[lanes] = has_next

        idle = lanes[~has_next]
        remaining_work.ravel()[idle] = 0.0
        required_bw.ravel()[idle] = 0.0

        run = lanes[has_next]
        run_pos = pos[has_next]
        queue_pos.ravel()[run] = run_pos + 1
        jobs = queues.ravel()[lane_base.ravel()[run] + run_pos]
        offsets = job_base.ravel()[run] + jobs
        remaining_work.ravel()[run] = work_of_job.ravel()[offsets]
        required_bw.ravel()[run] = bw_of_job.ravel()[offsets]
