"""Bandwidth allocator — Algorithm 1 of the paper.

The shared system bandwidth is a global resource.  Splitting it evenly across
cores wastes it (a core running a compute-bound job does not need its even
share, while a core running a memory-bound job starves).  Algorithm 1 instead
re-allocates the bandwidth proportionally to the *required* bandwidth of the
jobs currently live on each core, re-computing the split every time a job
finishes and the next job on that core launches.

The allocator consumes the decoded mapping description plus the Job Analysis
Table and produces either just the makespan (fast path used inside the
optimization loop) or a full :class:`~repro.core.schedule.Schedule` with the
job timeline and bandwidth segments (used for reporting and Fig. 15).

Two allocators implement the same simulation:

* :class:`BandwidthAllocator` — the scalar reference oracle, one mapping at a
  time, able to record the full timeline, and
* :class:`BatchBandwidthAllocator` — the vectorized engine behind the
  ``batch`` evaluation backend: it stacks the per-core live-job state of a
  whole population (``(pop, cores)`` arrays) so each iteration of the event
  loop advances *every* individual at once.  Its makespans are bit-identical
  to the scalar path; both share the same explicitly-sequential bandwidth
  demand summation so floating-point rounding cannot diverge between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.analyzer import JobAnalysisTable
from repro.core.encoding import Mapping, MappingBatch
from repro.core.schedule import BandwidthSegment, Schedule, ScheduledJob
from repro.exceptions import SchedulingError
from repro.utils.units import DEFAULT_FREQUENCY_HZ

#: Numerical tolerance when deciding that a job's remaining work is finished.
_EPSILON = 1e-9


@dataclass(frozen=True)
class ScheduleEvent:
    """One re-allocation event: a job finished and bandwidth was re-split."""

    time_cycles: float
    finished_job_index: int
    sub_accelerator_index: int


class BandwidthAllocator:
    """Implements the proportional bandwidth re-allocation of Algorithm 1."""

    def __init__(self, system_bandwidth_gbps: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ):
        if system_bandwidth_gbps <= 0:
            raise SchedulingError(
                f"system bandwidth must be positive, got {system_bandwidth_gbps}"
            )
        if frequency_hz <= 0:
            raise SchedulingError(f"frequency must be positive, got {frequency_hz}")
        self.system_bandwidth_gbps = system_bandwidth_gbps
        self.frequency_hz = frequency_hz

    # ------------------------------------------------------------------
    def makespan_cycles(self, mapping: Mapping, table: JobAnalysisTable) -> float:
        """Fast path: simulate the schedule and return only the makespan."""
        return self._simulate(mapping, table, record=False)[0]

    def allocate(self, mapping: Mapping, table: JobAnalysisTable) -> Schedule:
        """Full path: simulate the schedule and return the complete timeline."""
        makespan, jobs, segments = self._simulate(mapping, table, record=True)
        return Schedule(
            jobs=jobs,
            segments=segments,
            num_sub_accelerators=mapping.num_sub_accelerators,
            total_flops=table.total_flops,
            frequency_hz=self.frequency_hz,
        )

    # ------------------------------------------------------------------
    def _simulate(
        self,
        mapping: Mapping,
        table: JobAnalysisTable,
        record: bool,
    ) -> Tuple[float, List[ScheduledJob], List[BandwidthSegment]]:
        """Event-driven simulation of Algorithm 1.

        Each core executes its assigned jobs in order.  At every event (a job
        completion) the system bandwidth is re-split proportionally to the
        live jobs' required bandwidth, capped so no job receives more than it
        needs when the total demand is below the system budget.
        """
        if mapping.num_jobs != table.num_jobs:
            raise SchedulingError(
                f"mapping covers {mapping.num_jobs} jobs but the analysis table has {table.num_jobs}"
            )
        num_cores = mapping.num_sub_accelerators
        if num_cores > table.num_sub_accelerators:
            raise SchedulingError(
                f"mapping targets {num_cores} cores but the analysis table only has "
                f"{table.num_sub_accelerators}"
            )

        queues: List[List[int]] = [list(core_jobs) for core_jobs in mapping.assignments]
        queue_pos = [0] * num_cores

        # Per-core live-job state.
        current_job = np.full(num_cores, -1, dtype=int)
        remaining_work = np.zeros(num_cores)  # latency_cycles * required_bw
        required_bw = np.zeros(num_cores)
        job_start = np.zeros(num_cores)

        scheduled_jobs: List[ScheduledJob] = []
        segments: List[BandwidthSegment] = []

        def launch_next(core: int, now: float) -> None:
            """Pop the next job of *core*'s queue (if any) and make it live."""
            if queue_pos[core] < len(queues[core]):
                job_index = queues[core][queue_pos[core]]
                queue_pos[core] += 1
                latency = table.latency_cycles[job_index, core]
                bw = table.required_bw_gbps[job_index, core]
                if latency <= 0 or bw <= 0:
                    raise SchedulingError(
                        f"job {job_index} has non-positive latency/bandwidth on core {core}"
                    )
                current_job[core] = job_index
                remaining_work[core] = latency * bw
                required_bw[core] = bw
                job_start[core] = now
            else:
                current_job[core] = -1
                remaining_work[core] = 0.0
                required_bw[core] = 0.0

        now = 0.0
        for core in range(num_cores):
            launch_next(core, now)

        active = current_job >= 0
        while np.any(active):
            # Sum the demand core-by-core in index order (idle cores hold an
            # exact 0.0, which leaves a sequential float sum unchanged).  The
            # batched allocator accumulates its per-row demand column-by-column
            # in the same order, so both paths round identically even on
            # platforms with 8+ cores where NumPy's pairwise sum would differ.
            total_demand = 0.0
            for bw_value in required_bw:
                total_demand += float(bw_value)
            allocation = np.zeros(num_cores)
            if total_demand <= self.system_bandwidth_gbps:
                allocation[active] = required_bw[active]
            else:
                allocation[active] = required_bw[active] * (self.system_bandwidth_gbps / total_demand)

            with np.errstate(divide="ignore", invalid="ignore"):
                runtimes = np.where(active, remaining_work / np.maximum(allocation, _EPSILON), np.inf)
            dt = float(runtimes.min())
            if not np.isfinite(dt) or dt < 0:
                raise SchedulingError("bandwidth allocation produced a non-finite time step")

            if record:
                segments.append(
                    BandwidthSegment(
                        start_cycle=now,
                        end_cycle=now + dt,
                        allocation_gbps=tuple(float(a) for a in allocation),
                    )
                )

            # Cores whose runtime equals the step finish now; computing this from
            # the runtimes (rather than the drained remaining work) guarantees
            # at least one job completes per event even under floating-point
            # rounding, so the loop always terminates.
            finished = active & (runtimes <= dt * (1.0 + 1e-12) + _EPSILON)

            # Advance time and drain work proportionally to each core's allocation.
            remaining_work[active] -= dt * allocation[active]
            # Floating-point rounding can drive a non-finished core's residual
            # slightly negative, which would yield a negative runtime (and a
            # spurious SchedulingError) on the next event; clamp at zero.
            np.maximum(remaining_work, 0.0, out=remaining_work)
            remaining_work[finished] = 0.0
            now += dt
            for core in np.flatnonzero(finished):
                job_index = int(current_job[core])
                if record:
                    scheduled_jobs.append(
                        ScheduledJob(
                            job_index=job_index,
                            sub_accelerator_index=int(core),
                            start_cycle=float(job_start[core]),
                            end_cycle=float(now),
                            no_stall_latency_cycles=float(table.latency_cycles[job_index, core]),
                            required_bw_gbps=float(table.required_bw_gbps[job_index, core]),
                        )
                    )
                launch_next(int(core), now)
            active = current_job >= 0

        return now, scheduled_jobs, segments


class BatchBandwidthAllocator:
    """Vectorized Algorithm 1 over a whole population of mappings.

    State arrays are shaped ``(pop, cores)``; each iteration of the event
    loop advances every still-running individual by its own next event.
    Individuals finish after different event counts — completed rows are
    masked (their time step is forced to zero) until the whole batch drains.

    Every floating-point operation mirrors the scalar
    :class:`BandwidthAllocator` element-wise, so the returned makespans are
    bit-identical to running the scalar simulation per individual.
    """

    def __init__(self, system_bandwidth_gbps: float, frequency_hz: float = DEFAULT_FREQUENCY_HZ):
        if system_bandwidth_gbps <= 0:
            raise SchedulingError(
                f"system bandwidth must be positive, got {system_bandwidth_gbps}"
            )
        if frequency_hz <= 0:
            raise SchedulingError(f"frequency must be positive, got {frequency_hz}")
        self.system_bandwidth_gbps = system_bandwidth_gbps
        self.frequency_hz = frequency_hz

    # ------------------------------------------------------------------
    def makespan_cycles(self, batch: MappingBatch, table: JobAnalysisTable) -> np.ndarray:
        """Simulate every mapping of *batch* and return a ``(pop,)`` makespan array."""
        if batch.num_jobs != table.num_jobs:
            raise SchedulingError(
                f"mapping covers {batch.num_jobs} jobs but the analysis table has {table.num_jobs}"
            )
        num_cores = batch.num_sub_accelerators
        if num_cores > table.num_sub_accelerators:
            raise SchedulingError(
                f"mapping targets {num_cores} cores but the analysis table only has "
                f"{table.num_sub_accelerators}"
            )
        pop = batch.pop_size
        job_axis = np.arange(batch.num_jobs)[None, :]
        latency_of_job = table.latency_cycles[job_axis, batch.selection]
        bw_of_job = table.required_bw_gbps[job_axis, batch.selection]
        bad = (latency_of_job <= 0) | (bw_of_job <= 0)
        if np.any(bad):
            first_row, first_job = np.argwhere(bad)[0]
            raise SchedulingError(
                f"job {first_job} has non-positive latency/bandwidth on core "
                f"{batch.selection[first_row, first_job]}"
            )

        queue_pos = np.zeros((pop, num_cores), dtype=int)
        current_job = np.full((pop, num_cores), -1, dtype=int)
        remaining_work = np.zeros((pop, num_cores))
        required_bw = np.zeros((pop, num_cores))
        now = np.zeros(pop)

        self._launch(batch, table, queue_pos, current_job, remaining_work, required_bw,
                     np.ones((pop, num_cores), dtype=bool))
        active = current_job >= 0
        live = active.any(axis=1)

        # Reused per-iteration buffers: the event loop runs O(G) iterations
        # whose cost is dominated by per-op overhead on small arrays, so
        # in-place arithmetic (identical values, no reallocation) measurably
        # shortens the sweep — which is also what lets the parallel backend's
        # shards scale.  The errstate guard is hoisted for the same reason.
        total_demand = np.zeros(pop)
        scale = np.empty(pop)
        step_work = np.empty((pop, num_cores))

        with np.errstate(divide="ignore", invalid="ignore"):
            while np.any(live):
                # Column-by-column accumulation mirrors the scalar allocator's
                # sequential per-core demand sum bit for bit (idle slots hold 0.0).
                total_demand[:] = required_bw[:, 0]
                for core in range(1, num_cores):
                    np.add(total_demand, required_bw[:, core], out=total_demand)
                over = total_demand > self.system_bandwidth_gbps
                scale.fill(1.0)
                np.divide(self.system_bandwidth_gbps, total_demand, out=scale, where=over)
                allocation = np.where(over[:, None], required_bw * scale[:, None], required_bw)

                runtimes = np.where(
                    active, remaining_work / np.maximum(allocation, _EPSILON), np.inf
                )
                dt_rows = runtimes.min(axis=1)
                if np.any(live & (~np.isfinite(dt_rows) | (dt_rows < 0))):
                    raise SchedulingError("bandwidth allocation produced a non-finite time step")
                dt = np.where(live, dt_rows, 0.0)

                finished = active & (runtimes <= dt[:, None] * (1.0 + 1e-12) + _EPSILON)
                np.multiply(allocation, dt[:, None], out=step_work)
                np.subtract(remaining_work, step_work, out=remaining_work)
                np.maximum(remaining_work, 0.0, out=remaining_work)
                remaining_work[finished] = 0.0
                now = now + dt

                self._launch(batch, table, queue_pos, current_job, remaining_work, required_bw,
                             finished)
                active = current_job >= 0
                live = active.any(axis=1)

        return now

    # ------------------------------------------------------------------
    @staticmethod
    def _launch(
        batch: MappingBatch,
        table: JobAnalysisTable,
        queue_pos: np.ndarray,
        current_job: np.ndarray,
        remaining_work: np.ndarray,
        required_bw: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        """Pop the next queued job (if any) on every ``(individual, core)`` in *mask*."""
        rows, cores = np.nonzero(mask)
        if rows.size == 0:
            return
        pos = queue_pos[rows, cores]
        has_next = pos < batch.queue_lengths[rows, cores]

        idle_rows, idle_cores = rows[~has_next], cores[~has_next]
        current_job[idle_rows, idle_cores] = -1
        remaining_work[idle_rows, idle_cores] = 0.0
        required_bw[idle_rows, idle_cores] = 0.0

        run_rows, run_cores, run_pos = rows[has_next], cores[has_next], pos[has_next]
        jobs = batch.queues[run_rows, run_cores, run_pos]
        queue_pos[run_rows, run_cores] = run_pos + 1
        latency = table.latency_cycles[jobs, run_cores]
        bandwidth = table.required_bw_gbps[jobs, run_cores]
        current_job[run_rows, run_cores] = jobs
        remaining_work[run_rows, run_cores] = latency * bandwidth
        required_bw[run_rows, run_cores] = bandwidth
