"""Job Analyzer and Job Analysis Table (Section IV-D2/D4 of the paper).

The Job Analyzer profiles every job of a group on every sub-accelerator with
the analytical cost model and stores the two scalars the scheduler needs —
*no-stall latency* and *no-stall (required) bandwidth* — in the Job Analysis
Table.  The table is computed once per (group, platform) pair and then acts
as a constant-time lookup inside the optimization loop, which is what makes
10K-sample searches cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator import AcceleratorPlatform, SubAcceleratorConfig
from repro.exceptions import SchedulingError
from repro.workloads.groups import JobGroup
from repro.workloads.jobs import Job
from repro.workloads.layers import LayerShape


def group_fingerprint(group: JobGroup) -> Tuple:
    """Hashable content key of a group: the analysis table depends only on the
    layer of each job, in job order."""
    return tuple(job.layer for job in group.jobs)


def platform_fingerprint(platform: AcceleratorPlatform) -> Tuple:
    """Hashable content key of a platform, for table caching.

    The table profiles layers per sub-accelerator, so it depends only on the
    sub-accelerator configurations — not on the platform's name or on the
    shared system bandwidth (the bandwidth is divided later, by the BW
    allocator).  Keying on the cores alone lets a bandwidth sweep over one
    setting share a single table.
    """
    return platform.sub_accelerators


class AnalysisTableCache:
    """A ``(platform fingerprint, group fingerprint) -> JobAnalysisTable`` cache.

    :class:`~repro.core.framework.M3E` keeps a private instance per explorer;
    the campaign engine passes one shared instance to every explorer it
    builds so a grid of search cells builds each table once per unique
    (group, platform) pair instead of once per cell.  ``hits`` / ``builds``
    counters make the reuse observable (and benchmarkable).
    """

    def __init__(self) -> None:
        self._tables: Dict[Tuple, JobAnalysisTable] = {}
        self.hits = 0
        self.builds = 0

    def __len__(self) -> int:
        return len(self._tables)

    def get_or_build(
        self, platform: AcceleratorPlatform, group: JobGroup, analyzer: Optional["JobAnalyzer"] = None
    ) -> JobAnalysisTable:
        """Return the cached table for (platform, group), building it on miss.

        ``analyzer`` supplies an existing :class:`JobAnalyzer` for the
        platform (so its per-layer memoisation is reused); when omitted a
        fresh analyzer is constructed for the build.
        """
        key = (platform_fingerprint(platform), group_fingerprint(group))
        table = self._tables.get(key)
        if table is None:
            self.builds += 1
            table = (analyzer or JobAnalyzer(platform)).analyze(group)
            self._tables[key] = table
        else:
            self.hits += 1
        return table


_SHARED_TABLE_CACHE: Optional[AnalysisTableCache] = None


def shared_table_cache() -> AnalysisTableCache:
    """The process-wide analysis-table cache used by the campaign engine."""
    global _SHARED_TABLE_CACHE
    if _SHARED_TABLE_CACHE is None:
        _SHARED_TABLE_CACHE = AnalysisTableCache()
    return _SHARED_TABLE_CACHE


@dataclass(frozen=True)
class JobProfile:
    """Profile of one job on one sub-accelerator."""

    job_index: int
    sub_accelerator_index: int
    no_stall_latency_cycles: float
    required_bw_gbps: float
    energy_joules: float
    dram_traffic_bytes: float


class JobAnalysisTable:
    """Dense lookup table: (job, sub-accelerator) -> latency / bandwidth / energy.

    Backed by NumPy arrays of shape ``(num_jobs, num_sub_accelerators)`` so the
    BW allocator and heuristics can vectorise their lookups.
    """

    def __init__(
        self,
        latency_cycles: np.ndarray,
        required_bw_gbps: np.ndarray,
        energy_joules: np.ndarray,
        dram_traffic_bytes: np.ndarray,
        job_flops: np.ndarray,
    ):
        shapes = {
            "latency_cycles": latency_cycles.shape,
            "required_bw_gbps": required_bw_gbps.shape,
            "energy_joules": energy_joules.shape,
            "dram_traffic_bytes": dram_traffic_bytes.shape,
        }
        first = latency_cycles.shape
        if any(shape != first for shape in shapes.values()):
            raise SchedulingError(f"analysis table arrays must share a shape, got {shapes}")
        if job_flops.shape != (first[0],):
            raise SchedulingError(
                f"job_flops must have shape ({first[0]},), got {job_flops.shape}"
            )
        self.latency_cycles = latency_cycles
        self.required_bw_gbps = required_bw_gbps
        self.energy_joules = energy_joules
        self.dram_traffic_bytes = dram_traffic_bytes
        self.job_flops = job_flops

    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        """Number of jobs covered by the table."""
        return self.latency_cycles.shape[0]

    @property
    def num_sub_accelerators(self) -> int:
        """Number of sub-accelerators covered by the table."""
        return self.latency_cycles.shape[1]

    @property
    def total_flops(self) -> float:
        """Total FLOPs across all jobs (numerator of the throughput objective)."""
        return float(self.job_flops.sum())

    def profile(self, job_index: int, sub_index: int) -> JobProfile:
        """Return the full profile of one (job, sub-accelerator) pair."""
        self._check_indices(job_index, sub_index)
        return JobProfile(
            job_index=job_index,
            sub_accelerator_index=sub_index,
            no_stall_latency_cycles=float(self.latency_cycles[job_index, sub_index]),
            required_bw_gbps=float(self.required_bw_gbps[job_index, sub_index]),
            energy_joules=float(self.energy_joules[job_index, sub_index]),
            dram_traffic_bytes=float(self.dram_traffic_bytes[job_index, sub_index]),
        )

    def latency(self, job_index: int, sub_index: int) -> float:
        """No-stall latency of one (job, sub-accelerator) pair, in cycles."""
        self._check_indices(job_index, sub_index)
        return float(self.latency_cycles[job_index, sub_index])

    def bandwidth(self, job_index: int, sub_index: int) -> float:
        """Required (no-stall) bandwidth of one pair, in GB/s."""
        self._check_indices(job_index, sub_index)
        return float(self.required_bw_gbps[job_index, sub_index])

    def best_sub_accelerator(self, job_index: int) -> int:
        """Core with the lowest no-stall latency for a job (Herald-style affinity)."""
        self._check_indices(job_index, 0)
        return int(np.argmin(self.latency_cycles[job_index]))

    def average_latency_per_core(self) -> np.ndarray:
        """Mean no-stall latency per core across all jobs (Fig. 13a-style)."""
        return self.latency_cycles.mean(axis=0)

    def average_bandwidth_per_core(self) -> np.ndarray:
        """Mean required bandwidth per core across all jobs (Fig. 13b-style)."""
        return self.required_bw_gbps.mean(axis=0)

    def _check_indices(self, job_index: int, sub_index: int) -> None:
        if not (0 <= job_index < self.num_jobs):
            raise SchedulingError(f"job index {job_index} out of range [0, {self.num_jobs})")
        if not (0 <= sub_index < self.num_sub_accelerators):
            raise SchedulingError(
                f"sub-accelerator index {sub_index} out of range [0, {self.num_sub_accelerators})"
            )


class JobAnalyzer:
    """Profiles jobs on sub-accelerators and builds :class:`JobAnalysisTable` objects.

    Cost-model evaluations are memoised on ``(layer, sub-accelerator config)``
    so workloads with repeated layer shapes (the common case in batched-job
    benchmarks) are analysed quickly.
    """

    def __init__(self, platform: AcceleratorPlatform):
        self.platform = platform
        self._cost_models = [sub.build_cost_model() for sub in platform.sub_accelerators]
        self._cache: Dict[Tuple[LayerShape, SubAcceleratorConfig], Tuple[float, float, float, float]] = {}

    # ------------------------------------------------------------------
    def profile_layer(self, layer: LayerShape, sub_index: int) -> Tuple[float, float, float, float]:
        """Profile one layer on one core: (latency, bw, energy, traffic)."""
        if not (0 <= sub_index < len(self._cost_models)):
            raise SchedulingError(
                f"sub-accelerator index {sub_index} out of range [0, {len(self._cost_models)})"
            )
        config = self.platform.sub_accelerators[sub_index]
        key = (layer, config)
        if key not in self._cache:
            estimate = self._cost_models[sub_index].evaluate(layer)
            self._cache[key] = (
                estimate.no_stall_latency_cycles,
                estimate.required_bw_gbps,
                estimate.energy_joules,
                estimate.dram_traffic_bytes,
            )
        return self._cache[key]

    def analyze(self, group: JobGroup | Sequence[Job]) -> JobAnalysisTable:
        """Build the Job Analysis Table for a group of jobs on this platform."""
        jobs: Sequence[Job] = group.jobs if isinstance(group, JobGroup) else tuple(group)
        if not jobs:
            raise SchedulingError("cannot analyze an empty job group")
        num_jobs = len(jobs)
        num_subs = self.platform.num_sub_accelerators
        latency = np.zeros((num_jobs, num_subs))
        bandwidth = np.zeros((num_jobs, num_subs))
        energy = np.zeros((num_jobs, num_subs))
        traffic = np.zeros((num_jobs, num_subs))
        flops = np.zeros(num_jobs)
        for j, job in enumerate(jobs):
            flops[j] = job.flops
            for a in range(num_subs):
                lat, bw, en, tr = self.profile_layer(job.layer, a)
                latency[j, a] = lat
                bandwidth[j, a] = bw
                energy[j, a] = en
                traffic[j, a] = tr
        return JobAnalysisTable(
            latency_cycles=latency,
            required_bw_gbps=bandwidth,
            energy_joules=energy,
            dram_traffic_bytes=traffic,
            job_flops=flops,
        )
