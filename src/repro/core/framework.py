"""The M3E search driver.

:class:`M3E` glues the pieces of Fig. 3 together: the Job Analyzer prepares
the Job Analysis Table, the chosen optimization algorithm proposes encoded
mappings, the decoder + BW allocator + fitness function evaluate them, and
the loop continues until the sampling budget is exhausted (or the optimizer
converges).  The result carries the best mapping, its schedule, and the
convergence history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.accelerator import AcceleratorPlatform
from repro.core.analyzer import AnalysisTableCache, JobAnalysisTable, JobAnalyzer
from repro.core.encoding import Mapping
from repro.core.evalconfig import EvalConfig, resolve_eval_config
from repro.core.evaluator import MappingEvaluator
from repro.core.objectives import Objective
from repro.core.schedule import Schedule
from repro.exceptions import OptimizationError
from repro.obs import FlightRecorder, get_tracer
from repro.obs.flight import null_phase
from repro.utils.rng import SeedLike
from repro.workloads.groups import JobGroup

#: Sampling budget used throughout the paper's evaluation (Section VI-B).
DEFAULT_SAMPLING_BUDGET = 10_000


def _population_size_of(algorithm: Any) -> int:
    """How many warm-start seeds an algorithm can absorb.

    GA-family optimizers keep the size either on the instance (stdGA, DE,
    PSO) or on their config dataclass (MAGMA, CMA-ES, TBPSA); point methods
    take a single seed encoding.
    """
    size = getattr(algorithm, "population_size", None)
    if size is None:
        size = getattr(getattr(algorithm, "config", None), "population_size", None)
    return int(size) if size else 1


@dataclass
class SearchResult:
    """Outcome of one mapping search.

    Attributes
    ----------
    best_encoding:
        The best encoded mapping found.
    best_mapping:
        Its decoded form (per-core ordered job lists).
    best_fitness:
        Fitness of the best mapping (higher is better).
    objective_value:
        The objective in natural units (GFLOP/s for throughput).
    samples_used:
        Number of fitness evaluations consumed.
    history:
        Best-so-far fitness after each evaluation (convergence curve).
    schedule:
        Full schedule (timeline + bandwidth segments) of the best mapping.
    optimizer_name:
        Name of the algorithm that produced the result.
    metadata:
        Optimizer-specific extras (e.g. final population, RL training stats).
    """

    best_encoding: np.ndarray
    best_mapping: Mapping
    best_fitness: float
    objective_value: float
    samples_used: int
    history: List[float]
    schedule: Schedule
    optimizer_name: str
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: Flight-recorder block (wall/cpu per phase, eval + cache counts) —
    #: attached only when tracing is enabled, and deliberately *not* part of
    #: ``metadata``: metadata is durable/fingerprintable, telemetry is
    #: diagnostic and excluded from every store and fingerprint
    #: (docs/OBSERVABILITY.md).
    telemetry: Optional[Dict[str, Any]] = field(default=None, compare=False)

    @property
    def throughput_gflops(self) -> float:
        """Throughput of the best schedule in GFLOP/s (the paper's main metric)."""
        return self.schedule.throughput_gflops


class M3E:
    """Multi-workload Multi-accelerator Mapping Explorer.

    Parameters
    ----------
    platform:
        The multi-core accelerator to map onto.
    objective:
        Objective name or instance (default ``"throughput"``).
    sampling_budget:
        Number of fitness evaluations each search may use (paper: 10K).
    eval_config:
        The evaluation-engine configuration
        (:class:`~repro.core.evalconfig.EvalConfig`): backend, local worker
        count, remote fleet, token — one validated object handed to every
        evaluator this explorer builds.
    eval_backend / eval_workers / eval_hosts / rpc_token:
        Deprecated spelling of ``eval_config`` (one keyword per field).
        They build the identical config — results stay bit-identical — but
        emit :class:`DeprecationWarning`; they cannot be mixed with
        ``eval_config``.
    table_cache:
        Job-analysis-table cache to consult before building a table.  By
        default every explorer gets a private cache; the campaign engine
        passes one shared :class:`~repro.core.analyzer.AnalysisTableCache`
        to every explorer it builds so equal (group, platform) cells reuse
        one table process-wide.
    warm_store:
        Optional warm-start provider (Section V-C made persistent).  Any
        object with ``warm_population(group, codec, objective, count, rng)``
        returning seed encodings (or ``None``) and ``observe(group, encoding,
        codec, fitness, objective)`` fits; the reference implementation is
        :class:`~repro.service.warmlib.WarmStartLibrary`.  When set, every
        search without explicit ``initial_encodings`` is seeded from the best
        remembered same-task solution, and every finished search reports its
        winner back.  ``None`` (the default) keeps searches bit-identical to
        the historical cold-start behaviour.
    """

    def __init__(
        self,
        platform: AcceleratorPlatform,
        objective: Objective | str = "throughput",
        sampling_budget: int = DEFAULT_SAMPLING_BUDGET,
        eval_backend: Optional[str] = None,
        eval_workers: Optional[int] = None,
        eval_hosts: "str | Sequence[str] | None" = None,
        rpc_token: Optional[str] = None,
        table_cache: Optional[AnalysisTableCache] = None,
        warm_store: Optional[Any] = None,
        eval_config: Optional[EvalConfig] = None,
    ):
        if sampling_budget <= 0:
            raise OptimizationError(f"sampling_budget must be positive, got {sampling_budget}")
        # All backend/worker/host validation lives in EvalConfig; the legacy
        # kwargs build the identical config (and warn) via the shared shim.
        self.eval_config = resolve_eval_config(
            eval_config,
            where="M3E",
            eval_backend=eval_backend,
            eval_workers=eval_workers,
            eval_hosts=eval_hosts,
            rpc_token=rpc_token,
        )
        self.platform = platform
        self.objective = objective
        self.sampling_budget = sampling_budget
        self.warm_store = warm_store
        self._analyzer = JobAnalyzer(platform)
        self._table_cache = table_cache if table_cache is not None else AnalysisTableCache()

    # Read-only views of the evaluation configuration, kept for the callers
    # (service healthz, tests, user code) that grew up on the old kwargs.
    @property
    def eval_backend(self) -> str:
        return self.eval_config.backend

    @property
    def eval_workers(self) -> Optional[int]:
        return self.eval_config.workers

    @property
    def eval_hosts(self) -> "Sequence[str] | None":
        return self.eval_config.hosts

    @property
    def rpc_token(self) -> Optional[str]:
        return self.eval_config.rpc_token

    # ------------------------------------------------------------------
    def analyze(self, group: JobGroup) -> JobAnalysisTable:
        """Build (and cache) the Job Analysis Table for a group.

        The cache is keyed by content fingerprints of the platform and the
        group (its layer shapes, in order) rather than ``id(group)``: an
        ``id`` can be reused by a new group once the old one is garbage
        collected, which would silently return the wrong table.  Content
        keying also lets two equal-content groups — possibly analysed by two
        different explorers sharing one cache — reuse one table.
        """
        return self._table_cache.get_or_build(self.platform, group, self._analyzer)

    def build_evaluator(
        self,
        group: JobGroup,
        sampling_budget: Optional[int] = None,
        resolved_seed: Optional[int] = None,
    ) -> MappingEvaluator:
        """Construct the fitness evaluator for a group (pre-processing step).

        ``resolved_seed`` is the search's concrete seed (when known): the
        parallel/rpc backends carry it into their worker bootstraps so
        workers never re-derive their own.
        """
        return MappingEvaluator(
            group=group,
            platform=self.platform,
            objective=self.objective,
            analysis_table=self.analyze(group),
            sampling_budget=sampling_budget if sampling_budget is not None else self.sampling_budget,
            eval_config=self.eval_config,
            resolved_seed=resolved_seed,
        )

    # ------------------------------------------------------------------
    def search(
        self,
        group: JobGroup,
        optimizer: Any = "magma",
        seed: SeedLike = None,
        sampling_budget: Optional[int] = None,
        optimizer_options: Optional[Dict[str, Any]] = None,
        initial_encodings: Optional[np.ndarray] = None,
    ) -> SearchResult:
        """Run one mapping search and return the best mapping found.

        ``optimizer`` may be a registered algorithm name (see
        :func:`repro.optimizers.list_optimizers`) or an already-constructed
        optimizer instance.  ``initial_encodings`` seeds the initial
        population — this is how the warm-start engine injects previous
        solutions (Section V-C).
        """
        # Imported lazily to avoid a circular dependency: the optimizers
        # package builds on the core evaluator defined here.
        from repro.optimizers import build_optimizer
        from repro.optimizers.base import BaseOptimizer

        # The algorithm is built first so its governing seed policy is known
        # before the evaluator exists: the parallel/rpc backends thread the
        # resolved seed into their worker bootstraps.
        if isinstance(optimizer, BaseOptimizer):
            algorithm = optimizer
            if seed is not None:
                algorithm.reseed(seed)
        else:
            algorithm = build_optimizer(optimizer, seed=seed, **(optimizer_options or {}))
        seed_policy = getattr(algorithm, "seed_policy", None)
        resolved_seed = seed_policy.resolved_seed if seed_policy is not None else None

        # Telemetry observes, never steers: the tracer/recorder touch no RNG
        # and feed no fingerprint, so a traced search is bit-identical to an
        # untraced one (asserted per backend by the tier-1 property tests).
        tracer = get_tracer()
        recorder = FlightRecorder() if tracer.enabled else None

        def phase(name: str) -> Any:
            return recorder.phase(name) if recorder is not None else null_phase()

        with tracer.span(
            "m3e.search",
            optimizer=algorithm.name,
            backend=self.eval_backend,
            group_size=group.size,
            seed=resolved_seed,
        ):
            with phase("analyze"):
                evaluator = self.build_evaluator(group, sampling_budget, resolved_seed=resolved_seed)

            with phase("warm_start"):
                if initial_encodings is None and self.warm_store is not None:
                    # Perturbations of the extra warm seeds must be
                    # reproducible: with no explicit seed (e.g. campaign cells
                    # hand over a pre-seeded optimizer instance), draw from the
                    # algorithm's own deterministic stream instead of fresh OS
                    # entropy.
                    warm_rng = seed if seed is not None else getattr(algorithm, "rng", None)
                    initial_encodings = self.warm_store.warm_population(
                        group,
                        evaluator.codec,
                        objective=evaluator.objective.name,
                        count=_population_size_of(algorithm),
                        rng=warm_rng,
                    )

            try:
                with phase("optimize"):
                    best_encoding = algorithm.optimize(evaluator, initial_encodings=initial_encodings)
                    if best_encoding is None:
                        if evaluator.best_encoding is None:
                            raise OptimizationError(
                                f"optimizer {algorithm.name!r} returned no solution and evaluated no samples"
                            )
                        best_encoding = evaluator.best_encoding

                with phase("finalize"):
                    detail = evaluator.detailed_evaluation(best_encoding)
                    schedule = evaluator.schedule_for(best_encoding)
            finally:
                # The parallel backend's worker pool persists across
                # generations; release it once the search is over (no-op for
                # other backends).
                evaluator.close()
            if self.warm_store is not None:
                with phase("finalize"):
                    self.warm_store.observe(
                        group,
                        best_encoding,
                        evaluator.codec,
                        detail.fitness,
                        objective=evaluator.objective.name,
                    )

        telemetry: Optional[Dict[str, Any]] = None
        if recorder is not None:
            recorder.count(f"evals_{self.eval_backend}", float(evaluator.samples_used))
            recorder.count("generations", float(evaluator.generations))
            recorder.count("memo_hits", float(evaluator.memo_hits))
            recorder.count("memo_misses", float(evaluator.memo_misses))
            telemetry = recorder.to_dict()
            telemetry["backend"] = self.eval_backend
        metadata = dict(algorithm.metadata)
        if seed_policy is not None:
            # Record the seed that governed this search so replays (service,
            # campaign store, figure post-hooks) know their provenance.
            metadata.setdefault("resolved_seed", resolved_seed)
            metadata.setdefault("seed_source", seed_policy.source)
        return SearchResult(
            best_encoding=np.asarray(best_encoding, dtype=float),
            best_mapping=detail.mapping,
            best_fitness=detail.fitness,
            objective_value=detail.objective_value,
            samples_used=evaluator.samples_used,
            history=evaluator.history,
            schedule=schedule,
            optimizer_name=algorithm.name,
            metadata=metadata,
            telemetry=telemetry,
        )

    def compare(
        self,
        group: JobGroup,
        optimizers: List[Any],
        seed: SeedLike = None,
        sampling_budget: Optional[int] = None,
    ) -> Dict[str, SearchResult]:
        """Run several optimizers on the same group with independent RNG streams.

        This is the building block behind the per-figure experiments: every
        algorithm receives the same group, platform, objective, and sampling
        budget, exactly as in Section VI-B.
        """
        from repro.utils.rng import spawn_rngs
        from repro.utils.tables import unique_key

        rngs = spawn_rngs(seed, len(optimizers))
        results: Dict[str, SearchResult] = {}
        for algorithm, rng in zip(optimizers, rngs):
            result = self.search(group, optimizer=algorithm, seed=rng, sampling_budget=sampling_budget)
            # Two optimizers may share a display name (e.g. two MAGMA
            # instances with different configs); suffix instead of silently
            # overwriting the earlier result.
            results[unique_key(result.optimizer_name, results)] = result
        return results
