"""Decoded schedule produced by the bandwidth allocator.

A :class:`Schedule` is the concrete execution plan for one group on one
platform: which job ran on which core, when it started and finished, and how
the shared system bandwidth was split over time.  It is both the object the
fitness function scores and the data behind the paper's schedule
visualisations (Fig. 4(b) and Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import SchedulingError
from repro.utils.units import DEFAULT_FREQUENCY_HZ


@dataclass(frozen=True)
class ScheduledJob:
    """Execution record of one job in a schedule.

    Times are in accelerator cycles, measured from the start of the group.
    """

    job_index: int
    sub_accelerator_index: int
    start_cycle: float
    end_cycle: float
    no_stall_latency_cycles: float
    required_bw_gbps: float

    def __post_init__(self) -> None:
        if self.end_cycle < self.start_cycle:
            raise SchedulingError(
                f"job {self.job_index} ends ({self.end_cycle}) before it starts ({self.start_cycle})"
            )

    @property
    def duration_cycles(self) -> float:
        """Actual execution duration, including any memory stalls."""
        return self.end_cycle - self.start_cycle

    @property
    def slowdown(self) -> float:
        """Ratio of actual duration to no-stall latency (1.0 = never stalled)."""
        if self.no_stall_latency_cycles <= 0:
            return 1.0
        return self.duration_cycles / self.no_stall_latency_cycles


@dataclass(frozen=True)
class BandwidthSegment:
    """Bandwidth split across cores during one time window of the schedule."""

    start_cycle: float
    end_cycle: float
    allocation_gbps: Tuple[float, ...]

    @property
    def duration_cycles(self) -> float:
        """Length of the window in cycles."""
        return self.end_cycle - self.start_cycle

    @property
    def total_allocated_gbps(self) -> float:
        """Sum of the per-core allocations during this window."""
        return float(sum(self.allocation_gbps))


class Schedule:
    """Full execution plan: per-job timing plus the bandwidth allocation timeline."""

    def __init__(
        self,
        jobs: Sequence[ScheduledJob],
        segments: Sequence[BandwidthSegment],
        num_sub_accelerators: int,
        total_flops: float,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
        makespan_cycles_override: Optional[float] = None,
    ):
        if num_sub_accelerators <= 0:
            raise SchedulingError("schedule needs at least one sub-accelerator")
        if total_flops < 0:
            raise SchedulingError("total_flops must be non-negative")
        if makespan_cycles_override is not None and makespan_cycles_override < 0:
            raise SchedulingError("makespan override must be non-negative")
        self.jobs: Tuple[ScheduledJob, ...] = tuple(jobs)
        self.segments: Tuple[BandwidthSegment, ...] = tuple(segments)
        self.num_sub_accelerators = num_sub_accelerators
        self.total_flops = total_flops
        self.frequency_hz = frequency_hz
        self._makespan_cycles_override = makespan_cycles_override

    # ------------------------------------------------------------------
    @property
    def makespan_cycles(self) -> float:
        """Finish time of the last job, in cycles.

        A summary schedule (built by the fast fitness path, which skips the
        per-job timeline) carries the makespan explicitly via the override.
        """
        if self._makespan_cycles_override is not None:
            return self._makespan_cycles_override
        if not self.jobs:
            return 0.0
        return max(job.end_cycle for job in self.jobs)

    @property
    def makespan_seconds(self) -> float:
        """Finish time of the last job, in seconds."""
        return self.makespan_cycles / self.frequency_hz

    @property
    def throughput_gflops(self) -> float:
        """Group throughput: total FLOPs divided by the makespan, in GFLOP/s."""
        seconds = self.makespan_seconds
        if seconds <= 0:
            return 0.0
        return self.total_flops / seconds / 1e9

    # ------------------------------------------------------------------
    def jobs_on_core(self, sub_index: int) -> List[ScheduledJob]:
        """Jobs executed on one core, ordered by start time."""
        core_jobs = [job for job in self.jobs if job.sub_accelerator_index == sub_index]
        return sorted(core_jobs, key=lambda job: job.start_cycle)

    def core_busy_cycles(self) -> List[float]:
        """Total busy cycles per core (used for load-balance reporting)."""
        busy = [0.0] * self.num_sub_accelerators
        for job in self.jobs:
            busy[job.sub_accelerator_index] += job.duration_cycles
        return busy

    def core_utilization(self) -> List[float]:
        """Fraction of the makespan each core spends executing jobs."""
        makespan = self.makespan_cycles
        if makespan <= 0:
            return [0.0] * self.num_sub_accelerators
        return [busy / makespan for busy in self.core_busy_cycles()]

    def average_slowdown(self) -> float:
        """Mean memory-stall slowdown across jobs (1.0 = fully compute-bound)."""
        if not self.jobs:
            return 1.0
        return sum(job.slowdown for job in self.jobs) / len(self.jobs)

    def bandwidth_timeline(self) -> List[Tuple[float, float, Tuple[float, ...]]]:
        """Return (start, end, per-core allocation) tuples, in cycle units.

        This is the data plotted as the BW-allocation chart of Fig. 15.
        """
        return [(seg.start_cycle, seg.end_cycle, seg.allocation_gbps) for seg in self.segments]

    def gantt_rows(self) -> Dict[int, List[Tuple[int, float, float]]]:
        """Return per-core rows of (job_index, start, end) for Gantt rendering."""
        rows: Dict[int, List[Tuple[int, float, float]]] = {
            core: [] for core in range(self.num_sub_accelerators)
        }
        for job in self.jobs:
            rows[job.sub_accelerator_index].append((job.job_index, job.start_cycle, job.end_cycle))
        for core in rows:
            rows[core].sort(key=lambda item: item[1])
        return rows

    def validate(self) -> None:
        """Check structural invariants: no overlapping jobs on one core.

        Raises :class:`SchedulingError` on violation.  Used by tests and the
        property-based suite.
        """
        for core in range(self.num_sub_accelerators):
            previous_end = 0.0
            for job_index, start, end in sorted(
                ((j.job_index, j.start_cycle, j.end_cycle) for j in self.jobs
                 if j.sub_accelerator_index == core),
                key=lambda item: item[1],
            ):
                if start < previous_end - 1e-6:
                    raise SchedulingError(
                        f"jobs overlap on core {core}: job {job_index} starts at {start} "
                        f"before previous job ends at {previous_end}"
                    )
                previous_end = max(previous_end, end)
