"""Mapping encoding scheme (Fig. 5(a) of the paper).

A mapping for a group of ``G`` jobs on ``A`` sub-accelerators is encoded as a
flat vector of length ``2 * G`` split into two genomes:

* the **sub-accelerator selection** genome — ``G`` integers in ``[0, A)``
  stating which core each job runs on, and
* the **job prioritizing** genome — ``G`` floats in ``[0, 1)`` whose ordering
  (0 = highest priority) determines the execution order of the jobs assigned
  to the same core.

:class:`MappingCodec` owns the encode/decode/validate/repair logic;
:class:`Mapping` is a decoded mapping description (per-core ordered job
lists), i.e. the "mapping description" consumed by the BW allocator.

The codec also offers a batched API — :meth:`MappingCodec.repair_batch` and
:meth:`MappingCodec.decode_batch` — that repairs/decodes a whole ``(pop, 2G)``
population in vectorized NumPy and yields a :class:`MappingBatch`, the dense
array form consumed by the batched bandwidth allocator
(:class:`~repro.core.bw_allocator.BatchBandwidthAllocator`).  The batch decode
is bit-identical to decoding each row with :meth:`MappingCodec.decode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import EncodingError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class Mapping:
    """Decoded mapping description: ordered job indices per sub-accelerator.

    ``assignments[a]`` is the execution order (list of job indices into the
    group) for sub-accelerator ``a``.  Every job index in ``range(num_jobs)``
    appears exactly once across all cores.
    """

    assignments: Tuple[Tuple[int, ...], ...]
    num_jobs: int

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for core_jobs in self.assignments:
            for job_index in core_jobs:
                if job_index < 0 or job_index >= self.num_jobs:
                    raise EncodingError(f"job index {job_index} out of range [0, {self.num_jobs})")
                if job_index in seen:
                    raise EncodingError(f"job index {job_index} assigned to more than one core")
                seen.add(job_index)
        if len(seen) != self.num_jobs:
            missing = sorted(set(range(self.num_jobs)) - seen)
            raise EncodingError(f"mapping does not cover all jobs; missing {missing[:10]}")

    @property
    def num_sub_accelerators(self) -> int:
        """Number of cores the mapping targets."""
        return len(self.assignments)

    def core_of(self, job_index: int) -> int:
        """Return the core a job is assigned to."""
        for core, core_jobs in enumerate(self.assignments):
            if job_index in core_jobs:
                return core
        raise EncodingError(f"job index {job_index} not present in mapping")

    def jobs_per_core(self) -> List[int]:
        """Number of jobs assigned to each core."""
        return [len(core_jobs) for core_jobs in self.assignments]

    def describe(self) -> str:
        """Short human-readable description of the assignment."""
        parts = [
            f"core{core}: [{', '.join(str(j) for j in core_jobs)}]"
            for core, core_jobs in enumerate(self.assignments)
        ]
        return "; ".join(parts)


@dataclass(frozen=True)
class MappingBatch:
    """Dense array form of a decoded population of mappings.

    ``queues[p, a, :queue_lengths[p, a]]`` is the execution order of the jobs
    individual ``p`` assigns to core ``a`` (remaining slots are padded with
    ``-1``), and ``selection[p, j]`` is the core job ``j`` runs on.  This is
    the representation the batched bandwidth allocator sweeps in one
    vectorized event loop.
    """

    selection: np.ndarray  # (pop, G) int
    queues: np.ndarray  # (pop, A, G) int, -1 padded
    queue_lengths: np.ndarray  # (pop, A) int
    num_jobs: int

    @property
    def pop_size(self) -> int:
        """Number of individuals in the batch."""
        return self.queues.shape[0]

    @property
    def num_sub_accelerators(self) -> int:
        """Number of cores each mapping targets."""
        return self.queues.shape[1]

    def mapping(self, index: int) -> Mapping:
        """Materialise one individual as a :class:`Mapping` description."""
        assignments = tuple(
            tuple(int(j) for j in self.queues[index, a, : self.queue_lengths[index, a]])
            for a in range(self.num_sub_accelerators)
        )
        return Mapping(assignments=assignments, num_jobs=self.num_jobs)


class MappingCodec:
    """Encode, decode, sample, and repair mapping vectors.

    Parameters
    ----------
    num_jobs:
        Group size ``G``.
    num_sub_accelerators:
        Number of cores ``A``.
    """

    def __init__(self, num_jobs: int, num_sub_accelerators: int):
        if num_jobs <= 0:
            raise EncodingError(f"num_jobs must be positive, got {num_jobs}")
        if num_sub_accelerators <= 0:
            raise EncodingError(f"num_sub_accelerators must be positive, got {num_sub_accelerators}")
        self.num_jobs = num_jobs
        self.num_sub_accelerators = num_sub_accelerators

    # ------------------------------------------------------------------
    @property
    def genome_length(self) -> int:
        """Length of one genome (equal to the group size)."""
        return self.num_jobs

    @property
    def encoding_length(self) -> int:
        """Total length of an encoded mapping (two genomes)."""
        return 2 * self.num_jobs

    def selection_genome(self, encoding: np.ndarray) -> np.ndarray:
        """View of the sub-accelerator selection genome."""
        return encoding[: self.num_jobs]

    def priority_genome(self, encoding: np.ndarray) -> np.ndarray:
        """View of the job prioritizing genome."""
        return encoding[self.num_jobs:]

    # ------------------------------------------------------------------
    def random_encoding(self, rng: SeedLike = None) -> np.ndarray:
        """Sample a uniformly random, valid encoded mapping."""
        generator = ensure_rng(rng)
        selection = generator.integers(0, self.num_sub_accelerators, size=self.num_jobs)
        priority = generator.random(self.num_jobs)
        return np.concatenate([selection.astype(float), priority])

    def random_population(self, size: int, rng: SeedLike = None) -> np.ndarray:
        """Sample *size* random encodings as a ``(size, 2G)`` array."""
        generator = ensure_rng(rng)
        return np.stack([self.random_encoding(generator) for _ in range(size)])

    # ------------------------------------------------------------------
    def validate(self, encoding: np.ndarray) -> None:
        """Raise :class:`EncodingError` if *encoding* has the wrong shape."""
        array = np.asarray(encoding, dtype=float)
        if array.ndim != 1 or array.shape[0] != self.encoding_length:
            raise EncodingError(
                f"encoding must be a flat vector of length {self.encoding_length}, "
                f"got shape {array.shape}"
            )
        if not np.all(np.isfinite(array)):
            raise EncodingError("encoding contains non-finite values")

    def repair(self, encoding: np.ndarray) -> np.ndarray:
        """Clamp an arbitrary real vector into the valid encoding domain.

        Continuous optimizers (DE, CMA-ES, PSO, ...) operate on unconstrained
        real vectors; this projects their candidates back into the search
        space: selection genes are rounded and clipped to ``[0, A)``,
        priority genes are clipped to ``[0, 1)``.
        """
        self.validate(encoding)
        repaired = np.asarray(encoding, dtype=float).copy()
        selection = np.rint(repaired[: self.num_jobs])
        selection = np.clip(selection, 0, self.num_sub_accelerators - 1)
        priority = np.clip(repaired[self.num_jobs:], 0.0, 1.0 - 1e-12)
        repaired[: self.num_jobs] = selection
        repaired[self.num_jobs:] = priority
        return repaired

    def repair_batch(self, population: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`repair` of a whole ``(pop, 2G)`` population.

        Applies the exact same element-wise rint/clip projection as the scalar
        repair, so ``repair_batch(pop)[i]`` is bit-identical to
        ``repair(pop[i])``.
        """
        array = np.atleast_2d(np.asarray(population, dtype=float))
        if array.ndim != 2 or array.shape[1] != self.encoding_length:
            raise EncodingError(
                f"population must be a (pop, {self.encoding_length}) array, "
                f"got shape {np.asarray(population).shape}"
            )
        if not np.all(np.isfinite(array)):
            raise EncodingError("population contains non-finite values")
        repaired = array.copy()
        repaired[:, : self.num_jobs] = np.clip(
            np.rint(repaired[:, : self.num_jobs]), 0, self.num_sub_accelerators - 1
        )
        repaired[:, self.num_jobs:] = np.clip(repaired[:, self.num_jobs:], 0.0, 1.0 - 1e-12)
        return repaired

    # ------------------------------------------------------------------
    def decode(self, encoding: np.ndarray) -> Mapping:
        """Decode an encoded vector into a :class:`Mapping` description.

        Jobs assigned to the same core are ordered by ascending priority
        value (0 is the highest priority); ties break on job index so the
        decode is deterministic.
        """
        repaired = self.repair(encoding)
        selection = repaired[: self.num_jobs].astype(int)
        priority = repaired[self.num_jobs:]
        assignments: List[List[int]] = [[] for _ in range(self.num_sub_accelerators)]
        # Sort all jobs by (priority, job index) once, then bucket by core to
        # keep the decode O(G log G).
        order = np.lexsort((np.arange(self.num_jobs), priority))
        for job_index in order:
            assignments[selection[job_index]].append(int(job_index))
        return Mapping(
            assignments=tuple(tuple(core_jobs) for core_jobs in assignments),
            num_jobs=self.num_jobs,
        )

    def decode_batch(self, population: np.ndarray) -> MappingBatch:
        """Decode a ``(pop, 2G)`` population into a :class:`MappingBatch`.

        Per-row this performs the same repair, stable priority sort (ties
        break on job index), and per-core bucketing as :meth:`decode`, but
        fully vectorized: the per-core queue slot of every job is derived from
        a cumulative per-core count along the sorted order.
        """
        repaired = self.repair_batch(population)
        pop = repaired.shape[0]
        num_jobs = self.num_jobs
        num_cores = self.num_sub_accelerators
        selection = repaired[:, :num_jobs].astype(int)
        priority = repaired[:, num_jobs:]
        # Stable argsort by priority == lexsort((arange, priority)) per row.
        order = np.argsort(priority, axis=1, kind="stable")
        core_of_pos = np.take_along_axis(selection, order, axis=1)
        # counts[p, pos, a] = how many of the first pos+1 sorted jobs sit on
        # core a; the slot of each job within its core's queue follows.
        counts = np.cumsum(core_of_pos[:, :, None] == np.arange(num_cores), axis=1)
        rows = np.arange(pop)[:, None]
        slots = counts[rows, np.arange(num_jobs)[None, :], core_of_pos] - 1
        queues = np.full((pop, num_cores, num_jobs), -1, dtype=int)
        queues[rows, core_of_pos, slots] = order
        return MappingBatch(
            selection=selection,
            queues=queues,
            queue_lengths=counts[:, -1, :],
            num_jobs=num_jobs,
        )

    def encode(self, mapping: Mapping) -> np.ndarray:
        """Encode a :class:`Mapping` back into a vector.

        Priorities are assigned evenly spaced in ``[0, 1)`` following each
        core's execution order, so ``decode(encode(m))`` reproduces ``m``.
        """
        if mapping.num_jobs != self.num_jobs:
            raise EncodingError(
                f"mapping covers {mapping.num_jobs} jobs but codec expects {self.num_jobs}"
            )
        if mapping.num_sub_accelerators > self.num_sub_accelerators:
            raise EncodingError(
                f"mapping uses {mapping.num_sub_accelerators} cores but codec allows "
                f"{self.num_sub_accelerators}"
            )
        selection = np.zeros(self.num_jobs)
        priority = np.zeros(self.num_jobs)
        step = 1.0 / (self.num_jobs + 1)
        for core, core_jobs in enumerate(mapping.assignments):
            for position, job_index in enumerate(core_jobs):
                selection[job_index] = core
                # Rank within the core determines priority; scale by overall
                # position so ordering is preserved exactly after decode.
                priority[job_index] = (position + 1) * step
        return np.concatenate([selection, priority])
