"""Multi-host RPC evaluation backend (the ``rpc`` eval backend).

The ``parallel`` backend shards a population across worker *processes* on one
machine; this module shards the same work across worker *hosts*.  It is
deliberately stdlib-only — TCP sockets carrying length-prefixed tagged
frames: pickled control messages (``P``) and raw ndarray frames (``N``,
dtype/shape header + buffer bytes, received straight into a preallocated
array) — so a fleet of workers needs nothing beyond this package and NumPy:

* :class:`EvalWorkerServer` is the worker side (``repro-magma eval-worker
  --listen HOST:PORT``): it accepts coordinator connections, authenticates
  them with a shared token *before* unpickling anything, rebuilds the
  evaluation state once per connection from the
  :class:`~repro.core.parallel.EvaluatorSpec` bootstrap frame, and then
  answers ``eval`` requests with per-shard fitness arrays.  Workers are
  long-lived: one worker serves any number of sequential or concurrent
  coordinators (each connection gets its own rig and handler thread).
* :class:`RpcWorkerClient` is one coordinator->worker connection: framing,
  auth, bootstrap, heartbeat, and shard evaluation.
* :class:`RpcEvaluationPool` is the coordinator: it mirrors
  :class:`~repro.core.parallel.ParallelEvaluationPool` — the same fixed-size
  work-stealing chunks (:func:`~repro.core.parallel.split_chunks`) pulled
  from a shared queue, each scattering its fitnesses at its own row offset —
  so the ``rpc`` backend is bit-identical to ``batch``/``parallel`` by
  construction (every row's simulation is independent, so chunking and steal
  order cannot change the bits).  Memoization stays in the coordinator: the evaluator
  dispatches only cache misses and merges the computed fitnesses back,
  exactly as with the process pool.  One deliberate policy difference:
  populations below :data:`~repro.core.parallel.MIN_ROWS_PER_WORKER` rows
  run inline (a round trip would cost more than the simulation), but a
  single *shard* still goes remote — a fleet of one host was configured to
  take work off the coordinator, and a fleet down to its last survivor
  keeps using it.

Fault tolerance: before every dispatch the pool heartbeats its workers
(ping/pong with a short timeout) and drops the dead ones; a worker that dies
*mid-shard* surfaces as a broken connection, its shard is re-dispatched to
the survivors, and when every host is gone the pool falls back to evaluating
locally — a search never fails because the fleet did.

Security note: after authentication the control protocol exchanges pickles,
which are code-execution-equivalent; bulk array data travels as raw ndarray
frames that are *never* unpickled (the decoder rejects object dtypes, so a
peer cannot smuggle a pickle through the array path).  The token
(``--token`` / ``REPRO_RPC_TOKEN``) gates every connection before any frame
is decoded, but the transport is neither encrypted nor replay-protected —
run workers on trusted networks only.
"""

from __future__ import annotations

import hmac
import os
import pickle
import socket
import struct
import threading
import warnings
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.parallel import (
    DEFAULT_CHUNK_ROWS,
    MIN_ROWS_PER_WORKER,
    EvaluatorSpec,
    SimulationRig,
    split_chunks,
)
from repro.exceptions import ConfigurationError, RpcError, WorkerDiedError
from repro.obs import get_metrics, get_tracer

#: Environment variable both sides read when no token is given explicitly.
RPC_TOKEN_ENV = "REPRO_RPC_TOKEN"

#: Upper bound on one frame (a pickled population shard or fitness array);
#: anything larger indicates a corrupt or hostile length prefix.
MAX_FRAME_BYTES = 1 << 30

#: Cap on the (raw-bytes) auth frame: tokens are short; an unauthenticated
#: peer must not be able to make a worker buffer gigabytes.
MAX_AUTH_FRAME_BYTES = 4096

#: How long a worker waits for a fresh connection to authenticate before
#: dropping it (unauthenticated peers must not pin handler threads).
AUTH_TIMEOUT_SECONDS = 10.0

#: Frame length prefix: 8-byte big-endian unsigned.
_LENGTH_PREFIX = struct.Struct(">Q")

#: Auth replies (sent as raw frames, before the tagged protocol starts).
_AUTH_OK = b"OK"
_AUTH_DENIED = b"DENIED"

#: Post-auth frame tags (first payload byte): ``P`` = pickled control
#: message, ``N`` = raw ndarray (dtype/shape header + buffer bytes).  Array
#: payloads travel as ``N`` frames, so peer array data is never unpickled —
#: the receiver allocates the array itself and ``recv_into``s its buffer.
_FRAME_PICKLE = b"P"
_FRAME_NDARRAY = b"N"

#: Raw ndarray frame header: dtype-string length (u8) + ndim (u8), followed
#: by the ascii dtype string and ndim big-endian u64 dimensions.
_NDARRAY_HEADER = struct.Struct(">BB")
_NDARRAY_DIM = struct.Struct(">Q")


def _enable_keepalive(sock: socket.socket) -> None:
    """Turn on TCP keepalive (with aggressive knobs where the OS has them).

    A worker host that loses power or its network route dies *silently* — no
    FIN/RST ever arrives — and a fully blocking ``recv`` would wait forever.
    Keepalive converts that silence into a connection error after a bounded
    interval, which feeds the normal mark-dead/re-dispatch path.
    """
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for option, value in (
        ("TCP_KEEPIDLE", 30),   # probe after 30s of silence...
        ("TCP_KEEPINTVL", 10),  # ...then every 10s...
        ("TCP_KEEPCNT", 3),     # ...declaring death after 3 misses.
    ):
        if hasattr(socket, option):
            try:
                sock.setsockopt(socket.IPPROTO_TCP, getattr(socket, option), value)
            except OSError:  # pragma: no cover - platform-dependent
                pass


def is_loopback_host(host: str) -> bool:
    """True for addresses that never leave this machine."""
    return host in ("localhost", "::1") or host.startswith("127.")


_is_loopback = is_loopback_host


def resolve_token(token: Optional[str]) -> str:
    """The shared secret: an explicit token, else ``$REPRO_RPC_TOKEN``, else ''."""
    if token is not None:
        return str(token)
    return os.environ.get(RPC_TOKEN_ENV, "")


def parse_hosts(
    hosts: "str | Sequence[Any] | None", allow_ephemeral: bool = False
) -> List[Tuple[str, int]]:
    """Normalise worker addresses into ``(host, port)`` pairs.

    Accepts the CLI's comma-separated ``"host:port,host:port"`` string, any
    sequence of ``"host:port"`` strings, or ready-made ``(host, port)`` pairs.
    Malformed entries fail loudly as :class:`ConfigurationError`.  Port 0 is
    only meaningful for a *listen* address ("pick a free port"), so dialable
    host lists reject it unless *allow_ephemeral* is set.
    """
    if hosts is None:
        return []
    if isinstance(hosts, str):
        items: Sequence[Any] = [part for part in hosts.split(",") if part.strip()]
    else:
        items = list(hosts)
    parsed: List[Tuple[str, int]] = []
    for item in items:
        if isinstance(item, (tuple, list)) and len(item) == 2:
            host, port = item[0], item[1]
        else:
            text = str(item).strip()
            host, sep, port = text.rpartition(":")
            if not sep or not host:
                raise ConfigurationError(
                    f"worker address {text!r} is not of the form host:port"
                )
        try:
            port = int(port)
        except (TypeError, ValueError) as error:
            raise ConfigurationError(f"invalid worker port in {item!r}: {error}") from error
        if not (0 if allow_ephemeral else 1) <= port < 65536:
            raise ConfigurationError(f"worker port out of range in {item!r}: {port}")
        parsed.append((str(host), port))
    return parsed


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
#: Wire-volume counters, shared by every socket in the process (coordinator
#: and in-process test workers alike).  Incremented once per frame / array
#: payload — never per row — see docs/OBSERVABILITY.md.
_M_BYTES_SENT = get_metrics().counter(
    "repro_rpc_bytes_sent_total", "Bytes written to RPC sockets (frames and array payloads)."
)
_M_BYTES_RECEIVED = get_metrics().counter(
    "repro_rpc_bytes_received_total", "Bytes read from RPC sockets (frames and array payloads)."
)


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame."""
    sock.sendall(_LENGTH_PREFIX.pack(len(payload)) + payload)
    _M_BYTES_SENT.inc(_LENGTH_PREFIX.size + len(payload))


def recv_frame(sock: socket.socket, limit: int = MAX_FRAME_BYTES) -> bytes:
    """Read one length-prefixed frame; a closed peer raises :class:`WorkerDiedError`."""
    header = _recv_exact(sock, _LENGTH_PREFIX.size)
    (length,) = _LENGTH_PREFIX.unpack(header)
    if length > limit:
        raise RpcError(f"frame of {length} bytes exceeds the {limit}-byte limit")
    return _recv_exact(sock, length)


def authenticate_inbound(conn: socket.socket, token: str) -> bool:  # rpc-frame: auth-gate
    """Server side of the token handshake; nothing is decoded before it passes.

    The check runs on raw frame bytes with a constant-time compare, the auth
    frame is size-capped (tokens are short), and the frame must arrive within
    a timeout — so an unauthenticated peer can neither pin a handler thread
    nor make the server buffer memory.  Shared by every listener that rides
    this framing (the eval workers and the network store server).
    """
    conn.settimeout(AUTH_TIMEOUT_SECONDS)
    try:
        presented = recv_frame(conn, limit=MAX_AUTH_FRAME_BYTES)
        if not hmac.compare_digest(presented, token.encode("utf-8")):
            send_frame(conn, _AUTH_DENIED)
            return False
        send_frame(conn, _AUTH_OK)
    finally:
        conn.settimeout(None)
    return True


def authenticate_outbound(sock: socket.socket, token: str, peer: str) -> None:
    """Client side of the token handshake; raises :class:`RpcError` on denial."""
    send_frame(sock, token.encode("utf-8"))
    if recv_frame(sock) != _AUTH_OK:
        raise RpcError(f"{peer} rejected the authentication token")


def _recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    """Fill *view* from the socket; a closed peer raises :class:`WorkerDiedError`.

    This is the one receive primitive: everything arrives via ``recv_into``
    on a preallocated buffer (a frame's bytearray, or an ndarray frame's own
    backing store), never by accumulating and joining ``recv`` chunks.
    """
    offset = 0
    remaining = view.nbytes
    while remaining:
        try:
            count = sock.recv_into(view[offset:offset + min(remaining, 1 << 20)])
        except OSError as error:
            raise WorkerDiedError(f"connection lost: {error}") from error
        if not count:
            raise WorkerDiedError("connection closed by peer mid-frame")
        offset += count
        remaining -= count
    _M_BYTES_RECEIVED.inc(view.nbytes)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    buffer = bytearray(count)
    _recv_exact_into(sock, memoryview(buffer))
    return bytes(buffer)


def _send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    # rpc-frame: encoder allow=bootstrap,eval,ping,pong,ok,result,error,shutdown
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH_PREFIX.pack(1 + len(payload)) + _FRAME_PICKLE + payload)
    _M_BYTES_SENT.inc(_LENGTH_PREFIX.size + 1 + len(payload))


def _send_array(sock: socket.socket, array: np.ndarray) -> None:
    """Send one raw ndarray frame: tag + dtype/shape header + buffer bytes.

    The buffer is written straight from the array's memory (no pickling, no
    intermediate copy beyond ``ascontiguousarray`` when the input is already
    a C-contiguous array, which population rows and fitness rows are).
    """
    array = np.ascontiguousarray(array)
    dtype_str = array.dtype.str.encode("ascii")
    header = (
        _NDARRAY_HEADER.pack(len(dtype_str), array.ndim)
        + dtype_str
        + b"".join(_NDARRAY_DIM.pack(dim) for dim in array.shape)
    )
    sock.sendall(_LENGTH_PREFIX.pack(1 + len(header) + array.nbytes) + _FRAME_NDARRAY + header)
    if array.nbytes:
        sock.sendall(memoryview(array).cast("B"))
    _M_BYTES_SENT.inc(_LENGTH_PREFIX.size + 1 + len(header) + array.nbytes)


def _recv_ndarray(sock: socket.socket, body_length: int) -> np.ndarray:
    # rpc-frame: decoder — raw ndarray frames are decoded here and only here
    fixed = _recv_exact(sock, _NDARRAY_HEADER.size)
    dtype_length, ndim = _NDARRAY_HEADER.unpack(fixed)
    meta_length = dtype_length + ndim * _NDARRAY_DIM.size
    if body_length < _NDARRAY_HEADER.size + meta_length:
        raise RpcError("truncated ndarray frame header")
    meta = _recv_exact(sock, meta_length)
    try:
        dtype = np.dtype(meta[:dtype_length].decode("ascii"))
    except (TypeError, UnicodeDecodeError) as error:
        raise RpcError(f"ndarray frame carries an invalid dtype: {error}") from error
    if dtype.hasobject:
        # An object dtype would make "decode" mean "unpickle"; raw frames
        # exist precisely so peer array data never reaches a pickle.
        raise RpcError("refusing ndarray frame with object dtype")
    shape = tuple(
        _NDARRAY_DIM.unpack_from(meta, dtype_length + index * _NDARRAY_DIM.size)[0]
        for index in range(ndim)
    )
    expected = dtype.itemsize
    for dim in shape:  # python ints: a hostile 2**63 dim cannot overflow this
        expected *= dim
    payload = body_length - _NDARRAY_HEADER.size - meta_length
    if expected != payload:
        raise RpcError(
            f"ndarray frame length mismatch: shape {shape} x {dtype} needs "
            f"{expected} bytes, frame carries {payload}"
        )
    array = np.empty(shape, dtype=dtype)
    if array.nbytes:
        _recv_exact_into(sock, memoryview(array).cast("B"))
    return array


def _recv_message(sock: socket.socket) -> Any:
    # rpc-frame: decoder — the ONLY place raw peer bytes may be unpickled
    header = _recv_exact(sock, _LENGTH_PREFIX.size)
    (length,) = _LENGTH_PREFIX.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RpcError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    if length < 1:
        raise RpcError("empty frame (missing tag byte)")
    tag = _recv_exact(sock, 1)
    if tag == _FRAME_NDARRAY:
        return _recv_ndarray(sock, length - 1)
    if tag == _FRAME_PICKLE:
        return pickle.loads(_recv_exact(sock, length - 1))
    raise RpcError(f"unknown frame tag {tag!r}")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class EvalWorkerServer:
    """One evaluation worker: listens for coordinators and scores shards.

    Workers are stateless between connections — each authenticated
    coordinator bootstraps its own :class:`SimulationRig` from the spec it
    sends, so one long-lived worker can serve many different problems (and
    several coordinators at once, each on its own handler thread).

    ``port=0`` binds an ephemeral port; the chosen one is in :attr:`address`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
    ):
        self.token = resolve_token(token)
        if not self.token and not _is_loopback(host):
            # The post-auth protocol is pickle (code-execution-equivalent);
            # an empty token on a routable interface would hand every peer
            # that can reach the port an unauthenticated unpickle.
            raise ConfigurationError(
                f"refusing to listen on non-loopback address {host!r} without a "
                f"token; pass --token or set ${RPC_TOKEN_ENV}"
            )
        self._listener = socket.create_server((host, port))
        # A finite accept timeout keeps the serve loop responsive to
        # shutdown(): closing a socket another thread is blocked in accept()
        # on is deferred by CPython until the call returns, so a fully
        # blocking accept could never be woken.
        self._listener.settimeout(0.1)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._active: set = set()  # guarded-by: _lock
        #: Served-request counters (telemetry; the fault tests assert on them).
        self.connections_served = 0  # guarded-by: _lock
        self.evals_served = 0  # guarded-by: _lock
        self.rows_served = 0  # guarded-by: _lock

    @property
    def address(self) -> str:
        """The ``host:port`` this worker listens on."""
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept coordinator connections until :meth:`shutdown`."""
        try:
            while not self._stopping.is_set():
                try:
                    conn, _ = self._listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    # Listener closed by shutdown() — or never usable; either
                    # way the serve loop is over.
                    break
                if self._stopping.is_set():
                    conn.close()
                    break
                with self._lock:
                    self.connections_served += 1
                thread = threading.Thread(
                    target=self._handle_connection, args=(conn,), daemon=True
                )
                thread.start()
        finally:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def start(self) -> "EvalWorkerServer":
        """Serve on a background daemon thread (how tests and benchmarks run)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the worker: close the listener and every live connection.

        Dropping active connections (not just the listener) makes an
        in-process shutdown observationally identical to a killed worker
        process — coordinators see their conversation die mid-stream, which
        is exactly what the fault-tolerance machinery must handle.
        """
        self._stopping.set()
        # Wake a blocked accept() immediately instead of waiting out its
        # poll interval; the serve loop discards this connection and exits.
        try:
            socket.create_connection((self.host, self.port), timeout=0.2).close()
        except OSError:
            pass
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        with self._lock:
            active = list(self._active)
        for conn in active:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    # ------------------------------------------------------------------
    def _handle_connection(self, conn: socket.socket) -> None:
        with self._lock:
            self._active.add(conn)
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            _enable_keepalive(conn)
            if not self._authenticate(conn):
                return
            rig: Optional[SimulationRig] = None
            while True:
                message = _recv_message(conn)
                if isinstance(message, np.ndarray):
                    # Raw ndarray frame = "evaluate these rows": the bulk
                    # data path skips pickle entirely in both directions.
                    if rig is None:
                        _send_message(
                            conn, {"op": "error", "message": "eval before bootstrap"}
                        )
                        continue
                    _send_array(
                        conn, np.asarray(self._eval(rig, message), dtype=np.float64)
                    )
                    continue
                op = message.get("op")
                if op == "bootstrap":
                    rig = self._build_rig(message["spec"])
                    _send_message(conn, {"op": "ok"})
                elif op == "eval":
                    if rig is None:
                        _send_message(
                            conn, {"op": "error", "message": "eval before bootstrap"}
                        )
                        continue
                    _send_message(
                        conn,
                        {"op": "result", "fitnesses": self._eval(rig, message["rows"])},
                    )
                elif op == "ping":
                    _send_message(conn, {"op": "pong"})
                elif op == "shutdown":
                    _send_message(conn, {"op": "ok"})
                    self.shutdown()
                    return
                else:
                    _send_message(
                        conn, {"op": "error", "message": f"unknown op {op!r}"}
                    )
        except (RpcError, OSError, EOFError, pickle.UnpicklingError):
            # Coordinator went away or sent garbage (oversized frame, bad
            # pickle, timeout); this connection is done, the worker itself
            # lives on for the next coordinator.
            pass
        finally:
            with self._lock:
                self._active.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _authenticate(self, conn: socket.socket) -> bool:  # rpc-frame: auth-gate
        """Token check on raw bytes — nothing is unpickled before this passes."""
        return authenticate_inbound(conn, self.token)

    def _build_rig(self, spec: EvaluatorSpec) -> SimulationRig:
        # The coordinator's resolved seed arrives inside the bootstrap spec
        # and lands on the per-connection rig.  Unlike the parallel backend's
        # dedicated workers, one RPC worker serves many coordinators
        # concurrently, so the seed stays connection-scoped (on the rig)
        # rather than being installed as this process's session seed.
        return spec.build_rig()

    def _eval(self, rig: SimulationRig, rows: np.ndarray) -> np.ndarray:
        """Score one shard (overridable; the fault-injection tests use this seam)."""
        fitnesses = rig.fitnesses_for_rows(rows)
        with self._lock:
            self.evals_served += 1
            self.rows_served += len(np.atleast_2d(rows))
        return fitnesses


def serve_worker(
    listen: str,
    token: Optional[str] = None,
    ready: Optional[Any] = None,
) -> None:
    """Blocking entry point behind ``repro-magma eval-worker``.

    *listen* is ``host:port`` (port 0 binds an ephemeral port).  *ready*, if
    given, is called with the started server — the CLI uses it to print the
    resolved address before blocking.
    """
    parsed = parse_hosts(listen, allow_ephemeral=True)
    if len(parsed) != 1:
        raise ConfigurationError(f"--listen takes exactly one host:port, got {listen!r}")
    host, port = parsed[0]
    server = EvalWorkerServer(host=host, port=port, token=token)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    finally:
        server.shutdown()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class RpcWorkerClient:
    """One authenticated coordinator connection to an evaluation worker."""

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        connect_timeout: float = 5.0,
    ):
        self.host = host
        self.port = port
        self.token = resolve_token(token)
        self.connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None

    @property
    def is_connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> None:
        """Dial, authenticate, and switch to blocking mode for evaluation."""
        sock = socket.create_connection((self.host, self.port), timeout=self.connect_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            _enable_keepalive(sock)
            authenticate_outbound(sock, self.token, f"worker {self.host}:{self.port}")
            # Shard evaluation time is unbounded (it scales with the problem),
            # so the steady-state socket is fully blocking; liveness is the
            # heartbeat's job, and a killed worker still surfaces promptly as
            # a reset/closed connection.
            sock.settimeout(None)
        except BaseException:
            sock.close()
            raise
        self._sock = sock

    # ------------------------------------------------------------------
    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        # rpc-frame: encoder allow=bootstrap,eval,ping,shutdown
        if self._sock is None:
            raise RpcError(f"client for {self.host}:{self.port} is not connected")
        _send_message(self._sock, message)
        reply = _recv_message(self._sock)
        if not isinstance(reply, dict):
            raise RpcError(
                f"worker {self.host}:{self.port} sent a non-control reply to {message.get('op')!r}"
            )
        if reply.get("op") == "error":
            raise RpcError(
                f"worker {self.host}:{self.port} error: {reply.get('message')}"
            )
        return reply

    def bootstrap(self, spec: EvaluatorSpec) -> None:
        """Ship the problem description; the worker rebuilds its rig from it."""
        self._request({"op": "bootstrap", "spec": spec})

    def evaluate(self, rows: np.ndarray) -> np.ndarray:
        """Fitness of one chunk of repaired encodings, in row order.

        Rows travel as a raw ndarray frame and the fitnesses come back the
        same way — neither side unpickles the other's array data.
        """
        if self._sock is None:
            raise RpcError(f"client for {self.host}:{self.port} is not connected")
        _send_array(self._sock, np.ascontiguousarray(rows, dtype=np.float64))
        reply = _recv_message(self._sock)
        if isinstance(reply, np.ndarray):
            return np.asarray(reply, dtype=float)
        if isinstance(reply, dict) and reply.get("op") == "error":
            raise RpcError(
                f"worker {self.host}:{self.port} error: {reply.get('message')}"
            )
        raise RpcError(f"worker {self.host}:{self.port} sent an unexpected eval reply")

    def heartbeat(self, timeout: float = 2.0) -> bool:
        """Ping/pong liveness probe; ``False`` means the worker is gone.

        A liveness probe must never raise: any failure — transport, garbage
        reply, protocol violation — just means "not alive".
        """
        if self._sock is None:
            return False
        try:
            self._sock.settimeout(timeout)
            try:
                return self._request({"op": "ping"}).get("op") == "pong"
            finally:
                self._sock.settimeout(None)
        except Exception:  # repro-lint: disable=RPL502 — liveness probe: any failure just means "not alive"
            return False

    def request_shutdown(self) -> None:
        """Ask the worker process to stop serving (benchmark teardown)."""
        try:
            self._request({"op": "shutdown"})
        except (RpcError, OSError):
            pass

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None


class RpcEvaluationPool:
    """Coordinator over remote evaluation workers sharing one :class:`EvaluatorSpec`.

    Duck-type compatible with
    :class:`~repro.core.parallel.ParallelEvaluationPool` (``evaluate`` /
    ``warm_up`` / ``close`` / ``is_running``), so
    :class:`~repro.core.evaluator.MappingEvaluator` drives both identically.

    Connections are lazy: the first evaluation dials every configured host,
    authenticates, and bootstraps it with the spec.  Hosts that cannot be
    reached — or die later — are marked dead and never block a search again;
    with no hosts configured (or none left alive) the pool simply evaluates
    locally, bit-identically.
    """

    def __init__(
        self,
        spec: EvaluatorSpec,
        hosts: "str | Sequence[Any] | None" = None,
        token: Optional[str] = None,
        connect_timeout: float = 5.0,
        heartbeat_timeout: float = 2.0,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ):
        self.spec = spec
        self.hosts = parse_hosts(hosts)
        self.token = resolve_token(token)
        self.connect_timeout = connect_timeout
        self.heartbeat_timeout = heartbeat_timeout
        if chunk_rows < 1:
            raise ConfigurationError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.chunk_rows = int(chunk_rows)
        self._clients: Dict[Tuple[str, int], RpcWorkerClient] = {}
        self._dead: set = set()
        self._fallback_rig: Optional[SimulationRig] = None
        # Observability (docs/OBSERVABILITY.md): fleet-degradation events are
        # always recorded; counters tick once per chunk/host, never per row.
        self._tracer = get_tracer()
        metrics = get_metrics()
        self._m_chunks = metrics.counter(
            "repro_chunks_dispatched_total",
            "Evaluation chunks handed to pool workers.",
            labels={"backend": "rpc"},
        )
        self._m_requeues = metrics.counter(
            "repro_rpc_chunk_requeues_total",
            "Chunks requeued for surviving workers after a host died mid-chunk.",
        )
        self._m_steals = metrics.counter(
            "repro_rpc_chunk_steals_total",
            "Chunks a worker pulled beyond its even share (work stealing).",
        )
        self._m_fallback = metrics.counter(
            "repro_local_fallback_chunks_total",
            "Chunks evaluated on the coordinator after pool workers failed.",
            labels={"backend": "rpc"},
        )
        self._m_deaths = metrics.counter(
            "repro_worker_deaths_total",
            "Pool workers declared dead and struck off.",
            labels={"backend": "rpc"},
        )
        self._m_heartbeat_failures = metrics.counter(
            "repro_rpc_heartbeat_failures_total",
            "Heartbeat probes that failed and struck a worker off.",
        )

    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        """True while at least one worker connection is open."""
        return bool(self._clients)

    @property
    def num_live_hosts(self) -> int:
        """Configured hosts not (yet) marked dead."""
        return len(self.hosts) - len(self._dead)

    def _live_clients(self) -> List[RpcWorkerClient]:
        """Connected, heartbeat-verified workers (connecting lazily as needed).

        Hosts are probed *concurrently* — first-time dials (connect +
        bootstrap) and steady-state heartbeats alike — so one slow or
        unreachable host costs the fleet a single timeout, not a timeout per
        host per generation.
        """
        candidates = [host for host in self.hosts if host not in self._dead]
        outcomes: Dict[Tuple[str, int], Any] = {}

        def probe(host: Tuple[str, int]) -> None:
            client = self._clients.get(host)
            if client is None:
                client = RpcWorkerClient(
                    host[0], host[1], token=self.token, connect_timeout=self.connect_timeout
                )
                try:
                    client.connect()
                    client.bootstrap(self.spec)
                except Exception as error:
                    client.close()
                    outcomes[host] = error
                    return
            elif not client.heartbeat(self.heartbeat_timeout):
                outcomes[host] = "heartbeat failed"
                return
            outcomes[host] = client

        threads = [
            threading.Thread(target=probe, args=(host,), daemon=True)
            for host in candidates
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        clients: List[RpcWorkerClient] = []
        for host in candidates:
            outcome = outcomes.get(host, "probe thread died")
            if isinstance(outcome, RpcWorkerClient):
                self._clients[host] = outcome
                clients.append(outcome)
            else:
                self._mark_dead(host, outcome)
        return clients

    def _mark_dead(self, host: Tuple[str, int], reason: Any) -> None:
        """Strike a worker off and say so — the pool degrades gracefully by
        design (a search must never fail because the fleet did), but a host
        lost to a typo'd token or address should not vanish without a trace."""
        self._dead.add(host)
        client = self._clients.pop(host, None)
        if client is not None:
            client.close()
        self._m_deaths.inc()
        if reason == "heartbeat failed":
            self._m_heartbeat_failures.inc()
        self._tracer.warning(
            "rpc.host-dead",
            host=f"{host[0]}:{host[1]}",
            reason=str(reason),
            live=self.num_live_hosts,
            total=len(self.hosts),
        )
        warnings.warn(
            f"rpc evaluation worker {host[0]}:{host[1]} dropped ({reason}); "
            f"{self.num_live_hosts} of {len(self.hosts)} hosts remain"
            + ("" if self.num_live_hosts else " — evaluating locally"),
            RuntimeWarning,
            stacklevel=2,
        )

    def _local_rig(self) -> SimulationRig:
        if self._fallback_rig is None:
            self._fallback_rig = self.spec.build_rig()
        return self._fallback_rig

    # ------------------------------------------------------------------
    def evaluate(self, rows: np.ndarray) -> np.ndarray:
        """Fitness of each (already repaired) encoding row, preserving row order."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if len(rows) == 0:
            return np.empty(0, dtype=float)
        # A population too small to amortise a round trip runs in process,
        # without ever touching a socket.  Unlike the process pool, a single
        # *shard* still goes remote: the user configured a fleet (maybe of
        # one beefy host) precisely to take this work off the coordinator,
        # and a fleet down to its last survivor should keep using it.
        if self.num_live_hosts == 0 or len(rows) < MIN_ROWS_PER_WORKER:
            return self._local_rig().fitnesses_for_rows(rows)
        clients = self._live_clients()
        if not clients:
            return self._local_rig().fitnesses_for_rows(rows)
        even = -(-len(rows) // len(clients))  # ceil division
        height = min(self.chunk_rows, max(MIN_ROWS_PER_WORKER, even))
        return self._dispatch(rows, split_chunks(len(rows), height), clients)

    def _dispatch(
        self,
        rows: np.ndarray,
        chunks: List[Tuple[int, int]],
        clients: List[RpcWorkerClient],
    ) -> np.ndarray:
        """Work-stealing dispatch: clients pull chunks from a shared queue.

        One sender thread per worker loops "pop the next ``(start, stop)``
        chunk, evaluate it remotely, scatter the fitnesses at the chunk's
        row offset" — a fast host simply pulls more chunks than a slow one,
        and row order is positional so any steal schedule gathers
        identically.  A transport failure marks that worker dead and
        requeues the chunk for the survivors; chunks still unfinished when
        every host is gone land on the local fallback rig — which also
        raises the real error if the problem was systemic rather than one
        host dying.
        """
        fitnesses = np.empty(len(rows), dtype=float)
        queue = deque(range(len(chunks)))
        done = [False] * len(chunks)
        lock = threading.Lock()
        failed_clients: List[RpcWorkerClient] = []
        completed = [0] * len(clients)
        self._m_chunks.inc(len(chunks))
        self._tracer.event(
            "rpc.dispatch", chunks=len(chunks), rows=len(rows), workers=len(clients)
        )

        def _run(worker: int, client: RpcWorkerClient) -> None:
            while True:
                with lock:
                    if not queue:
                        return
                    index = queue.popleft()
                start, stop = chunks[index]
                try:
                    result = client.evaluate(rows[start:stop])
                    if len(result) != stop - start:
                        raise RpcError(
                            f"worker {client.host}:{client.port} returned "
                            f"{len(result)} fitnesses for a {stop - start}-row chunk"
                        )
                except Exception as error:
                    with lock:
                        queue.appendleft(index)
                        failed_clients.append(client)
                    self._m_requeues.inc()
                    self._tracer.warning(
                        "rpc.chunk-requeued",
                        host=f"{client.host}:{client.port}",
                        chunk=[int(start), int(stop)],
                        error=str(error),
                    )
                    return
                fitnesses[start:stop] = result  # disjoint rows: no lock needed
                with lock:
                    done[index] = True
                    completed[worker] += 1

        threads = [
            threading.Thread(target=_run, args=(worker, client), daemon=True)
            for worker, client in enumerate(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # A worker that finished more than its even share stole the surplus
        # from slower (or dead) peers — the signature of healthy stealing.
        even_share = -(-len(chunks) // len(clients))
        steals = sum(max(0, count - even_share) for count in completed)
        if steals:
            self._m_steals.inc(steals)
        for client in failed_clients:
            self._mark_dead((client.host, client.port), "died mid-chunk")
        remaining = [index for index in range(len(chunks)) if not done[index]]
        if remaining:
            self._m_fallback.inc(len(remaining))
            self._tracer.warning(
                "rpc.local-fallback",
                chunks=[[int(chunks[i][0]), int(chunks[i][1])] for i in remaining],
                rows=int(sum(chunks[i][1] - chunks[i][0] for i in remaining)),
            )
            rig = self._local_rig()
            for index in remaining:
                start, stop = chunks[index]
                fitnesses[start:stop] = rig.fitnesses_for_rows(rows[start:stop])
        return fitnesses

    # ------------------------------------------------------------------
    def warm_up(self) -> int:
        """Eagerly connect + bootstrap every reachable host; returns how many."""
        return len(self._live_clients())

    def close(self) -> None:
        """Drop the worker connections (the workers themselves keep serving)."""
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "RpcEvaluationPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # repro-lint: disable=RPL502 — GC finalizer must never raise
            pass
