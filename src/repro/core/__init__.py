"""M3E — Multi-workload Multi-accelerator Mapping Explorer (the paper's framework).

The core package contains the encoding scheme, the Job Analyzer and Job
Analysis Table, the bandwidth allocator (Algorithm 1), the decoded schedule
representation, the objectives, the fitness evaluator, and the top-level
:class:`M3E` search driver.
"""

from repro.core.encoding import Mapping, MappingBatch, MappingCodec
from repro.core.analyzer import JobAnalyzer, JobAnalysisTable, JobProfile
from repro.core.bw_allocator import BandwidthAllocator, BatchBandwidthAllocator, ScheduleEvent
from repro.core.schedule import Schedule, ScheduledJob
from repro.core.objectives import (
    Objective,
    ThroughputObjective,
    LatencyObjective,
    EnergyObjective,
    EDPObjective,
    get_objective,
)
from repro.core.evalconfig import DEFAULT_EVAL_BACKEND, EVAL_BACKENDS, EvalConfig
from repro.core.evaluator import MappingEvaluator, EvaluationResult
from repro.core.framework import M3E, SearchResult
from repro.core.parallel import EvaluatorSpec, ParallelEvaluationPool, SimulationRig

__all__ = [
    "Mapping",
    "MappingBatch",
    "MappingCodec",
    "BatchBandwidthAllocator",
    "DEFAULT_EVAL_BACKEND",
    "EVAL_BACKENDS",
    "EvalConfig",
    "JobAnalyzer",
    "JobAnalysisTable",
    "JobProfile",
    "BandwidthAllocator",
    "ScheduleEvent",
    "Schedule",
    "ScheduledJob",
    "Objective",
    "ThroughputObjective",
    "LatencyObjective",
    "EnergyObjective",
    "EDPObjective",
    "get_objective",
    "MappingEvaluator",
    "EvaluationResult",
    "EvaluatorSpec",
    "ParallelEvaluationPool",
    "SimulationRig",
    "M3E",
    "SearchResult",
]
