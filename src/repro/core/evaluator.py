"""Fitness evaluator: encoded mapping -> decoded schedule -> objective value.

This is the "Evaluation" half of the M3E loop (Fig. 3 of the paper): the
decoder turns the encoded mapping into a mapping description, the BW
allocator simulates it under the system-bandwidth constraint, and the fitness
function extracts the objective.  The evaluator also keeps a sample counter
and the best-so-far trace, which every experiment uses to enforce the shared
sampling budget and to draw convergence curves (Fig. 11, Fig. 16).

Four evaluation backends are available (``backend`` constructor argument,
also exposed as ``--eval-backend {scalar,batch,parallel,rpc}`` on the CLI):

* ``"batch"`` (default) — :meth:`MappingEvaluator.evaluate_population` decodes
  and simulates the whole population in one vectorized sweep through
  :class:`~repro.core.bw_allocator.BatchBandwidthAllocator`, with an
  encoding -> fitness memoization cache so elites and duplicate children cost
  no re-simulation.  Budget accounting still charges every requested sample,
  exactly as Section VI-B prescribes.
* ``"parallel"`` — the batch sweep sharded across a persistent pool of worker
  processes (:mod:`repro.core.parallel`); ``num_workers`` picks the pool
  size (default: one per CPU core).  Workers run the same
  :class:`~repro.core.parallel.SimulationRig` code path the batch backend
  uses in process, and the memo cache stays in the main process (only cache
  misses are dispatched, computed fitnesses are merged back), so the results
  are bit-identical to ``batch``.
* ``"rpc"`` — the same sharded sweep dispatched to remote evaluation workers
  (:mod:`repro.core.rpc`; ``eval_hosts`` lists their ``host:port`` addresses,
  started with ``repro-magma eval-worker``).  Sharding, gather order, and the
  coordinator-side memo cache are identical to ``parallel``; dead workers are
  detected by heartbeat and their shards re-dispatched, falling back to local
  evaluation when no worker is reachable — so results stay bit-identical to
  ``batch`` whatever the fleet does.
* ``"scalar"`` — the original one-encoding-at-a-time reference oracle.

All backends produce bit-identical fitnesses, history, and best-encoding for
the same inputs; the scalar path is kept as the correctness oracle for the
equivalence property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator import AcceleratorPlatform
from repro.core.analyzer import JobAnalysisTable, JobAnalyzer
from repro.core.bw_allocator import BandwidthAllocator, BatchBandwidthAllocator
from repro.core.encoding import Mapping, MappingCodec
from repro.core.evalconfig import (
    DEFAULT_EVAL_BACKEND,
    EVAL_BACKENDS,
    EvalConfig,
    resolve_eval_config,
)
from repro.core.objectives import Objective, get_objective
from repro.core.parallel import EvaluatorSpec, ParallelEvaluationPool, SimulationRig
from repro.core.rpc import RpcEvaluationPool
from repro.core.schedule import Schedule
from repro.exceptions import OptimizationError
from repro.obs import get_metrics, get_tracer
from repro.workloads.groups import JobGroup

#: Backends that dispatch population shards to a pool of workers.
_POOLED_BACKENDS: Tuple[str, ...] = ("parallel", "rpc")

#: Soft cap on the number of memoized encoding->fitness entries.
_FITNESS_CACHE_LIMIT = 200_000


@dataclass(frozen=True)
class EvaluationResult:
    """Result of evaluating one encoded mapping."""

    fitness: float
    objective_value: float
    makespan_cycles: float
    mapping: Mapping


class MappingEvaluator:
    """Evaluates encoded mappings for one (group, platform, objective) problem.

    The evaluator is the single object optimizers interact with: it exposes
    the codec (so algorithms know the search-space shape), a scalar
    ``evaluate`` call, and bookkeeping of the sampling budget.
    """

    def __init__(
        self,
        group: JobGroup,
        platform: AcceleratorPlatform,
        objective: Objective | str = "throughput",
        analysis_table: Optional[JobAnalysisTable] = None,
        sampling_budget: Optional[int] = None,
        backend: Optional[str] = None,
        num_workers: Optional[int] = None,
        eval_hosts: "str | Sequence[str] | None" = None,
        rpc_token: Optional[str] = None,
        resolved_seed: Optional[int] = None,
        eval_config: Optional[EvalConfig] = None,
    ):
        # ``eval_config`` is the configuration path; ``backend``/
        # ``num_workers`` remain silent per-evaluator conveniences, while
        # the fleet kwargs ride the shared deprecation shim.
        eval_config = resolve_eval_config(
            eval_config,
            where="MappingEvaluator",
            eval_backend=backend,
            eval_workers=num_workers,
            eval_hosts=eval_hosts,
            rpc_token=rpc_token,
            warn_on=("eval_hosts", "rpc_token"),
        )
        self.eval_config = eval_config
        self.group = group
        self.platform = platform
        self.objective = get_objective(objective)
        self.backend = eval_config.backend
        #: The search's resolved seed (recorded here so worker bootstraps in
        #: the parallel/rpc backends carry it instead of re-deriving one).
        self.resolved_seed = resolved_seed
        self.codec = MappingCodec(
            num_jobs=group.size,
            num_sub_accelerators=platform.num_sub_accelerators,
        )
        self.table = analysis_table if analysis_table is not None else JobAnalyzer(platform).analyze(group)
        self.allocator = BandwidthAllocator(
            system_bandwidth_gbps=platform.system_bandwidth_gbps,
            frequency_hz=platform.sub_accelerators[0].frequency_hz,
        )
        self.batch_allocator = BatchBandwidthAllocator(
            system_bandwidth_gbps=platform.system_bandwidth_gbps,
            frequency_hz=platform.sub_accelerators[0].frequency_hz,
        )
        #: The row-fitness engine shared (as a code path) with parallel workers.
        self._rig = SimulationRig(
            codec=self.codec,
            allocator=self.batch_allocator,
            table=self.table,
            objective=self.objective,
            resolved_seed=resolved_seed,
        )
        # Backend/worker/host combinations were validated once, by
        # ``EvalConfig.__post_init__``.
        self._pool: "Optional[ParallelEvaluationPool | RpcEvaluationPool]" = None
        if self.backend == "parallel":
            self._pool = ParallelEvaluationPool(
                spec=EvaluatorSpec.capture(
                    self.codec, self.batch_allocator, self.table, self.objective,
                    resolved_seed=resolved_seed,
                ),
                num_workers=eval_config.workers,
            )
        elif self.backend == "rpc":
            # No hosts (or none alive) degrades to local evaluation — the
            # pool's contract is "use the fleet when it is there", so results
            # never depend on fleet health.
            self._pool = RpcEvaluationPool(
                spec=EvaluatorSpec.capture(
                    self.codec, self.batch_allocator, self.table, self.objective,
                    resolved_seed=resolved_seed,
                ),
                hosts=eval_config.hosts,
                token=eval_config.rpc_token,
            )
        self.sampling_budget = sampling_budget
        # Telemetry (docs/OBSERVABILITY.md): per-generation spans when the
        # process tracer is enabled, always-on cheap counters (one lock
        # update per generation, never per row).  Observation only — nothing
        # here feeds a seed, a fingerprint, or a control-flow decision.
        self._tracer = get_tracer()
        _metrics = get_metrics()
        self._m_evals = _metrics.counter(
            "repro_evals_total",
            "Fitness evaluations performed, by evaluation backend",
            labels={"backend": self.backend},
        )
        self._m_memo_hits = _metrics.counter(
            "repro_memo_hits_total", "Encoding->fitness memo-cache hits (no re-simulation)"
        )
        self._m_memo_misses = _metrics.counter(
            "repro_memo_misses_total", "Memo-cache misses (rows freshly simulated)"
        )
        self._m_row_events = _metrics.counter(
            "repro_kernel_row_events_total",
            "Simulated kernel row-events (freshly simulated rows x group size)",
        )
        #: Cumulative memo-cache statistics (the flight recorder reads these
        #: at the end of a search).
        self.memo_hits = 0
        self.memo_misses = 0
        #: Number of :meth:`evaluate_population` calls (≈ optimizer generations).
        self.generations = 0
        #: Memoized repaired-encoding -> fitness map used by the batch
        #: backend.  Hits skip re-simulation but still consume budget.
        self._fitness_cache: Dict[bytes, float] = {}
        #: When true, every evaluated encoding and its fitness are recorded
        #: (used by the exploration-visualisation experiment, Fig. 10).
        self.record_samples = False
        self._samples_used = 0
        self._best_fitness = -np.inf
        self._best_encoding: Optional[np.ndarray] = None
        self._history: List[float] = []
        self._sampled_encodings: List[np.ndarray] = []
        self._sampled_fitnesses: List[float] = []

    # ------------------------------------------------------------------
    # Budget / history bookkeeping
    # ------------------------------------------------------------------
    @property
    def samples_used(self) -> int:
        """Number of fitness evaluations performed so far."""
        return self._samples_used

    @property
    def budget_exhausted(self) -> bool:
        """True once the sampling budget (if any) has been consumed."""
        return self.sampling_budget is not None and self._samples_used >= self.sampling_budget

    @property
    def remaining_budget(self) -> Optional[int]:
        """Evaluations left before the budget is exhausted (None = unlimited)."""
        if self.sampling_budget is None:
            return None
        return max(0, self.sampling_budget - self._samples_used)

    @property
    def best_fitness(self) -> float:
        """Best fitness seen so far (-inf before the first evaluation)."""
        return self._best_fitness

    @property
    def best_encoding(self) -> Optional[np.ndarray]:
        """Copy of the best encoded mapping seen so far."""
        return None if self._best_encoding is None else self._best_encoding.copy()

    @property
    def history(self) -> List[float]:
        """Best-so-far fitness after each evaluation (convergence curve)."""
        return list(self._history)

    @property
    def sampled_encodings(self) -> np.ndarray:
        """All recorded encodings (empty unless ``record_samples`` is set)."""
        if not self._sampled_encodings:
            return np.empty((0, self.codec.encoding_length))
        return np.asarray(self._sampled_encodings)

    @property
    def sampled_fitnesses(self) -> np.ndarray:
        """Fitness of each recorded encoding (empty unless ``record_samples``)."""
        return np.asarray(self._sampled_fitnesses)

    def reset(self) -> None:
        """Clear the sample counter, history, and best-so-far record."""
        self._samples_used = 0
        self._best_fitness = -np.inf
        self._best_encoding = None
        self._history = []
        self._sampled_encodings = []
        self._sampled_fitnesses = []

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, encoding: np.ndarray, count_sample: bool = True) -> float:
        """Evaluate one encoded mapping and return its fitness.

        When *count_sample* is true (the default) the evaluation consumes one
        unit of the sampling budget and is recorded in the convergence
        history.  Heuristic mappers and reporting paths pass ``False``.
        """
        if count_sample and self.budget_exhausted:
            raise OptimizationError(
                f"sampling budget of {self.sampling_budget} evaluations exhausted"
            )
        repaired = self.codec.repair(np.asarray(encoding, dtype=float))
        if self.backend in ("batch",) + _POOLED_BACKENDS:
            # One-at-a-time callers (RL environments, heuristics, DE trials in
            # scalar-era code paths) share the population memo cache: repeated
            # encodings skip re-simulation but still charge budget below.
            # Single encodings are never dispatched to workers — the IPC cost
            # would dwarf the simulation.
            key = repaired.tobytes()
            fitness = self._fitness_cache.get(key)
            if fitness is None:
                self.memo_misses += 1
                self._m_memo_misses.inc()
                self._m_row_events.inc(self.group.size)
                fitness = float(self._scalar_fitness(repaired))
                if len(self._fitness_cache) < _FITNESS_CACHE_LIMIT:
                    self._fitness_cache[key] = fitness
            else:
                self.memo_hits += 1
                self._m_memo_hits.inc()
        else:
            # The scalar oracle must score the *repaired* encoding, exactly
            # like the batch path: simulating the raw vector would let the two
            # backends (and the recorded best_encoding's fitness) disagree on
            # out-of-domain encodings.
            fitness = self._scalar_fitness(repaired)
        self._m_evals.inc()
        if count_sample:
            self._record_sample(fitness, repaired)
        return fitness

    def evaluate_population(self, population: np.ndarray, count_samples: bool = True) -> np.ndarray:
        """Evaluate a ``(pop, 2G)`` array of encodings, respecting the budget.

        On the ``batch`` backend the whole population is decoded and simulated
        in one vectorized sweep (memoized per repaired encoding); ``parallel``
        shards the same sweep across worker processes; the ``scalar`` backend
        evaluates row by row.  All yield bit-identical fitnesses, history, and
        best-encoding.  If the budget runs out part-way through, the remaining
        individuals receive ``-inf`` fitness so population-based optimizers
        can finish their generation without over-spending samples.
        """
        population = np.atleast_2d(np.asarray(population, dtype=float))
        num = population.shape[0]
        fitnesses = np.full(num, -np.inf)
        if count_samples:
            remaining = self.remaining_budget
            num_evaluated = num if remaining is None else min(num, remaining)
        else:
            num_evaluated = num
        if num_evaluated == 0:
            return fitnesses

        self.generations += 1
        with self._tracer.span(
            "evaluator.generation",
            backend=self.backend,
            rows=int(num_evaluated),
            gen=self.generations,
        ):
            if self.backend in _POOLED_BACKENDS:
                values, repaired = self._memoized_fitnesses(
                    population[:num_evaluated], self._pool.evaluate
                )
            elif self.backend == "batch":
                values, repaired = self._memoized_fitnesses(
                    population[:num_evaluated], self._rig.fitnesses_for_rows
                )
            else:
                # The scalar oracle simulates the repaired rows (the batch path
                # always has), so out-of-domain encodings score identically.
                repaired = np.stack(
                    [self.codec.repair(population[i]) for i in range(num_evaluated)]
                )
                values = np.array(
                    [self._scalar_fitness(repaired[i]) for i in range(num_evaluated)]
                )
                self._m_row_events.inc(int(num_evaluated) * self.group.size)
        self._m_evals.inc(int(num_evaluated))

        fitnesses[:num_evaluated] = values
        if count_samples:
            self._record_population(values, repaired)
        return fitnesses

    # ------------------------------------------------------------------
    # Backend internals
    # ------------------------------------------------------------------
    def _record_sample(self, fitness: float, repaired: np.ndarray) -> None:
        """Charge one budget sample and update the best/history bookkeeping."""
        self._samples_used += 1
        if fitness > self._best_fitness:
            self._best_fitness = fitness
            self._best_encoding = repaired
        self._history.append(self._best_fitness)
        if self.record_samples:
            self._sampled_encodings.append(repaired)
            self._sampled_fitnesses.append(fitness)

    def _record_population(self, fitnesses: np.ndarray, repaired: np.ndarray) -> None:
        """Vectorized :meth:`_record_sample` over a whole evaluated population.

        Produces exactly the bookkeeping a per-row loop would — the running
        best is a cumulative maximum seeded with the previous best, and the
        best encoding is the first row achieving the new maximum — but in a
        handful of array ops, so ``record_samples=True`` reporting runs
        (Fig. 10/15-style full-timeline recording) stay on the fast path.
        """
        num = len(fitnesses)
        self._samples_used += num
        running_best = np.maximum.accumulate(np.maximum(fitnesses, self._best_fitness))
        self._history.extend(float(v) for v in running_best)
        new_best = float(running_best[-1])
        if new_best > self._best_fitness:
            self._best_fitness = new_best
            self._best_encoding = repaired[int(np.argmax(fitnesses))].copy()
        if self.record_samples:
            self._sampled_encodings.extend(repaired[i].copy() for i in range(num))
            self._sampled_fitnesses.extend(float(v) for v in fitnesses)

    def _scalar_fitness(self, encoding: np.ndarray) -> float:
        """Reference fitness of one encoding via the scalar allocator."""
        mapping = self.codec.decode(encoding)
        makespan = self.allocator.makespan_cycles(mapping, self.table)
        schedule = self._lightweight_schedule(makespan)
        return self.objective.fitness(schedule, mapping, self.table)

    def _memoized_fitnesses(
        self, population: np.ndarray, simulate: Callable[[np.ndarray], np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fitness of every row, memoized; *simulate* scores the cache misses.

        Returns ``(fitnesses, repaired)``.  Rows whose repaired encoding was
        seen before (earlier generations or duplicates within this batch) are
        served from the cache without re-simulation; only the unique misses
        reach *simulate* — the in-process batch sweep or the worker pool.
        Freshly computed fitnesses merge back into the main-process cache, so
        parallel workers never need shared state.
        """
        repaired = self.codec.repair_batch(population)
        keys = [row.tobytes() for row in repaired]
        fresh: Dict[bytes, int] = {}
        for i, key in enumerate(keys):
            if key not in self._fitness_cache and key not in fresh:
                fresh[key] = i
        hits = len(keys) - len(fresh)
        self.memo_hits += hits
        self.memo_misses += len(fresh)
        if hits:
            self._m_memo_hits.inc(hits)
        computed: Dict[bytes, float] = {}
        if fresh:
            self._m_memo_misses.inc(len(fresh))
            self._m_row_events.inc(len(fresh) * self.group.size)
            values = simulate(repaired[list(fresh.values())])
            computed = {key: float(values[slot]) for slot, key in enumerate(fresh)}
            if len(self._fitness_cache) < _FITNESS_CACHE_LIMIT:
                self._fitness_cache.update(computed)
        fitnesses = np.array(
            [computed.get(key, self._fitness_cache.get(key)) for key in keys], dtype=float
        )
        return fitnesses, repaired

    def detailed_evaluation(self, encoding: np.ndarray) -> EvaluationResult:
        """Evaluate one encoding and return the decoded mapping plus metrics.

        The encoding is repaired first, so the metrics always describe the
        same point the search fitness was measured at — a continuous
        optimizer's raw, out-of-domain vector must not yield a different
        result than its recorded (repaired) counterpart.
        """
        repaired = self.codec.repair(np.asarray(encoding, dtype=float))
        mapping = self.codec.decode(repaired)
        schedule = self.allocator.allocate(mapping, self.table)
        fitness = self.objective.fitness(schedule, mapping, self.table)
        value = self.objective.report_value(schedule, mapping, self.table)
        return EvaluationResult(
            fitness=fitness,
            objective_value=value,
            makespan_cycles=schedule.makespan_cycles,
            mapping=mapping,
        )

    def schedule_for(self, encoding: np.ndarray) -> Schedule:
        """Return the full schedule (timeline + bandwidth segments) of an encoding.

        Repairs before decoding, for the same reason as
        :meth:`detailed_evaluation`.
        """
        repaired = self.codec.repair(np.asarray(encoding, dtype=float))
        mapping = self.codec.decode(repaired)
        return self.allocator.allocate(mapping, self.table)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (the parallel/rpc backends' worker pools).

        Safe to call on any backend and more than once; a closed pooled
        evaluator lazily restarts its pool (or re-dials its workers) if it is
        used again.  RPC workers themselves keep serving — only this
        coordinator's connections are dropped.
        """
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "MappingEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _lightweight_schedule(self, makespan_cycles: float) -> Schedule:
        """Build a minimal Schedule carrying only the makespan.

        The throughput / latency objectives only need the makespan and the
        total FLOPs; skipping the per-job timeline keeps the inner loop of
        10K-sample searches fast.  Delegates to the rig so the scalar oracle
        and the batch/parallel paths share one construction.
        """
        return self._rig.summary_schedule(makespan_cycles)
