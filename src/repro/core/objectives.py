"""Optimization objectives (Section IV-C of the paper).

The primary objective is throughput, but M3E accepts any objective that can
be computed from a schedule and the job analysis table: latency, energy,
energy-delay-product, and performance-per-watt are provided.  Objectives are
always *maximised*; objectives that are naturally "lower is better" return a
negated/inverted fitness so every optimizer can treat fitness uniformly.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Type

import numpy as np

from repro.core.analyzer import JobAnalysisTable
from repro.core.encoding import Mapping
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError


class Objective(abc.ABC):
    """Base class for objectives: maps a schedule to a scalar fitness (higher = better)."""

    #: Registry name, set by subclasses.
    name: str = "objective"

    #: Whether :meth:`fitness` reads the decoded :class:`Mapping`.  The batch
    #: evaluation backend only materialises per-individual Mapping objects for
    #: objectives that need them (energy-family); makespan-only objectives set
    #: this to ``False`` and may receive ``mapping=None`` on the fast path.
    needs_mapping: bool = True

    @abc.abstractmethod
    def fitness(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        """Return the fitness (to maximise) of one evaluated mapping."""

    @abc.abstractmethod
    def report_value(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        """Return the value in natural units for reporting (e.g. GFLOP/s, joules)."""

    def fitness_batch(
        self, makespans: np.ndarray, table: JobAnalysisTable, frequency_hz: float
    ) -> Optional[np.ndarray]:
        """Vectorized fitness of a whole population from its makespans.

        Returns ``None`` when the objective has no vectorized form (the
        caller then falls back to per-row :meth:`fitness`).  Implementations
        must mirror :meth:`fitness` *elementwise*: the same IEEE-754
        operations in the same order, so a population scored here is
        bit-identical to scoring each row through a summary
        :class:`Schedule` — the backend-equivalence property tests enforce
        this for every registered objective.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ThroughputObjective(Objective):
    """Maximise group throughput (total FLOPs / makespan), the paper's default."""

    name = "throughput"
    needs_mapping = False

    def fitness(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        return schedule.throughput_gflops

    def report_value(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        return schedule.throughput_gflops

    def fitness_batch(
        self, makespans: np.ndarray, table: JobAnalysisTable, frequency_hz: float
    ) -> np.ndarray:
        # Same three operations Schedule.throughput_gflops performs per row
        # (cycles -> seconds, flops / seconds, / 1e9), so each element is
        # bit-identical to the scalar property; non-positive makespans score
        # 0.0 exactly as the property's guard does.
        seconds = makespans / frequency_hz
        fitnesses = np.zeros_like(seconds)
        positive = seconds > 0
        np.divide(table.total_flops, seconds, out=fitnesses, where=positive)
        np.divide(fitnesses, 1e9, out=fitnesses, where=positive)
        return fitnesses


class LatencyObjective(Objective):
    """Minimise the makespan of the group (fitness is the negated makespan)."""

    name = "latency"
    needs_mapping = False

    def fitness(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        return -schedule.makespan_cycles

    def report_value(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        return schedule.makespan_cycles

    def fitness_batch(
        self, makespans: np.ndarray, table: JobAnalysisTable, frequency_hz: float
    ) -> np.ndarray:
        return -makespans


class EnergyObjective(Objective):
    """Minimise total energy of the group (fitness is the negated energy)."""

    name = "energy"

    def _total_energy(self, mapping: Mapping, table: JobAnalysisTable) -> float:
        total = 0.0
        for core, core_jobs in enumerate(mapping.assignments):
            for job_index in core_jobs:
                total += float(table.energy_joules[job_index, core])
        return total

    def fitness(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        return -self._total_energy(mapping, table)

    def report_value(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        return self._total_energy(mapping, table)


class EDPObjective(Objective):
    """Minimise the energy-delay product (energy x makespan seconds)."""

    name = "edp"

    def fitness(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        energy = EnergyObjective().report_value(schedule, mapping, table)
        return -(energy * schedule.makespan_seconds)

    def report_value(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        energy = EnergyObjective().report_value(schedule, mapping, table)
        return energy * schedule.makespan_seconds


class PerformancePerWattObjective(Objective):
    """Maximise throughput per watt (GFLOP/s / average power)."""

    name = "performance_per_watt"

    def fitness(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        return self.report_value(schedule, mapping, table)

    def report_value(self, schedule: Schedule, mapping: Mapping, table: JobAnalysisTable) -> float:
        energy = EnergyObjective().report_value(schedule, mapping, table)
        seconds = schedule.makespan_seconds
        if seconds <= 0 or energy <= 0:
            return 0.0
        average_power_watts = energy / seconds
        return schedule.throughput_gflops / average_power_watts


_OBJECTIVES: Dict[str, Type[Objective]] = {
    cls.name: cls
    for cls in (
        ThroughputObjective,
        LatencyObjective,
        EnergyObjective,
        EDPObjective,
        PerformancePerWattObjective,
    )
}


def get_objective(name: str | Objective) -> Objective:
    """Look up an objective by name (or pass an instance through)."""
    if isinstance(name, Objective):
        return name
    key = name.lower()
    if key not in _OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {name!r}; available: {sorted(_OBJECTIVES)}"
        )
    return _OBJECTIVES[key]()


def list_objectives() -> list[str]:
    """Names of the available objectives."""
    return sorted(_OBJECTIVES)
