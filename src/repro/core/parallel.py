"""Sharded multi-process evaluation backend (the ``parallel`` eval backend).

The batch evaluation engine simulates a whole population in one vectorized
sweep, but a single process can only use one core.  The population sweep is
embarrassingly parallel across *rows* (each individual's simulation is
independent), so this module shards a population across a persistent pool of
worker processes:

* :class:`EvaluatorSpec` is a small picklable recipe — codec shape, system
  bandwidth, objective, and the dense Job Analysis Table arrays — from which
  a worker can rebuild the full evaluation state without ever shipping the
  (heavier, model-bearing) :class:`~repro.workloads.groups.JobGroup` or
  platform objects across the process boundary.
* :class:`SimulationRig` is the reconstructed state: codec + batched
  allocator + table + objective.  The in-process ``batch`` backend and the
  workers run the *same* rig code path, which is what makes the ``parallel``
  backend bit-identical to ``batch`` by construction.
* :class:`ParallelEvaluationPool` owns the worker pool: it bootstraps each
  worker once (``initializer`` rebuilds the rig from the spec), splits a
  population of repaired encodings into deterministic contiguous shards,
  gathers the per-shard fitness arrays preserving row order, and is reused
  across generations until :meth:`ParallelEvaluationPool.close`.

Memoization stays in the main process: the evaluator dispatches only rows
that miss its encoding -> fitness cache and merges the freshly computed
fitnesses back, so workers never need a shared cache (and duplicate rows are
simulated exactly once per search, same as the ``batch`` backend).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.analyzer import JobAnalysisTable
from repro.core.bw_allocator import BatchBandwidthAllocator
from repro.core.encoding import MappingCodec
from repro.core.objectives import Objective, get_objective
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError

#: Shards smaller than this are simulated inline in the main process: the
#: pickling + dispatch overhead would exceed the simulation cost.
MIN_ROWS_PER_WORKER = 8


def split_shards(
    rows: np.ndarray,
    num_workers: int,
    min_rows_per_worker: int = MIN_ROWS_PER_WORKER,
) -> List[np.ndarray]:
    """Split *rows* into deterministic contiguous shards, one per worker.

    This is the one sharding policy every distributed evaluation backend
    uses (:class:`ParallelEvaluationPool` across processes,
    :class:`~repro.core.rpc.RpcEvaluationPool` across hosts): contiguous
    ``np.array_split`` chunks in row order, never more shards than workers,
    and never shards so small that dispatch overhead exceeds the simulation
    cost (populations below ``2 * min_rows_per_worker`` collapse to a single
    shard).  An empty population yields no shards.
    """
    rows = np.asarray(rows)
    if len(rows) == 0:
        return []
    num_shards = min(max(1, int(num_workers)), max(1, len(rows) // min_rows_per_worker))
    return [shard for shard in np.array_split(rows, num_shards) if len(shard)]


def gather_rows(results: Sequence[np.ndarray]) -> np.ndarray:
    """Reassemble per-shard fitness arrays into one row-ordered array.

    The inverse of :func:`split_shards`: because shards are contiguous and
    *results* arrive in shard order, concatenation restores the original row
    order exactly — this is what keeps the sharded backends bit-identical to
    the in-process ``batch`` sweep.
    """
    arrays = [np.asarray(result, dtype=float) for result in results]
    if not arrays:
        return np.empty(0, dtype=float)
    return np.concatenate(arrays)


def resolve_num_workers(num_workers: Optional[int]) -> int:
    """Resolve a worker-count request against the machine's CPU count.

    ``None`` (auto) uses every available core, capped at 8 — population
    shards are overhead-bound below ~25 rows, so more workers than that
    rarely helps.  Explicit requests are honoured as given.
    """
    if num_workers is None:
        return max(1, min(os.cpu_count() or 1, 8))
    if num_workers < 1:
        raise ConfigurationError(f"eval workers must be >= 1, got {num_workers}")
    return int(num_workers)


@dataclass(frozen=True, eq=False)
class EvaluatorSpec:
    """Picklable recipe for rebuilding per-worker evaluation state.

    Carries exactly what the decode -> BW-allocate -> fitness loop needs:
    the codec shape, the shared-bandwidth constraint, the objective, and the
    dense Job Analysis Table arrays.  Everything here pickles cheaply (NumPy
    arrays plus scalars), so the spec crosses the process boundary once per
    worker regardless of how many generations the pool serves.

    ``eq=False``: a generated ``__eq__`` would be wrong here (ndarray
    comparison is elementwise, objectives compare by identity), so specs keep
    identity semantics.
    """

    num_jobs: int
    num_sub_accelerators: int
    system_bandwidth_gbps: float
    frequency_hz: float
    objective: Objective
    latency_cycles: np.ndarray
    required_bw_gbps: np.ndarray
    energy_joules: np.ndarray
    dram_traffic_bytes: np.ndarray
    job_flops: np.ndarray
    #: The search's resolved seed, carried to every worker so worker-side
    #: randomness (if any is ever added) derives from the coordinator's seed
    #: policy instead of being re-resolved per process.  ``None`` when the
    #: search itself is unseeded.
    resolved_seed: Optional[int] = None

    @classmethod
    def capture(
        cls,
        codec: MappingCodec,
        allocator: BatchBandwidthAllocator,
        table: JobAnalysisTable,
        objective: Objective | str,
        resolved_seed: Optional[int] = None,
    ) -> "EvaluatorSpec":
        """Snapshot an evaluator's state into a spec (arrays are shared, not copied)."""
        return cls(
            num_jobs=codec.num_jobs,
            num_sub_accelerators=codec.num_sub_accelerators,
            system_bandwidth_gbps=allocator.system_bandwidth_gbps,
            frequency_hz=allocator.frequency_hz,
            objective=get_objective(objective),
            latency_cycles=table.latency_cycles,
            required_bw_gbps=table.required_bw_gbps,
            energy_joules=table.energy_joules,
            dram_traffic_bytes=table.dram_traffic_bytes,
            job_flops=table.job_flops,
            resolved_seed=resolved_seed,
        )

    def build_rig(self) -> "SimulationRig":
        """Reconstruct the full evaluation state described by this spec."""
        table = JobAnalysisTable(
            latency_cycles=self.latency_cycles,
            required_bw_gbps=self.required_bw_gbps,
            energy_joules=self.energy_joules,
            dram_traffic_bytes=self.dram_traffic_bytes,
            job_flops=self.job_flops,
        )
        return SimulationRig(
            codec=MappingCodec(
                num_jobs=self.num_jobs,
                num_sub_accelerators=self.num_sub_accelerators,
            ),
            allocator=BatchBandwidthAllocator(
                system_bandwidth_gbps=self.system_bandwidth_gbps,
                frequency_hz=self.frequency_hz,
            ),
            table=table,
            objective=self.objective,
            resolved_seed=self.resolved_seed,
        )


class SimulationRig:
    """Codec + batched allocator + table + objective: the row-fitness engine.

    ``fitnesses_for_rows`` is the one implementation of "simulate these
    repaired encodings and score them" — the ``batch`` backend calls it in
    process and every ``parallel`` worker calls it on its shard, so the two
    backends cannot drift apart numerically.
    """

    def __init__(
        self,
        codec: MappingCodec,
        allocator: BatchBandwidthAllocator,
        table: JobAnalysisTable,
        objective: Objective,
        resolved_seed: Optional[int] = None,
    ):
        self.codec = codec
        self.allocator = allocator
        self.table = table
        self.objective = objective
        #: The coordinating search's resolved seed (see EvaluatorSpec).
        self.resolved_seed = resolved_seed

    def fitnesses_for_rows(self, rows: np.ndarray) -> np.ndarray:
        """Fitness of each (already repaired) encoding row, in row order."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        batch = self.codec.decode_batch(rows)
        makespans = self.allocator.makespan_cycles(batch, self.table)
        fitnesses = np.empty(len(rows), dtype=float)
        for slot in range(len(rows)):
            schedule = self.summary_schedule(float(makespans[slot]))
            mapping = batch.mapping(slot) if self.objective.needs_mapping else None
            fitnesses[slot] = float(self.objective.fitness(schedule, mapping, self.table))
        return fitnesses

    def summary_schedule(self, makespan_cycles: float) -> Schedule:
        """Minimal Schedule carrying only the makespan (the fast fitness path)."""
        return Schedule(
            jobs=(),
            segments=(),
            num_sub_accelerators=self.codec.num_sub_accelerators,
            total_flops=self.table.total_flops,
            frequency_hz=self.allocator.frequency_hz,
            makespan_cycles_override=makespan_cycles,
        )


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------
#: Per-worker rig, rebuilt once by the pool initializer (module-global so the
#: map function can reach it; each worker process has its own copy).
_WORKER_RIG: Optional[SimulationRig] = None


def _bootstrap_worker(spec: EvaluatorSpec) -> None:
    """Pool initializer: rebuild the evaluation state once per worker.

    The coordinator's resolved seed travels inside the spec: a parallel
    worker is dedicated to one coordinator, so installing it as the worker's
    session seed means any worker-side randomness derives from the search's
    own seed policy rather than re-resolving (or falling back to entropy)
    in the child process.
    """
    global _WORKER_RIG
    _WORKER_RIG = spec.build_rig()
    if spec.resolved_seed is not None:
        from repro.utils.rng import set_global_seed

        set_global_seed(spec.resolved_seed, source="worker-bootstrap")


def _evaluate_shard(rows: np.ndarray) -> np.ndarray:
    """Map function: fitness of one contiguous shard of repaired encodings."""
    if _WORKER_RIG is None:  # pragma: no cover - defensive, initializer always runs
        raise RuntimeError("parallel evaluation worker used before bootstrap")
    return _WORKER_RIG.fitnesses_for_rows(rows)


# ----------------------------------------------------------------------
# Main process side
# ----------------------------------------------------------------------
class ParallelEvaluationPool:
    """Persistent pool of evaluation workers sharing one :class:`EvaluatorSpec`.

    The pool is created lazily on the first evaluation, reused across
    generations (workers keep their reconstructed rig for their lifetime),
    and shut down cleanly by :meth:`close` (also invoked on garbage
    collection and by ``with`` blocks).  Sharding is deterministic:
    ``np.array_split`` contiguous chunks in row order, one per worker, and
    the gathered result preserves row order exactly.
    """

    def __init__(
        self,
        spec: EvaluatorSpec,
        num_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        self.spec = spec
        self.num_workers = resolve_num_workers(num_workers)
        if start_method is None:
            # fork reuses the parent's imported modules (cheap bootstrap);
            # spawn is the portable fallback and works because the spec is
            # picklable and the worker entry points are module-level.
            start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.start_method = start_method
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._fallback_rig: Optional[SimulationRig] = None

    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        """True while worker processes are alive."""
        return self._pool is not None

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(
                processes=self.num_workers,
                initializer=_bootstrap_worker,
                initargs=(self.spec,),
            )
        return self._pool

    def _shards(self, rows: np.ndarray) -> List[np.ndarray]:
        """Deterministic contiguous-chunk assignment, one shard per worker."""
        return split_shards(rows, self.num_workers)

    def evaluate(self, rows: np.ndarray) -> np.ndarray:
        """Fitness of each (already repaired) encoding row, preserving row order."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if len(rows) == 0:
            return np.empty(0, dtype=float)
        shards = self._shards(rows)
        if len(shards) == 1:
            # A single shard gains nothing from IPC (one worker would do all
            # the work anyway); run it in process and leave the pool alone.
            return self._local_rig().fitnesses_for_rows(rows)
        results = self._ensure_pool().map(_evaluate_shard, shards)
        return gather_rows(results)

    def _local_rig(self) -> SimulationRig:
        if self._fallback_rig is None:
            self._fallback_rig = self.spec.build_rig()
        return self._fallback_rig

    def warm_up(self) -> None:
        """Start the workers eagerly (used by benchmarks to exclude startup cost)."""
        pool = self._ensure_pool()
        pool.map(_evaluate_shard, [np.empty((0, 2 * self.spec.num_jobs))])

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker processes down; the pool can be lazily re-created."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelEvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self._pool is not None:
                self._pool.terminate()
        except Exception:  # repro-lint: disable=RPL502 — GC finalizer must never raise
            pass
