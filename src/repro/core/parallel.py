"""Sharded multi-process evaluation backend (the ``parallel`` eval backend).

The batch evaluation engine simulates a whole population in one vectorized
sweep, but a single process can only use one core.  The population sweep is
embarrassingly parallel across *rows* (each individual's simulation is
independent), so this module shards a population across a persistent pool of
worker processes:

* :class:`EvaluatorSpec` is a small picklable recipe — codec shape, system
  bandwidth, objective, and the dense Job Analysis Table arrays — from which
  a worker can rebuild the full evaluation state without ever shipping the
  (heavier, model-bearing) :class:`~repro.workloads.groups.JobGroup` or
  platform objects across the process boundary.
* :class:`SimulationRig` is the reconstructed state: codec + batched
  allocator + table + objective.  The in-process ``batch`` backend and the
  workers run the *same* rig code path, which is what makes the ``parallel``
  backend bit-identical to ``batch`` by construction.
* :class:`ParallelEvaluationPool` owns the worker pool: it bootstraps each
  worker once (``initializer`` rebuilds the rig from the spec), splits a
  population of repaired encodings into fixed-size work-stealing chunks that
  idle workers pull from the pool's shared task queue, scatters each chunk's
  fitnesses at its own row offset (row order is positional, so any steal
  schedule gathers identically), and is reused across generations until
  :meth:`ParallelEvaluationPool.close`.  Arrays travel zero-copy through a
  :class:`SharedMemoryRing` — workers read encodings and write fitness rows
  in place — with the original pickle transport as the fallback where
  ``multiprocessing.shared_memory`` is unavailable.

Memoization stays in the main process: the evaluator dispatches only rows
that miss its encoding -> fitness cache and merges the freshly computed
fitnesses back, so workers never need a shared cache (and duplicate rows are
simulated exactly once per search, same as the ``batch`` backend).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - stdlib on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without shm support
    _shared_memory = None

from repro.core.analyzer import JobAnalysisTable
from repro.core.bw_allocator import BatchBandwidthAllocator
from repro.core.encoding import MappingCodec
from repro.core.objectives import Objective, get_objective
from repro.core.schedule import Schedule
from repro.exceptions import ConfigurationError
from repro.obs import get_metrics, get_tracer

#: Shards smaller than this are simulated inline in the main process: the
#: pickling + dispatch overhead would exceed the simulation cost.
MIN_ROWS_PER_WORKER = 8

#: Height of one work-stealing chunk: the fixed unit of dispatch every
#: distributed backend pulls from its shared queue.  Small enough that a slow
#: worker strands at most one chunk's worth of latency, large enough that the
#: per-chunk dispatch overhead stays amortised (see BENCH_dispatch.json).
DEFAULT_CHUNK_ROWS = 16

#: Test seams for the fault-injection property tests (inherited by forked
#: workers at pool creation): a per-chunk delay to simulate slow workers, and
#: a chunk start row whose worker kills itself mid-task to simulate a crash.
_FAULT_DELAY_S: float = 0.0
_FAULT_KILL_CHUNK_START: Optional[int] = None


def split_shards(
    rows: np.ndarray,
    num_workers: int,
    min_rows_per_worker: int = MIN_ROWS_PER_WORKER,
) -> List[np.ndarray]:
    """Split *rows* into deterministic contiguous shards, one per worker.

    The static sharding policy (one contiguous ``np.array_split`` block per
    worker, assigned up front): never more shards than workers, and never
    shards so small that dispatch overhead exceeds the simulation cost
    (populations below ``2 * min_rows_per_worker`` collapse to a single
    shard).  An empty population yields no shards.  The distributed pools
    now *dispatch* via work-stealing :func:`split_chunks`, but this remains
    the reference partition the equivalence property tests compare against.
    """
    rows = np.asarray(rows)
    if len(rows) == 0:
        return []
    num_shards = min(max(1, int(num_workers)), max(1, len(rows) // min_rows_per_worker))
    return [shard for shard in np.array_split(rows, num_shards) if len(shard)]


def split_chunks(num_rows: int, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> List[Tuple[int, int]]:
    """Fixed-size contiguous ``(start, stop)`` chunks — the work-stealing unit.

    Unlike :func:`split_shards` (one contiguous block per worker, assigned
    up front), chunks are *pulled* from a shared queue by whichever worker
    goes idle first.  Each chunk writes its fitnesses at its own row offset,
    so the gathered result is row-ordered no matter which worker computed
    which chunk or in what order — and because every row's simulation is
    independent (the batch kernel is elementwise per row), the values are
    bit-identical for every chunk size and steal schedule.
    """
    if chunk_rows < 1:
        raise ConfigurationError(f"chunk_rows must be >= 1, got {chunk_rows}")
    return [
        (start, min(start + chunk_rows, int(num_rows)))
        for start in range(0, int(num_rows), chunk_rows)
    ]


def gather_rows(results: Sequence[np.ndarray]) -> np.ndarray:
    """Reassemble per-shard fitness arrays into one row-ordered array.

    The inverse of :func:`split_shards`: because shards are contiguous and
    *results* arrive in shard order, concatenation restores the original row
    order exactly — this is what keeps the sharded backends bit-identical to
    the in-process ``batch`` sweep.
    """
    arrays = [np.asarray(result, dtype=float) for result in results]
    if not arrays:
        return np.empty(0, dtype=float)
    return np.concatenate(arrays)


def resolve_num_workers(num_workers: Optional[int]) -> int:
    """Resolve a worker-count request against the machine's CPU count.

    ``None`` (auto) uses every available core, capped at 8 — population
    shards are overhead-bound below ~25 rows, so more workers than that
    rarely helps.  Explicit requests are honoured as given.
    """
    if num_workers is None:
        return max(1, min(os.cpu_count() or 1, 8))
    if num_workers < 1:
        raise ConfigurationError(f"eval workers must be >= 1, got {num_workers}")
    return int(num_workers)


@dataclass(frozen=True, eq=False)
class EvaluatorSpec:
    """Picklable recipe for rebuilding per-worker evaluation state.

    Carries exactly what the decode -> BW-allocate -> fitness loop needs:
    the codec shape, the shared-bandwidth constraint, the objective, and the
    dense Job Analysis Table arrays.  Everything here pickles cheaply (NumPy
    arrays plus scalars), so the spec crosses the process boundary once per
    worker regardless of how many generations the pool serves.

    ``eq=False``: a generated ``__eq__`` would be wrong here (ndarray
    comparison is elementwise, objectives compare by identity), so specs keep
    identity semantics.
    """

    num_jobs: int
    num_sub_accelerators: int
    system_bandwidth_gbps: float
    frequency_hz: float
    objective: Objective
    latency_cycles: np.ndarray
    required_bw_gbps: np.ndarray
    energy_joules: np.ndarray
    dram_traffic_bytes: np.ndarray
    job_flops: np.ndarray
    #: The search's resolved seed, carried to every worker so worker-side
    #: randomness (if any is ever added) derives from the coordinator's seed
    #: policy instead of being re-resolved per process.  ``None`` when the
    #: search itself is unseeded.
    resolved_seed: Optional[int] = None

    @classmethod
    def capture(
        cls,
        codec: MappingCodec,
        allocator: BatchBandwidthAllocator,
        table: JobAnalysisTable,
        objective: Objective | str,
        resolved_seed: Optional[int] = None,
    ) -> "EvaluatorSpec":
        """Snapshot an evaluator's state into a spec (arrays are shared, not copied)."""
        return cls(
            num_jobs=codec.num_jobs,
            num_sub_accelerators=codec.num_sub_accelerators,
            system_bandwidth_gbps=allocator.system_bandwidth_gbps,
            frequency_hz=allocator.frequency_hz,
            objective=get_objective(objective),
            latency_cycles=table.latency_cycles,
            required_bw_gbps=table.required_bw_gbps,
            energy_joules=table.energy_joules,
            dram_traffic_bytes=table.dram_traffic_bytes,
            job_flops=table.job_flops,
            resolved_seed=resolved_seed,
        )

    def build_rig(self) -> "SimulationRig":
        """Reconstruct the full evaluation state described by this spec."""
        table = JobAnalysisTable(
            latency_cycles=self.latency_cycles,
            required_bw_gbps=self.required_bw_gbps,
            energy_joules=self.energy_joules,
            dram_traffic_bytes=self.dram_traffic_bytes,
            job_flops=self.job_flops,
        )
        return SimulationRig(
            codec=MappingCodec(
                num_jobs=self.num_jobs,
                num_sub_accelerators=self.num_sub_accelerators,
            ),
            allocator=BatchBandwidthAllocator(
                system_bandwidth_gbps=self.system_bandwidth_gbps,
                frequency_hz=self.frequency_hz,
            ),
            table=table,
            objective=self.objective,
            resolved_seed=self.resolved_seed,
        )


class SimulationRig:
    """Codec + batched allocator + table + objective: the row-fitness engine.

    ``fitnesses_for_rows`` is the one implementation of "simulate these
    repaired encodings and score them" — the ``batch`` backend calls it in
    process and every ``parallel`` worker calls it on its shard, so the two
    backends cannot drift apart numerically.
    """

    def __init__(
        self,
        codec: MappingCodec,
        allocator: BatchBandwidthAllocator,
        table: JobAnalysisTable,
        objective: Objective,
        resolved_seed: Optional[int] = None,
    ):
        self.codec = codec
        self.allocator = allocator
        self.table = table
        self.objective = objective
        #: The coordinating search's resolved seed (see EvaluatorSpec).
        self.resolved_seed = resolved_seed

    def fitnesses_for_rows(self, rows: np.ndarray) -> np.ndarray:
        """Fitness of each (already repaired) encoding row, in row order."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        batch = self.codec.decode_batch(rows)
        makespans = self.allocator.makespan_cycles(batch, self.table)
        # Makespan-only objectives (the default throughput, latency) score the
        # whole population in a few ufuncs, elementwise bit-identical to the
        # per-row path below; mapping-reading objectives fall through to it.
        vectorized = self.objective.fitness_batch(
            makespans, self.table, self.allocator.frequency_hz
        )
        if vectorized is not None:
            return np.asarray(vectorized, dtype=float)
        fitnesses = np.empty(len(rows), dtype=float)
        for slot in range(len(rows)):
            schedule = self.summary_schedule(float(makespans[slot]))
            mapping = batch.mapping(slot) if self.objective.needs_mapping else None
            fitnesses[slot] = float(self.objective.fitness(schedule, mapping, self.table))
        return fitnesses

    def summary_schedule(self, makespan_cycles: float) -> Schedule:
        """Minimal Schedule carrying only the makespan (the fast fitness path)."""
        return Schedule(
            jobs=(),
            segments=(),
            num_sub_accelerators=self.codec.num_sub_accelerators,
            total_flops=self.table.total_flops,
            frequency_hz=self.allocator.frequency_hz,
            makespan_cycles_override=makespan_cycles,
        )


# ----------------------------------------------------------------------
# Zero-copy transport: shared-memory ring
# ----------------------------------------------------------------------
class SharedMemoryRing:
    """Rotating ring of named shared-memory slots for zero-copy dispatch.

    One generation's traffic — the repaired population in and the fitness
    row out — lives in a single slot; consecutive generations rotate through
    the slots so a straggler still reading slot ``k`` can never observe slot
    ``k``'s next reuse until a full rotation later.  Slots are created
    lazily and grown (never shrunk) to the largest population seen; the
    coordinator owns them and unlinks them all on :meth:`close`.
    """

    def __init__(self, slots: int = 2):
        if _shared_memory is None:  # pragma: no cover - exotic builds
            raise ConfigurationError("multiprocessing.shared_memory is unavailable")
        self._slots: List[Optional["_shared_memory.SharedMemory"]] = [None] * max(2, slots)
        self._turn = 0

    def acquire(self, nbytes: int) -> "_shared_memory.SharedMemory":
        """Next slot in rotation, (re)created if absent or too small."""
        index = self._turn % len(self._slots)
        self._turn += 1
        segment = self._slots[index]
        if segment is None or segment.size < nbytes:
            if segment is not None:
                segment.close()
                segment.unlink()
            segment = _shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)))
            self._slots[index] = segment
        return segment

    def close(self) -> None:
        """Release and unlink every slot (idempotent)."""
        for index, segment in enumerate(self._slots):
            if segment is None:
                continue
            self._slots[index] = None
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------
#: Per-worker rig, rebuilt once by the pool initializer (module-global so the
#: map function can reach it; each worker process has its own copy).
_WORKER_RIG: Optional[SimulationRig] = None

#: Per-worker shared-memory attachments, cached by segment name so each ring
#: slot is mapped once per worker process, not once per chunk.
_WORKER_SHM: Dict[str, "_shared_memory.SharedMemory"] = {}

#: Attachment cache bound: ring slots are few, but a long-lived worker serving
#: many coordinators should not accumulate dead mappings without limit.
_WORKER_SHM_CACHE_LIMIT = 8


def _attach_shared_memory(name: str) -> "_shared_memory.SharedMemory":
    """Attach to (or reuse the cached mapping of) one named ring slot."""
    segment = _WORKER_SHM.get(name)
    if segment is None:
        while len(_WORKER_SHM) >= _WORKER_SHM_CACHE_LIMIT:
            stale = _WORKER_SHM.pop(next(iter(_WORKER_SHM)))  # oldest attachment
            stale.close()
        segment = _shared_memory.SharedMemory(name=name)
        _WORKER_SHM[name] = segment
    return segment


def _bootstrap_worker(spec: EvaluatorSpec) -> None:
    """Pool initializer: rebuild the evaluation state once per worker.

    The coordinator's resolved seed travels inside the spec: a parallel
    worker is dedicated to one coordinator, so installing it as the worker's
    session seed means any worker-side randomness derives from the search's
    own seed policy rather than re-resolving (or falling back to entropy)
    in the child process.
    """
    global _WORKER_RIG
    _WORKER_RIG = spec.build_rig()
    if spec.resolved_seed is not None:
        from repro.utils.rng import set_global_seed

        set_global_seed(spec.resolved_seed, source="worker-bootstrap")


def _evaluate_shard(rows: np.ndarray) -> np.ndarray:
    """Map function: fitness of one contiguous shard of repaired encodings."""
    if _WORKER_RIG is None:  # pragma: no cover - defensive, initializer always runs
        raise RuntimeError("parallel evaluation worker used before bootstrap")
    return _WORKER_RIG.fitnesses_for_rows(rows)


def _inject_chunk_faults(start: int) -> None:
    """Honour the fault-injection test seams (no-ops in production)."""
    if _FAULT_DELAY_S > 0.0:
        time.sleep(_FAULT_DELAY_S)
    if _FAULT_KILL_CHUNK_START is not None and start == _FAULT_KILL_CHUNK_START:
        os._exit(1)  # simulate a worker crash mid-chunk


def _evaluate_chunk(task: Tuple[int, np.ndarray]) -> Tuple[int, np.ndarray]:
    """Work-stealing map function (pickle transport): one ``(start, rows)`` chunk."""
    start, rows = task
    if _WORKER_RIG is None:  # pragma: no cover - defensive, initializer always runs
        raise RuntimeError("parallel evaluation worker used before bootstrap")
    _inject_chunk_faults(start)
    return start, _WORKER_RIG.fitnesses_for_rows(rows)


def _evaluate_shm_chunk(task: Tuple[str, int, int, int, int]) -> Tuple[int, int]:
    """Work-stealing map function (zero-copy transport).

    *task* is ``(segment_name, pop, width, start, stop)``: the worker maps
    the named ring slot, reads its chunk of encoding rows **in place** (the
    rig's decode never copies the float64 input), and writes the fitness row
    back **in place** at the slot's output region — the only bytes that cross
    the process boundary are this tiny task tuple and the ``(start, stop)``
    acknowledgement.
    """
    name, pop, width, start, stop = task
    if _WORKER_RIG is None:  # pragma: no cover - defensive, initializer always runs
        raise RuntimeError("parallel evaluation worker used before bootstrap")
    _inject_chunk_faults(start)
    segment = _attach_shared_memory(name)
    rows = np.ndarray((pop, width), dtype=np.float64, buffer=segment.buf)[start:stop]
    fitnesses = _WORKER_RIG.fitnesses_for_rows(rows)
    out = np.ndarray((pop,), dtype=np.float64, buffer=segment.buf, offset=pop * width * 8)
    out[start:stop] = fitnesses
    return start, stop


# ----------------------------------------------------------------------
# Main process side
# ----------------------------------------------------------------------
class ParallelEvaluationPool:
    """Persistent pool of evaluation workers sharing one :class:`EvaluatorSpec`.

    The pool is created lazily on the first evaluation, reused across
    generations (workers keep their reconstructed rig for their lifetime),
    and shut down cleanly by :meth:`close` (also invoked on garbage
    collection and by ``with`` blocks).  Sharding is deterministic:
    ``np.array_split`` contiguous chunks in row order, one per worker, and
    the gathered result preserves row order exactly.
    """

    def __init__(
        self,
        spec: EvaluatorSpec,
        num_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        use_shared_memory: Optional[bool] = None,
        task_timeout_s: float = 60.0,
    ):
        self.spec = spec
        self.num_workers = resolve_num_workers(num_workers)
        if start_method is None:
            # fork reuses the parent's imported modules (cheap bootstrap);
            # spawn is the portable fallback and works because the spec is
            # picklable and the worker entry points are module-level.
            start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        self.start_method = start_method
        if chunk_rows < 1:
            raise ConfigurationError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.chunk_rows = int(chunk_rows)
        #: ``None`` = auto (shared memory when the platform has it); tests
        #: force ``False`` to exercise the pickle transport explicitly.
        if use_shared_memory is None:
            use_shared_memory = _shared_memory is not None
        self.use_shared_memory = bool(use_shared_memory) and _shared_memory is not None
        #: How long to wait for one chunk acknowledgement before declaring
        #: its worker lost and recomputing the missing chunks inline.
        self.task_timeout_s = float(task_timeout_s)
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._fallback_rig: Optional[SimulationRig] = None
        self._ring: Optional[SharedMemoryRing] = None
        # Telemetry (docs/OBSERVABILITY.md): dispatch counters plus
        # structured warnings on the recovery paths, coordinator-side only —
        # workers never touch the tracer or the registry.
        self._tracer = get_tracer()
        _metrics = get_metrics()
        self._m_chunks = _metrics.counter(
            "repro_chunks_dispatched_total",
            "Work-stealing chunks dispatched to evaluation workers",
            labels={"backend": "parallel"},
        )
        self._m_fallback = _metrics.counter(
            "repro_local_fallback_chunks_total",
            "Chunks recomputed inline after a worker or fleet loss",
            labels={"backend": "parallel"},
        )
        self._m_deaths = _metrics.counter(
            "repro_worker_deaths_total",
            "Workers (or whole pools) lost mid-evaluation",
            labels={"backend": "parallel"},
        )

    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        """True while worker processes are alive."""
        return self._pool is not None

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            if self.use_shared_memory:
                # Start the shared-memory resource tracker *before* forking
                # workers: a child forked without a live tracker would lazily
                # spawn its own on first attach, and that private tracker
                # later "cleans up" (and warns about) segments the
                # coordinator still owns.  With the tracker already running,
                # every process funnels into the one inherited instance and
                # the coordinator's unlink is the single source of truth.
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(
                processes=self.num_workers,
                initializer=_bootstrap_worker,
                initargs=(self.spec,),
            )
        return self._pool

    def _chunks(self, num_rows: int) -> List[Tuple[int, int]]:
        """Fixed-size work-stealing chunks, shrunk so every worker gets work.

        The chunk height is :attr:`chunk_rows` capped at an even split of the
        population (never below :data:`MIN_ROWS_PER_WORKER`): a population
        that used to fill every worker under static sharding still does under
        work stealing, while large populations get several chunks per worker
        for the queue to balance.
        """
        num_rows = int(num_rows)
        if num_rows < 2 * MIN_ROWS_PER_WORKER:
            # Same collapse as static split_shards: a population this small
            # is overhead-bound, one (inline) chunk beats any dispatch.
            return split_chunks(num_rows, max(1, num_rows))
        even = -(-num_rows // self.num_workers)  # ceil division
        height = min(self.chunk_rows, max(MIN_ROWS_PER_WORKER, even))
        return split_chunks(num_rows, height)

    def evaluate(self, rows: np.ndarray) -> np.ndarray:
        """Fitness of each (already repaired) encoding row, preserving row order."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if len(rows) == 0:
            return np.empty(0, dtype=float)
        chunks = self._chunks(len(rows))
        if len(chunks) == 1 or self.num_workers == 1:
            # A single chunk gains nothing from IPC (one worker would do all
            # the work anyway); run it in process and leave the pool alone.
            return self._local_rig().fitnesses_for_rows(rows)
        pool = self._ensure_pool()
        self._m_chunks.inc(len(chunks))
        self._tracer.event(
            "parallel.dispatch",
            chunks=len(chunks),
            rows=len(rows),
            transport="shm" if self.use_shared_memory else "pickle",
        )
        if self.use_shared_memory:
            return self._evaluate_shared(pool, rows, chunks)
        return self._evaluate_pickled(pool, rows, chunks)

    def _evaluate_shared(
        self,
        pool: multiprocessing.pool.Pool,
        rows: np.ndarray,
        chunks: List[Tuple[int, int]],
    ) -> np.ndarray:
        """Zero-copy dispatch: population and fitnesses travel via the ring.

        One ring slot holds the whole generation — the ``(pop, width)``
        float64 population followed by the ``(pop,)`` fitness row.  Workers
        pull ``(segment, start, stop)`` descriptors from the pool's shared
        task queue (``imap_unordered`` with ``chunksize=1`` *is* the steal
        queue: an idle worker takes the next chunk the moment it finishes its
        last) and write results in place, so the arrays themselves never
        cross the pipe in either direction.
        """
        pop, width = rows.shape
        if self._ring is None:
            self._ring = SharedMemoryRing()
        segment = self._ring.acquire(rows.nbytes + pop * 8)
        shared_rows = np.ndarray((pop, width), dtype=np.float64, buffer=segment.buf)
        shared_rows[:] = rows
        shared_out = np.ndarray((pop,), dtype=np.float64, buffer=segment.buf, offset=rows.nbytes)
        tasks = [(segment.name, pop, width, start, stop) for start, stop in chunks]
        acks = self._collect(pool.imap_unordered(_evaluate_shm_chunk, tasks, chunksize=1),
                             len(chunks))
        acked = {start for start, _ in acks}
        missing = [chunk for chunk in chunks if chunk[0] not in acked]
        if missing:
            self._note_inline_recovery(missing, transport="shm")
            rig = self._local_rig()
            for start, stop in missing:
                shared_out[start:stop] = rig.fitnesses_for_rows(rows[start:stop])
        return np.array(shared_out, dtype=float, copy=True)

    def _evaluate_pickled(
        self,
        pool: multiprocessing.pool.Pool,
        rows: np.ndarray,
        chunks: List[Tuple[int, int]],
    ) -> np.ndarray:
        """Pickle-transport fallback with the same work-stealing dispatch."""
        fitnesses = np.empty(len(rows), dtype=float)
        tasks = [(start, rows[start:stop]) for start, stop in chunks]
        acked = set()
        for start, chunk_fitnesses in self._collect(
            pool.imap_unordered(_evaluate_chunk, tasks, chunksize=1), len(chunks)
        ):
            fitnesses[start:start + len(chunk_fitnesses)] = chunk_fitnesses
            acked.add(start)
        missing = [chunk for chunk in chunks if chunk[0] not in acked]
        if missing:
            self._note_inline_recovery(missing, transport="pickle")
            rig = self._local_rig()
            for start, stop in missing:
                fitnesses[start:stop] = rig.fitnesses_for_rows(rows[start:stop])
        return fitnesses

    def _note_inline_recovery(self, missing: List[Tuple[int, int]], transport: str) -> None:
        """Make a silent recovery loud: which chunks a lost worker stranded.

        Recovery itself stays automatic (results are bit-identical either
        way), but fleet degradation must be visible — the warning is recorded
        even with tracing disabled.
        """
        self._m_fallback.inc(len(missing))
        self._tracer.warning(
            "parallel.chunks-recovered-inline",
            chunks=[[int(start), int(stop)] for start, stop in missing],
            transport=transport,
        )

    def _collect(self, iterator, expected: int) -> list:
        """Up to *expected* results from the steal queue, bailing out on timeout.

        A killed worker's in-flight chunk never produces a result, so an
        unbounded ``for`` over ``imap_unordered`` would hang forever.  Each
        ``next`` gets :attr:`task_timeout_s`; on timeout the remaining chunks
        go to the caller's inline-recompute path and the wedged pool is
        abandoned (an incomplete map job pins ``Pool.join`` forever, so a
        clean ``close`` is no longer possible — the next generation lazily
        builds a fresh pool instead).
        """
        results: list = []
        for _ in range(expected):
            try:
                results.append(iterator.next(timeout=self.task_timeout_s))
            except StopIteration:  # pragma: no cover - expected count is exact
                break
            except multiprocessing.TimeoutError:
                self._m_deaths.inc()
                self._tracer.warning(
                    "parallel.pool-abandoned",
                    timeout_s=self.task_timeout_s,
                    chunks_pending=expected - len(results),
                )
                self._abandon_pool()
                break
        return results

    def _abandon_pool(self) -> None:
        """Terminate a pool wedged by a lost worker; the next use rebuilds it."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None

    def _local_rig(self) -> SimulationRig:
        if self._fallback_rig is None:
            self._fallback_rig = self.spec.build_rig()
        return self._fallback_rig

    def warm_up(self) -> None:
        """Start the workers eagerly (used by benchmarks to exclude startup cost)."""
        pool = self._ensure_pool()
        pool.map(_evaluate_shard, [np.empty((0, 2 * self.spec.num_jobs))])

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and unlink the ring; both lazily re-create."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._ring is not None:
            self._ring.close()
            self._ring = None

    def __enter__(self) -> "ParallelEvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self._pool is not None:
                self._pool.terminate()
            if self._ring is not None:
                self._ring.close()
        except Exception:  # repro-lint: disable=RPL502 — GC finalizer must never raise
            pass
