"""Persistent warm-start library (Table V's memory, made durable).

The paper's warm-start engine (Section V-C) remembers the best solution per
task type and seeds new searches with it — 7.4x-152x better starting points
in Table V — but the in-memory :class:`~repro.optimizers.warmstart.WarmStartEngine`
forgets everything at process exit.  :class:`WarmStartLibrary` wraps it with
a durable store (any :class:`~repro.utils.storage.StoreBackend` — the
historical JSONL file by default): every improvement is appended as one
crash-safe record, and a new process replays the store into a fresh engine,
so *any* later search — service request, campaign cell, or one-off CLI
search — warm-starts from the best solution any previous run ever found for
its task type.  On a shared backend (``sqlite:``/``tcp://``) the remembered
improvements of every replica accumulate in one place.

Keys are namespaced by objective (``"<task>/<objective>"``): a
throughput-optimal mapping is not a useful seed for an energy search.

The library is the reference implementation of the ``warm_store=`` hook on
:class:`~repro.core.framework.M3E` / the campaign runner: it provides
``warm_population`` (seed encodings for a new search) and ``observe``
(report a finished search's winner back).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from repro.core.encoding import MappingCodec
from repro.optimizers.warmstart import WarmStartEngine
from repro.utils.rng import SeedLike
from repro.utils.storage import StoreBackend, StoreUrl, open_store_backend
from repro.workloads.benchmark import TaskType
from repro.workloads.groups import JobGroup

_SOLUTION_FIELDS = ("encoding", "num_jobs", "num_sub_accelerators", "fitness")


def group_task_key(group: JobGroup) -> str:
    """The task type a group of jobs belongs to.

    A group whose jobs all share one task type is that type; anything
    heterogeneous is the paper's "mix" workload.
    """
    types = {job.task_type for job in group if job.task_type}
    if len(types) == 1:
        return next(iter(types))
    return TaskType.MIX.value


class WarmStartLibrary:
    """A :class:`WarmStartEngine` whose memory survives process exit.

    Parameters
    ----------
    store:
        Anything :func:`~repro.utils.storage.parse_store_url` accepts — a
        bare path (the historical JSONL file), a ``jsonl:``/``sqlite:``/
        ``tcp://`` URL, or an already open backend — holding one record per
        remembered improvement (``{"task_key", "encoding", "num_jobs",
        "num_sub_accelerators", "fitness"}``).  Missing store = empty
        library.  Records are replayed through the engine's
        best-solution-wins rule at load, so duplicate or stale records are
        harmless and the store needs no compaction.
    """

    def __init__(self, store: "str | StoreUrl | StoreBackend"):
        self._owns_backend = not isinstance(store, StoreBackend)
        self._file = open_store_backend(store)
        self._lock = threading.Lock()
        try:
            self._file.repair()
            state: Dict[str, Dict] = {}
            for record in self._file.iter_records():
                task_key = record.get("task_key")
                if not task_key or any(field not in record for field in _SOLUTION_FIELDS):
                    continue
                entry = {field: record[field] for field in _SOLUTION_FIELDS}
                current = state.get(task_key)
                if current is None or float(entry["fitness"]) > float(current["fitness"]):
                    state[str(task_key)] = entry
        except BaseException:
            # A library that failed to load must not leak the backend it
            # just opened (replay errors, unreachable network store, ...).
            self.close()
            raise
        self._engine = WarmStartEngine.from_state(state)

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Location of the backing store (a path for file-backed stores)."""
        return str(getattr(self._file, "path", self._file.url))

    @property
    def url(self) -> str:
        """Canonical store URL of the backing store."""
        return self._file.url

    def close(self) -> None:
        """Close the backing store if this library opened it (idempotent)."""
        if self._owns_backend:
            self._file.close()

    @staticmethod
    def key_for(task: str, objective: str) -> str:
        """The library key for a (task type, objective) pair."""
        return f"{task}/{objective}"

    def known_tasks(self) -> List[str]:
        """Keys with remembered solutions."""
        return self._engine.known_tasks()

    def __len__(self) -> int:
        return len(self.known_tasks())

    def fitness_of(self, task: str, objective: str) -> Optional[float]:
        """Best remembered fitness for a (task, objective), if any."""
        return self._engine.fitness_of(self.key_for(task, objective))

    def to_state(self) -> Dict[str, Dict]:
        """Snapshot of the in-memory engine (see ``WarmStartEngine.to_state``)."""
        return self._engine.to_state()

    # ------------------------------------------------------------------
    # Direct API
    # ------------------------------------------------------------------
    def suggest(
        self,
        task: str,
        objective: str,
        codec: MappingCodec,
        count: int = 1,
        rng: SeedLike = None,
    ) -> Optional[np.ndarray]:
        """Warm-start encodings for a (task, objective) problem, or ``None``."""
        return self._engine.suggest(self.key_for(task, objective), codec, count=count, rng=rng)

    def record(
        self,
        task: str,
        objective: str,
        encoding: np.ndarray,
        codec: MappingCodec,
        fitness: float,
    ) -> bool:  # acquires-lock: _lock
        """Remember a solution; persist (and return ``True``) if it improved."""
        key = self.key_for(task, objective)
        with self._lock:
            improved = self._engine.record(key, encoding, codec, float(fitness))
            if improved:
                state = self._engine.to_state()[key]
                self._file.append_record({"task_key": key, **state})
        return improved

    # ------------------------------------------------------------------
    # The M3E ``warm_store=`` hook
    # ------------------------------------------------------------------
    def warm_population(
        self,
        group: JobGroup,
        codec: MappingCodec,
        objective: str,
        count: int = 1,
        rng: SeedLike = None,
    ) -> Optional[np.ndarray]:
        """Seed encodings for a search over *group*, or ``None`` when cold."""
        return self.suggest(group_task_key(group), objective, codec, count=count, rng=rng)

    def observe(
        self,
        group: JobGroup,
        encoding: np.ndarray,
        codec: MappingCodec,
        fitness: float,
        objective: str,
    ) -> bool:
        """Report a finished search's best solution back to the library."""
        return self.record(group_task_key(group), objective, encoding, codec, fitness)
