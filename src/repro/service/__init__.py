"""Mapping-as-a-service: the search engine behind a long-running service.

The subsystem has four pieces (see the module docstrings for detail):

* :mod:`repro.service.store` — :class:`SolutionStore`, a persistent
  content-addressed store of solved mapping requests.
* :mod:`repro.service.warmlib` — :class:`WarmStartLibrary`, the paper's
  warm-start memory (Table V) persisted across processes and wired into
  every search via the ``warm_store=`` hook.
* :mod:`repro.service.service` — :class:`MappingService`, the async request
  queue: validate -> fingerprint -> cache hit or search job.
* :mod:`repro.service.httpd` — the stdlib HTTP JSON frontend behind
  ``repro-magma serve`` / ``repro-magma submit``.
"""

from repro.service.service import JOB_STATES, MappingJob, MappingRequest, MappingService
from repro.service.store import SolutionStore
from repro.service.warmlib import WarmStartLibrary, group_task_key
from repro.service.httpd import MappingServiceHTTPServer, create_server, serve_in_background

__all__ = [
    "JOB_STATES",
    "MappingJob",
    "MappingRequest",
    "MappingService",
    "SolutionStore",
    "WarmStartLibrary",
    "group_task_key",
    "MappingServiceHTTPServer",
    "create_server",
    "serve_in_background",
]
