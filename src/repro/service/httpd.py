"""Stdlib-only localhost HTTP JSON frontend for the mapping service.

Routes (all JSON):

* ``POST /submit`` — body is a :class:`~repro.service.service.MappingRequest`
  object; responds with the job status (plus the result inline when the
  request was answered from the solution store).
* ``GET /status/<job-id>`` — job state (``queued/running/done/failed``).
* ``GET /result/<job-id>`` — ``200`` with the search summary once done,
  ``202`` while queued/running, ``500`` with the error when failed.
* ``GET /healthz`` — service liveness, queue depth, in-flight count, store
  and warm-library sizes, cache statistics.
* ``GET /metrics`` — the process metrics registry in the Prometheus text
  exposition format (the one non-JSON route; see docs/OBSERVABILITY.md).

The server is a :class:`http.server.ThreadingHTTPServer`, so slow searches
never block status polls; all actual work still runs on the service's own
worker pool.  Nothing here imports beyond the standard library and the repro
package itself.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Tuple

from repro.exceptions import ServiceError
from repro.obs import render_prometheus
from repro.service.service import MappingService

#: Content type of the Prometheus text exposition format we emit.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MappingServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the :class:`MappingService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: MappingService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server: MappingServiceHTTPServer

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        try:
            self._get()
        except Exception as error:  # noqa: BLE001 — never drop the connection
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        try:
            self._post()
        except Exception as error:  # noqa: BLE001 — never drop the connection
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})

    def _get(self) -> None:
        service = self.server.service
        path = self.path.rstrip("/")
        try:
            if path == "/healthz":
                self._reply(200, service.healthz())
            elif path == "/metrics":
                self._reply_text(200, render_prometheus(), PROMETHEUS_CONTENT_TYPE)
            elif path.startswith("/status/"):
                self._reply(200, service.status(path[len("/status/"):]))
            elif path.startswith("/result/"):
                job = service.job(path[len("/result/"):])
                if job.state == "failed":
                    self._reply(500, {"id": job.job_id, "state": job.state, "error": job.error})
                elif job.state != "done":
                    self._reply(202, job.status())
                else:
                    payload = job.status()
                    payload["result"] = job.result.to_dict()
                    self._reply(200, payload)
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})
        except ServiceError as error:
            self._reply(404, {"error": str(error)})

    def _post(self) -> None:
        if self.path.rstrip("/") != "/submit":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        service = self.server.service
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length) if length else b"{}"
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._reply(400, {"error": f"invalid JSON body: {error}"})
            return
        try:
            job = service.submit(data)
        except ServiceError as error:
            self._reply(400, {"error": str(error)})
            return
        payload = job.status()
        if job.state == "done" and job.result is not None:
            payload["result"] = job.result.to_dict()
        self._reply(200, payload)

    # ------------------------------------------------------------------
    def _reply(self, code: int, payload: Dict[str, Any]) -> None:
        self._reply_text(code, json.dumps(payload, sort_keys=True), "application/json")

    def _reply_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)


def create_server(
    service: MappingService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> MappingServiceHTTPServer:
    """Bind (but do not start) the HTTP frontend; ``port=0`` picks a free port."""
    return MappingServiceHTTPServer((host, port), service, quiet=quiet)


def serve_in_background(
    service: MappingService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Tuple[MappingServiceHTTPServer, threading.Thread]:
    """Start the frontend on a daemon thread (tests and embedded use)."""
    server = create_server(service, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever, name="mapping-httpd", daemon=True)
    thread.start()
    return server, thread
