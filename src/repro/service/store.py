"""Persistent, content-addressed store of solved mapping problems.

Every record pairs a fully resolved :class:`~repro.service.service.MappingRequest`
payload with the :class:`~repro.utils.serialization.SearchResultSummary` of
the search that solved it, keyed by the request's deterministic fingerprint
(canonical-JSON SHA-256, the same identity scheme campaign cells use).  The
store is append-only JSONL like the campaign results store — appends are
single flushed writes behind a lock, torn trailing lines are repairable —
so a service crash can never corrupt previously solved work.

Append-only means a fingerprint may appear on several lines (two service
workers racing on near-identical requests, or a re-run with a fresh library
finding a different-quality solution).  Readers resolve duplicates by
*fitness*: :meth:`SolutionStore.lookup` returns the best-fitness record, so
the store only ever improves.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.utils.jsonl_store import AppendOnlyJsonlStore
from repro.utils.serialization import SearchResultSummary


class SolutionStore(AppendOnlyJsonlStore):
    """Append-only JSONL store of ``{"fingerprint", "request", "task_key", "result"}``."""

    def append(
        self,
        fingerprint: str,
        request: Dict[str, Any],
        task_key: str,
        result: SearchResultSummary,
    ) -> None:
        """Record one solved request (flushed immediately, crash-safe)."""
        self.append_record(
            {
                "fingerprint": fingerprint,
                "request": dict(request),
                "task_key": str(task_key),
                "result": result.to_dict(),
            }
        )

    # ------------------------------------------------------------------
    def lookup(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The best-fitness record for *fingerprint*, or ``None``.

        Ties keep the earliest record, so a store with duplicate equal
        solutions answers deterministically.
        """
        best: Optional[Dict[str, Any]] = None
        for record in self.iter_records():
            if record.get("fingerprint") != fingerprint:
                continue
            if best is None or _fitness(record) > _fitness(best):
                best = record
        return best

    def lookup_result(self, fingerprint: str) -> Optional[SearchResultSummary]:
        """The stored search summary for *fingerprint*, or ``None``."""
        record = self.lookup(fingerprint)
        if record is None:
            return None
        return SearchResultSummary.from_dict(record["result"])

    def best_by_fingerprint(self) -> Dict[str, Dict[str, Any]]:
        """The best-fitness record per fingerprint (one pass over the store).

        This is the service's startup index: answering a repeated request
        from it is a dict lookup, not a file scan.
        """
        best: Dict[str, Dict[str, Any]] = {}
        for record in self.iter_records():
            fingerprint = record.get("fingerprint")
            if not fingerprint:
                continue
            current = best.get(fingerprint)
            if current is None or _fitness(record) > _fitness(current):
                best[fingerprint] = record
        return best

    def best_by_task(self) -> Dict[str, Dict[str, Any]]:
        """The best-fitness record per task key (warm-start library seed).

        Task keys are namespaced by objective (``"<task>/<objective>"``), so
        a throughput-optimal solution never warm-starts an energy search.
        """
        best: Dict[str, Dict[str, Any]] = {}
        for record in self.iter_records():
            task_key = record.get("task_key")
            if not task_key:
                continue
            current = best.get(task_key)
            if current is None or _fitness(record) > _fitness(current):
                best[task_key] = record
        return best


def _fitness(record: Dict[str, Any]) -> float:
    try:
        return float(record["result"]["best_fitness"])
    except (KeyError, TypeError, ValueError):
        return float("-inf")
