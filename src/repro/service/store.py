"""Persistent, content-addressed store of solved mapping problems.

Every record pairs a fully resolved :class:`~repro.service.service.MappingRequest`
payload with the :class:`~repro.utils.serialization.SearchResultSummary` of
the search that solved it, keyed by the request's deterministic fingerprint
(canonical-JSON SHA-256, the same identity scheme campaign cells use).

Since the store-backend split the solution store is transport-agnostic: it
defines the record schema and the duplicate-resolution semantics, and
persists through any :class:`~repro.utils.storage.StoreBackend` —
``jsonl:path`` (the default; byte-compatible with every store file written
before backends existed), ``sqlite:path`` for concurrent local replicas, or
``tcp://host:port`` for a fleet of service replicas sharing one store
(docs/SERVICE.md has the matrix).  Appends stay atomic and crash-safe on
every transport.

Append-only means a fingerprint may appear in several records (two service
workers racing on near-identical requests, or a re-run with a fresh library
finding a different-quality solution).  Readers resolve duplicates by
*fitness*: :meth:`SolutionStore.lookup` returns the best-fitness record, so
the store only ever improves.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.utils.serialization import SearchResultSummary
from repro.utils.storage import BackedStore, record_fitness


class SolutionStore(BackedStore):
    """Store of ``{"fingerprint", "request", "task_key", "result"}`` records."""

    def append(
        self,
        fingerprint: str,
        request: Dict[str, Any],
        task_key: str,
        result: SearchResultSummary,
    ) -> None:
        """Record one solved request (flushed immediately, crash-safe)."""
        self.append_record(
            {
                "fingerprint": fingerprint,
                "request": dict(request),
                "task_key": str(task_key),
                "result": result.to_dict(),
            }
        )

    # ------------------------------------------------------------------
    def lookup(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The best-fitness record for *fingerprint*, or ``None``.

        Ties keep the earliest record, so a store with duplicate equal
        solutions answers deterministically.  Indexed backends resolve this
        without scanning the whole store.
        """
        return self.backend.lookup(fingerprint)

    def lookup_result(self, fingerprint: str) -> Optional[SearchResultSummary]:
        """The stored search summary for *fingerprint*, or ``None``."""
        record = self.lookup(fingerprint)
        if record is None:
            return None
        return SearchResultSummary.from_dict(record["result"])

    def best_by_fingerprint(self) -> Dict[str, Dict[str, Any]]:
        """The best-fitness record per fingerprint (one pass over the store).

        This is the service's startup index: answering a repeated request
        from it is a dict lookup, not a store scan.
        """
        return self.backend.best_records("fingerprint")

    def best_by_task(self) -> Dict[str, Dict[str, Any]]:
        """The best-fitness record per task key (warm-start library seed).

        Task keys are namespaced by objective (``"<task>/<objective>"``), so
        a throughput-optimal solution never warm-starts an energy search.
        """
        return self.backend.best_records("task_key")


def _fitness(record: Dict[str, Any]) -> float:
    # Kept as an alias: duplicate resolution now lives with the backends.
    return record_fitness(record)
