"""The ``tcp://`` store backend — one store shared by replicas on many hosts.

``repro-magma store serve`` runs a :class:`NetworkStoreServer`: a tiny TCP
server that owns a *local* backend (``jsonl:`` or ``sqlite:``) and exposes
the :class:`~repro.utils.storage.StoreBackend` operations to the network.
Any number of ``repro-magma serve`` replicas — on any host — then open the
same store as ``tcp://host:port`` via :class:`NetworkStoreBackend`, so every
replica answers every fingerprint.

The wire protocol deliberately reuses the eval-fleet transport
(:mod:`repro.core.rpc`): the same 8-byte length-prefixed frames, the same
token handshake on raw bytes before anything is decoded
(:func:`~repro.core.rpc.authenticate_inbound`), the same
``$REPRO_RPC_TOKEN`` fallback — one secret and one framing layer secure the
whole deployment.  Post-auth payloads differ from the eval protocol in one
important way: store records are plain JSON documents, so frames here carry
**JSON, never pickle** — a hostile or confused peer can corrupt a store's
contents but cannot execute code, and the RPC layer's auth-before-unpickle
argument (docs/STATIC_ANALYSIS.md) is not stretched across a second
protocol.

Requests are ``{"op": ..., ...params}``; replies are ``{"ok": true,
"value": ...}`` or ``{"ok": false, "error": msg}``.  The client retries a
failed request once over a fresh connection: appends are safe to retry
because duplicate fingerprints are legal by protocol contract — readers
resolve them by best fitness, so a replay of an applied-but-unacknowledged
append changes no lookup result.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.core.rpc import (
    RPC_TOKEN_ENV,
    authenticate_inbound,
    authenticate_outbound,
    is_loopback_host,
    parse_hosts,
    recv_frame,
    resolve_token,
    send_frame,
)
from repro.exceptions import ConfigurationError, RpcError, WorkerDiedError
from repro.obs import get_tracer
from repro.utils.storage import (
    CompactionPolicy,
    StoreBackend,
    open_store_backend,
)

#: Upper bound on one store frame (a full record set in one reply).
MAX_STORE_FRAME_BYTES = 1 << 30

_TRANSPORT_ERRORS = (WorkerDiedError, RpcError, OSError)


def _encode(message: Dict[str, Any]) -> bytes:
    return json.dumps(message, sort_keys=True).encode("utf-8")


def _decode(payload: bytes) -> Dict[str, Any]:
    message = json.loads(payload.decode("utf-8"))
    if not isinstance(message, dict):
        raise RpcError("store frame is not a JSON object")
    return message


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------
class NetworkStoreServer:
    """Serve one local store backend to ``tcp://`` clients.

    Thread-per-connection, like the eval workers; concurrency control is the
    backing backend's own locking, so N replicas hammering one server see
    the same append atomicity a single process would.  ``port=0`` binds an
    ephemeral port (the chosen one is in :attr:`address`).
    """

    def __init__(
        self,
        backing: "str | StoreBackend",
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
    ):
        self.token = resolve_token(token)
        if not self.token and not is_loopback_host(host):
            # JSON frames cannot execute code, but an open port would let
            # anyone read and poison the shared store all replicas trust.
            raise ConfigurationError(
                f"refusing to serve a store on non-loopback address {host!r} "
                f"without a token; pass --token or set ${RPC_TOKEN_ENV}"
            )
        self._owns_backing = isinstance(backing, str)
        self.backing = open_store_backend(backing)
        if self.backing.kind == "tcp":
            raise ConfigurationError(
                "a network store cannot be backed by another network store; "
                "point --backing at a jsonl: or sqlite: URL"
            )
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.1)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._active: set = set()  # guarded-by: _lock
        self.connections_served = 0  # guarded-by: _lock
        self.requests_served = 0  # guarded-by: _lock

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def url(self) -> str:
        """The URL clients use to open this store."""
        return f"tcp://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept client connections until :meth:`shutdown`."""
        try:
            while not self._stopping.is_set():
                try:
                    conn, _ = self._listener.accept()
                except TimeoutError:
                    continue
                except OSError:
                    break
                if self._stopping.is_set():
                    conn.close()
                    break
                with self._lock:
                    self.connections_served += 1
                threading.Thread(
                    target=self._handle_connection, args=(conn,), daemon=True
                ).start()
        finally:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def start(self) -> "NetworkStoreServer":
        """Serve on a background daemon thread (how tests and benchmarks run)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving, drop live connections, and close an owned backing store."""
        self._stopping.set()
        try:
            socket.create_connection((self.host, self.port), timeout=0.2).close()
        except OSError:
            pass
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        with self._lock:
            active = list(self._active)
        for conn in active:
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._owns_backing:
            self.backing.close()

    # ------------------------------------------------------------------
    def _handle_connection(self, conn: socket.socket) -> None:
        with self._lock:
            self._active.add(conn)
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if not authenticate_inbound(conn, self.token):
                return
            while True:
                request = _decode(recv_frame(conn, limit=MAX_STORE_FRAME_BYTES))
                with self._lock:
                    self.requests_served += 1
                try:
                    value = self._apply(request)
                except (ConfigurationError, RpcError, KeyError, TypeError, ValueError) as error:
                    # A malformed request poisons this *request*, not the
                    # connection: the client gets the error and keeps going.
                    send_frame(conn, _encode({"ok": False, "error": str(error)}))
                    continue
                send_frame(conn, _encode({"ok": True, "value": value}))
        except _TRANSPORT_ERRORS + (ValueError,):
            # Peer went away or sent garbage; the server lives on.
            pass
        finally:
            with self._lock:
                self._active.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _apply(self, request: Dict[str, Any]) -> Any:
        """Execute one store operation against the backing backend."""
        op = request.get("op")
        backing = self.backing
        if op == "ping":
            return "pong"
        if op == "append":
            backing.append_record(dict(request["record"]))
            return None
        if op == "append_many":
            records = [dict(record) for record in request["records"]]
            append_many = getattr(backing, "append_many", None)
            if append_many is not None:
                append_many(records)
            else:
                for record in records:
                    backing.append_record(record)
            return None
        if op == "records":
            return backing.records()
        if op == "fingerprints":
            return sorted(backing.fingerprints())
        if op == "len":
            return len(backing)
        if op == "lookup":
            return backing.lookup(str(request["fingerprint"]))
        if op == "best":
            return backing.best_records(str(request.get("key", "fingerprint")))
        if op == "repair":
            return backing.repair()
        if op == "truncate":
            backing.truncate()
            return None
        if op == "replace":
            # Protocol-internal: the client's compact()/_replace_records
            # commit path, applied atomically by the backing backend.
            backing._replace_records([dict(record) for record in request["records"]])
            return None
        if op == "compact":
            policy = CompactionPolicy.from_dict(dict(request.get("policy") or {}))
            kept, dropped = backing.compact(policy)
            return [kept, dropped]
        if op == "describe":
            return backing.describe()
        raise RpcError(f"unknown store op {op!r}")


def serve_store(
    listen: str,
    backing: str,
    token: Optional[str] = None,
    ready: Optional[Any] = None,
) -> None:
    """Blocking entry point behind ``repro-magma store serve``.

    *listen* is ``host:port`` (port 0 binds an ephemeral port); *backing* is
    a local store URL (``jsonl:`` / ``sqlite:`` / bare path).  *ready*, if
    given, is called with the started server — the CLI uses it to print the
    resolved address before blocking.
    """
    parsed = parse_hosts(listen, allow_ephemeral=True)
    if len(parsed) != 1:
        raise ConfigurationError(f"--listen takes exactly one host:port, got {listen!r}")
    host, port = parsed[0]
    server = NetworkStoreServer(backing, host=host, port=port, token=token)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    finally:
        server.shutdown()


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
class NetworkStoreBackend(StoreBackend):
    """The ``tcp://`` client: a :class:`StoreBackend` over a store server.

    Connections are lazy (the first operation dials and authenticates) and
    self-healing: a request that fails in transport is retried exactly once
    over a fresh connection, then surfaces as :class:`RpcError`.  Requests
    are serialized under a lock — one connection, one outstanding request —
    which is all the service needs (its own store writes happen on worker
    threads that already serialize per store).
    """

    kind = "tcp"
    shared = True

    def __init__(
        self,
        host: str,
        port: int,
        token: Optional[str] = None,
        connect_timeout: float = 5.0,
    ):
        super().__init__()
        self.host = str(host)
        self.port = int(port)
        self.token = resolve_token(token)
        self.connect_timeout = connect_timeout
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None  # guarded-by: _lock
        self._tracer = get_tracer()

    @property
    def url(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket:
        # holds-lock: _lock
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            authenticate_outbound(sock, self.token, f"store server {self.host}:{self.port}")
            # Steady-state requests block without a deadline (a compaction of
            # a large store is legitimately slow); a dead server still
            # surfaces promptly as a reset/closed connection.
            sock.settimeout(None)
        except BaseException:
            sock.close()
            raise
        return sock

    def _request(self, op: str, **params: Any) -> Any:  # acquires-lock: _lock
        payload = _encode({"op": op, **params})
        with self._lock:
            last_error: Optional[Exception] = None
            reply: Optional[Dict[str, Any]] = None
            for attempt in (1, 2):
                if self._sock is None:
                    # An RpcError here is an auth rejection — deterministic,
                    # so it propagates instead of being retried as flakiness.
                    try:
                        self._sock = self._dial()
                    except (WorkerDiedError, OSError) as error:
                        last_error = error
                        continue
                try:
                    send_frame(self._sock, payload)
                    reply = _decode(recv_frame(self._sock, limit=MAX_STORE_FRAME_BYTES))
                    break
                except _TRANSPORT_ERRORS as error:
                    last_error = error
                    try:
                        self._sock.close()
                    except OSError:  # pragma: no cover - close is best-effort
                        pass
                    self._sock = None
                    if attempt == 1:
                        # Safe to replay: duplicate appends are resolved by
                        # best fitness, every other op is read-only or
                        # idempotent.
                        self._tracer.warning(
                            "netstore.reconnect",
                            server=f"{self.host}:{self.port}",
                            op=op,
                            error=str(error),
                        )
        if reply is None:
            raise RpcError(
                f"store server {self.host}:{self.port} unreachable: {last_error}"
            ) from last_error
        if not reply.get("ok"):
            raise RpcError(
                f"store server {self.host}:{self.port} rejected {op!r}: {reply.get('error')}"
            )
        return reply.get("value")

    # ------------------------------------------------------------------
    # StoreBackend surface
    # ------------------------------------------------------------------
    def append_record(self, record: Dict[str, Any]) -> None:
        self._count_op("append")
        self._request("append", record=record)

    def append_many(self, records: List[Dict[str, Any]]) -> None:
        """Append a batch in one round trip (bulk load / benchmark seeding)."""
        self._count_op("append", len(records))
        self._request("append_many", records=records)

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        return iter(self._request("records"))

    def __len__(self) -> int:
        return int(self._request("len"))

    def fingerprints(self) -> Set[str]:
        self._count_op("scan")
        return {str(value) for value in self._request("fingerprints")}

    def lookup(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Resolved server-side: one round trip, not a full record download."""
        self._count_op("lookup")
        return self._request("lookup", fingerprint=fingerprint)

    def best_records(self, key: str = "fingerprint") -> Dict[str, Dict[str, Any]]:
        self._count_op("scan")
        return dict(self._request("best", key=key))

    def repair(self) -> int:
        self._count_op("repair")
        return int(self._request("repair"))

    def truncate(self) -> None:
        self._count_op("truncate")
        self._request("truncate")

    def _replace_records(self, records: List[Dict[str, Any]]) -> None:
        self._request("replace", records=records)

    def compact(self, policy: Optional[CompactionPolicy] = None) -> Tuple[int, int]:
        """Compacted server-side, atomically, against the backing store."""
        self._count_op("compact")
        policy = policy if policy is not None else CompactionPolicy()
        kept, dropped = self._request("compact", policy=policy.to_dict())
        return int(kept), int(dropped)

    def describe(self) -> Dict[str, Any]:
        value = dict(self._request("describe"))
        return {
            **value,
            "url": self.url,
            "kind": self.kind,
            "shared": True,
            "backing": value.get("url"),
        }

    def close(self) -> None:  # acquires-lock: _lock
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
                self._sock = None


__all__ = [
    "MAX_STORE_FRAME_BYTES",
    "NetworkStoreBackend",
    "NetworkStoreServer",
    "serve_store",
]
