"""Mapping-as-a-service: typed requests, async workers, content-addressed cache.

:class:`MappingService` turns the search engine into a long-running service:

* A :class:`MappingRequest` is validated, resolved against the service's
  experiment scale (concrete group size / budget / optimizer options), and
  fingerprinted with the same canonical-JSON identity campaign cells use.
* A fingerprint already solved in the :class:`~repro.service.store.SolutionStore`
  is answered instantly from an in-memory index — no optimizer runs, and the
  returned :class:`~repro.utils.serialization.SearchResultSummary` is
  bit-identical to the one the original search produced.
* A miss enqueues a search job on a pool of worker threads driving the
  existing evaluation backends; identical in-flight requests are deduplicated
  onto one job.  Jobs move ``queued -> running -> done | failed``.
* Every solved request is appended to the store (crash-safe single-line
  writes) and, via the ``warm_store=`` hook, reported to the persistent
  warm-start library so similar future tasks start from it.
* :meth:`MappingService.close` drains or cancels the queue and joins the
  workers; because store appends are atomic whole-line writes, shutdown at
  any point never corrupts the store.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict, Optional, Sequence

from repro.accelerator import build_setting, list_settings
from repro.core.analyzer import AnalysisTableCache
from repro.core.evalconfig import EvalConfig, resolve_eval_config
from repro.core.objectives import list_objectives
from repro.exceptions import ReproError, ServiceError
from repro.experiments.campaign import CampaignRunner
from repro.obs import get_metrics, get_tracer
from repro.experiments.scenarios import default_optimizer_options
from repro.experiments.settings import ExperimentScale
from repro.service.store import SolutionStore
from repro.service.warmlib import WarmStartLibrary
from repro.utils.rng import resolve_seed
from repro.utils.serialization import SearchResultSummary, payload_fingerprint
from repro.workloads.benchmark import TaskType

#: Lifecycle of a service job.
JOB_STATES = ("queued", "running", "done", "failed")


def _expect_str(name: str, value: Any) -> str:
    if not isinstance(value, str):
        raise ServiceError(f"{name} must be a string, got {value!r}")
    return value


def _coerce(name: str, value: Any, converter: Any) -> Any:
    try:
        return converter(value)
    except (TypeError, ValueError) as error:
        raise ServiceError(f"invalid {name}: {value!r} ({error})") from error


@dataclass(frozen=True)
class MappingRequest:
    """One mapping query: "map this task onto this platform, optimally".

    ``group_size`` and ``budget`` default to the service's experiment scale,
    so clients can stay scale-agnostic; everything else mirrors the knobs of
    ``repro-magma search``.
    """

    setting: str = "S2"
    bandwidth_gbps: float = 16.0
    task: str = "mix"
    objective: str = "throughput"
    method: str = "magma"
    seed: Optional[int] = None
    group_size: Optional[int] = None
    budget: Optional[int] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MappingRequest":
        """Build a request from client JSON; unknown keys fail loudly."""
        if not isinstance(data, dict):
            raise ServiceError(f"a mapping request must be a JSON object, got {type(data).__name__}")
        names = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ServiceError(
                f"unknown request fields: {sorted(unknown)}; known: {sorted(names)}"
            )
        return cls(**data)

    def resolve(self, scale: ExperimentScale) -> Dict[str, Any]:
        """Validate and pin every free knob against *scale*.

        Returns the fully concrete request payload — the dict that gets
        fingerprinted, stored alongside the solution, and executed.  All
        validation — including wrong-typed client JSON — lives here so bad
        requests fail as :class:`ServiceError` at submit time (an HTTP 400),
        not inside a worker thread.
        """
        from repro.optimizers import list_optimizers

        setting = _expect_str("setting", self.setting)
        task = _expect_str("task", self.task)
        objective = _expect_str("objective", self.objective)
        method = _expect_str("method", self.method).lower()
        bandwidth_gbps = _coerce("bandwidth_gbps", self.bandwidth_gbps, float)
        # Resolve the seed at submit time so the fingerprinted payload always
        # carries a concrete int: explicit request seed wins, then the
        # session policy (CLI --seed / REPRO_SEED), then 0 — which keeps
        # fingerprints of historical seed-less submissions stable and makes
        # replaying a stored payload bit-identical regardless of the
        # replayer's own session seed.
        explicit = None if self.seed is None else _coerce("seed", self.seed, int)
        seed = resolve_seed(explicit, default=0)
        if setting not in list_settings():
            raise ServiceError(
                f"unknown setting {setting!r}; available: {list_settings()}"
            )
        task_values = [t.value for t in TaskType]
        if task not in task_values:
            raise ServiceError(f"unknown task {task!r}; available: {task_values}")
        if objective not in list_objectives():
            raise ServiceError(
                f"unknown objective {objective!r}; available: {list_objectives()}"
            )
        if method not in list_optimizers():
            raise ServiceError(
                f"unknown method {self.method!r}; available: {list_optimizers()}"
            )
        if not bandwidth_gbps > 0:
            raise ServiceError(f"bandwidth_gbps must be positive, got {self.bandwidth_gbps}")
        group_size = (
            _coerce("group_size", self.group_size, int)
            if self.group_size is not None else scale.group_size
        )
        budget = (
            _coerce("budget", self.budget, int)
            if self.budget is not None else scale.sampling_budget
        )
        if budget <= 0:
            raise ServiceError(f"budget must be positive, got {budget}")
        num_cores = build_setting(setting, bandwidth_gbps).num_sub_accelerators
        if group_size < num_cores:
            raise ServiceError(
                f"group_size {group_size} is smaller than the {num_cores} "
                f"sub-accelerators of setting {setting}"
            )
        options = default_optimizer_options(method, scale, None)
        return {
            "setting": setting,
            "bandwidth_gbps": bandwidth_gbps,
            "task": task,
            "objective": objective,
            "method": method,
            "seed": seed,
            "group_size": group_size,
            "budget": budget,
            "optimizer_options": options,
        }


@dataclass
class MappingJob:
    """One tracked unit of service work (a request on its way to a result)."""

    job_id: str
    fingerprint: str
    request: Dict[str, Any]
    state: str = "queued"
    cached: bool = False
    error: Optional[str] = None
    result: Optional[SearchResultSummary] = None
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)
    #: Monotonic enqueue timestamp — queue-wait attribution only, never
    #: serialized (status() builds its dict explicitly).
    enqueued_at: float = field(default=0.0, repr=False, compare=False)

    def status(self) -> Dict[str, Any]:
        """JSON-ready job status (without the result payload)."""
        return {
            "id": self.job_id,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "error": self.error,
            "request": dict(self.request),
        }


class MappingService:
    """Long-running mapping service over the search engine.

    Parameters
    ----------
    store:
        :class:`SolutionStore` of solved requests, or anything
        :func:`~repro.utils.storage.parse_store_url` accepts (a bare path,
        a ``jsonl:``/``sqlite:``/``tcp://`` URL, or an open backend).  On a
        shared backend several service replicas answer from — and feed —
        one store.  A store the service opened itself (from a path/URL) is
        closed by :meth:`close`; an already open store/backend stays the
        caller's to close.
    warm_store:
        Optional :class:`~repro.service.warmlib.WarmStartLibrary` (or its
        path/URL).  When present, cache *misses* still benefit from history:
        searches warm-start from the best prior same-task solution.
    scale:
        Experiment scale unresolved request knobs default to.
    eval_config:
        Evaluation-engine configuration
        (:class:`~repro.core.evalconfig.EvalConfig`) for every search the
        service runs.  With ``backend="rpc"`` service jobs fan their
        fitness evaluations out to the remote worker fleet.
    eval_backend / eval_workers / eval_hosts / rpc_token:
        Deprecated spelling of ``eval_config`` (bit-identical, warns).
    replica_id:
        Stable identity this replica reports on ``/healthz`` (default:
        ``<hostname>:<pid>``) — how operators tell the members of a
        shared-store service tier apart.
    workers:
        Worker threads executing queued jobs concurrently.
    max_finished_jobs:
        Finished (done/failed) jobs retained for status polling.  A
        long-running service answers mostly cache hits, and each submit
        creates a tracked job — without a bound the job table would grow
        with total requests served.  The oldest finished jobs are evicted
        FIFO past this limit; in-flight jobs are never evicted.
    """

    def __init__(
        self,
        store: "SolutionStore | str",
        warm_store: "WarmStartLibrary | str | None" = None,
        scale: "ExperimentScale | str | None" = None,
        eval_backend: Optional[str] = None,
        eval_workers: Optional[int] = None,
        eval_hosts: "str | Sequence[str] | None" = None,
        rpc_token: Optional[str] = None,
        workers: int = 2,
        table_cache: Optional[AnalysisTableCache] = None,
        max_finished_jobs: int = 10_000,
        eval_config: Optional[EvalConfig] = None,
        replica_id: Optional[str] = None,
    ):
        if workers <= 0:
            raise ServiceError(f"workers must be positive, got {workers}")
        if max_finished_jobs <= 0:
            raise ServiceError(f"max_finished_jobs must be positive, got {max_finished_jobs}")
        self._owns_store = not isinstance(store, SolutionStore)
        self.store = store if isinstance(store, SolutionStore) else SolutionStore(store)
        self._owns_warm = isinstance(warm_store, str)
        self.warm_store: Optional[WarmStartLibrary] = None
        self.replica_id = replica_id or f"{socket.gethostname()}:{os.getpid()}"
        # Everything below may fail (bad eval config, unreadable store, a
        # dead network store, ...); a half-built service must not leak the
        # store handles it just opened.
        try:
            if isinstance(warm_store, str):
                warm_store = WarmStartLibrary(warm_store)
            self.warm_store = warm_store
            self._runner = CampaignRunner(
                scale=scale,
                eval_config=resolve_eval_config(
                    eval_config,
                    where="MappingService",
                    eval_backend=eval_backend,
                    eval_workers=eval_workers,
                    eval_hosts=eval_hosts,
                    rpc_token=rpc_token,
                ),
                table_cache=table_cache if table_cache is not None else AnalysisTableCache(),
                warm_store=warm_store,
            )
            self._lock = threading.Lock()
            self._queue: "queue.Queue[Optional[MappingJob]]" = queue.Queue()
            self._jobs: Dict[str, MappingJob] = {}  # guarded-by: _lock
            self._inflight: Dict[str, MappingJob] = {}  # guarded-by: _lock
            self._finished: "deque[str]" = deque()  # guarded-by: _lock
            self._max_finished_jobs = max_finished_jobs
            self._counter = 0  # guarded-by: _lock
            self._closed = False  # guarded-by: _lock
            self.stats: Dict[str, int] = {  # guarded-by: _lock
                "submitted": 0,
                "cache_hits": 0,
                "deduped": 0,
                "searches_run": 0,
                "failed": 0,
            }
            # Observability (docs/OBSERVABILITY.md): request lifecycle events
            # plus registry-backed gauges the healthz payload reads back.
            self._tracer = get_tracer()
            self._metrics = get_metrics()
            self._g_queue_depth = self._metrics.gauge(
                "repro_service_queue_depth", "Jobs accepted but not yet picked up by a worker."
            )
            self._g_inflight = self._metrics.gauge(
                "repro_service_inflight", "Jobs currently executing on worker threads."
            )
            self._h_queue_wait = self._metrics.histogram(
                "repro_service_queue_wait_seconds", "Time jobs spent queued before a worker ran them."
            )
            self._m_requests = {
                outcome: self._metrics.counter(
                    "repro_service_requests_total",
                    "Submitted requests by outcome (cache-hit, deduped, queued).",
                    labels={"outcome": outcome},
                )
                for outcome in ("cache-hit", "deduped", "queued")
            }
            # Never-corrupt startup: drop a torn trailing line a previous
            # crash may have left, then index best-per-fingerprint for
            # instant hits.
            self.store.repair()
            self._index: Dict[str, SearchResultSummary] = {}  # guarded-by: _lock
            for fingerprint, record in self.store.best_by_fingerprint().items():
                self._index[fingerprint] = SearchResultSummary.from_dict(record["result"])
            self._threads = [
                threading.Thread(target=self._worker, name=f"mapping-worker-{i}", daemon=True)
                for i in range(workers)
            ]
            for thread in self._threads:
                thread.start()
        except BaseException:
            self._close_stores()
            raise

    @property
    def scale(self) -> ExperimentScale:
        """The experiment scale unresolved request knobs default to."""
        return self._runner.scale

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: "MappingRequest | Dict[str, Any]") -> MappingJob:
        """Validate, fingerprint, and answer-or-enqueue one request.

        Returns the job tracking the request: already-solved fingerprints
        come back ``done`` immediately (``cached=True``, result bit-identical
        to the originally stored summary); identical in-flight requests share
        one job; anything else is queued for a worker.
        """
        if isinstance(request, dict):
            request = MappingRequest.from_dict(request)
        payload = request.resolve(self.scale)
        fingerprint = payload_fingerprint(payload)
        remote = None
        if self.store.shared:
            # Another replica feeding the shared store may have solved this
            # fingerprint since our startup index was built.  Consulting the
            # store happens *before* taking the lock (it may be network I/O);
            # the race of a concurrent local solve is harmless — duplicate
            # appends resolve to the best record.
            with self._lock:
                unknown = fingerprint not in self._index and fingerprint not in self._inflight
            if unknown:
                remote = self.store.lookup_result(fingerprint)
        with self._lock:
            if self._closed:
                raise ServiceError("service is shut down")
            self.stats["submitted"] += 1
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                self.stats["deduped"] += 1
                self._note_submitted(inflight, "deduped")
                return inflight
            job = MappingJob(job_id=self._next_id(), fingerprint=fingerprint, request=payload)
            self._jobs[job.job_id] = job
            cached = self._index.get(fingerprint)
            if cached is None and remote is not None:
                cached = self._index.setdefault(fingerprint, remote)
            if cached is not None:
                self.stats["cache_hits"] += 1
                job.cached = True
                job.result = cached
                job.state = "done"
                job.done_event.set()
                self._retire(job)
                self._note_submitted(job, "cache-hit")
                return job
            job.enqueued_at = time.monotonic()
            self._inflight[fingerprint] = job
            self._queue.put(job)
            self._note_submitted(job, "queued")
            return job

    def _note_submitted(self, job: MappingJob, outcome: str) -> None:  # holds-lock: _lock
        self._m_requests[outcome].inc()
        self._refresh_gauges()
        self._tracer.event(
            "service.submitted", job=job.job_id, outcome=outcome, fingerprint=job.fingerprint
        )

    def _refresh_gauges(self) -> None:  # holds-lock: _lock
        """Republish queue depth / in-flight gauges from the job table."""
        states = [job.state for job in self._inflight.values()]
        self._g_queue_depth.set(sum(1 for state in states if state == "queued"))
        self._g_inflight.set(sum(1 for state in states if state == "running"))

    def _next_id(self) -> str:  # holds-lock: _lock
        self._counter += 1
        return f"job-{self._counter:06d}"

    def _retire(self, job: MappingJob) -> None:  # holds-lock: _lock
        """Bound the job table: evict the oldest finished jobs (lock held)."""
        self._finished.append(job.job_id)
        while len(self._finished) > self._max_finished_jobs:
            self._jobs.pop(self._finished.popleft(), None)

    # ------------------------------------------------------------------
    # Job access
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> MappingJob:
        """The job for *job_id* (unknown ids fail loudly)."""
        job = self._jobs.get(str(job_id))
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """JSON-ready status of one job."""
        return self.job(job_id).status()

    def wait(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Block until a job finishes (done or failed); ``False`` on timeout."""
        return self.job(job_id).done_event.wait(timeout)

    def result(self, job_id: str, timeout: Optional[float] = None) -> SearchResultSummary:
        """The finished job's search summary (waits; raises on failure/timeout)."""
        job = self.job(job_id)
        if not job.done_event.wait(timeout):
            raise ServiceError(f"job {job_id} still {job.state} after {timeout}s")
        if job.state == "failed":
            raise ServiceError(f"job {job_id} failed: {job.error}")
        assert job.result is not None
        return job.result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """Liveness/readiness payload for the HTTP frontend.

        ``queue_depth`` and ``in_flight`` are read back from the metrics
        registry (after a refresh under the lock), so the health answer and
        a ``GET /metrics`` scrape can never disagree about load.
        """
        with self._lock:
            self._refresh_gauges()
            return {
                "status": "closed" if self._closed else "ok",
                "replica": self.replica_id,
                "scale": self.scale.name,
                "eval_backend": self._runner.eval_backend,
                "store_backend": self.store.kind,
                "store_url": self.store.url,
                "workers": len(self._threads),
                "queue_depth": int(self._metrics.value_of("repro_service_queue_depth")),
                "in_flight": int(self._metrics.value_of("repro_service_inflight")),
                "jobs": len(self._jobs),
                "solutions": len(self._index),
                "warm_tasks": len(self.warm_store) if self.warm_store is not None else 0,
                "store": self.store.path,
                **{key: int(value) for key, value in self.stats.items()},
            }

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                if job.state != "queued":
                    # Cancelled by a non-draining shutdown.
                    continue
                job.state = "running"
                self._refresh_gauges()
            queue_wait_s = max(0.0, time.monotonic() - job.enqueued_at)
            self._h_queue_wait.observe(queue_wait_s)
            self._tracer.event(
                "service.job-running", job=job.job_id, queue_wait_s=round(queue_wait_s, 6)
            )
            try:
                with self._tracer.span(
                    "service.job",
                    job=job.job_id,
                    fingerprint=job.fingerprint,
                    method=job.request.get("method"),
                ):
                    summary = self._execute(job)
            except ReproError as error:
                self._finish(job, error=str(error))
            except Exception as error:  # noqa: BLE001 — a worker must survive anything
                self._finish(job, error=f"{type(error).__name__}: {error}")
            else:
                self._finish(job, summary=summary)

    def _execute(self, job: MappingJob) -> SearchResultSummary:
        payload = job.request
        platform = build_setting(payload["setting"], payload["bandwidth_gbps"])
        group = self._runner.group_for(
            payload["task"], platform.num_sub_accelerators, payload["seed"], payload["group_size"]
        )
        explorer = self._runner.explorer(
            platform, sampling_budget=payload["budget"], objective=payload["objective"]
        )
        result = explorer.search(
            group,
            optimizer=payload["method"],
            seed=payload["seed"],
            sampling_budget=payload["budget"],
            optimizer_options=dict(payload["optimizer_options"]),
        )
        return SearchResultSummary.from_result(result)

    def _finish(
        self,
        job: MappingJob,
        summary: Optional[SearchResultSummary] = None,
        error: Optional[str] = None,
    ) -> None:
        if summary is not None:
            task_key = WarmStartLibrary.key_for(job.request["task"], job.request["objective"])
            self.store.append(job.fingerprint, job.request, task_key, summary)
        with self._lock:
            self._inflight.pop(job.fingerprint, None)
            if summary is not None:
                self._index.setdefault(job.fingerprint, summary)
                self.stats["searches_run"] += 1
                job.result = summary
                job.state = "done"
            else:
                self.stats["failed"] += 1
                job.error = error
                job.state = "failed"
            self._retire(job)
            self._refresh_gauges()
        job.done_event.set()
        if summary is not None:
            self._tracer.event("service.job-done", job=job.job_id, state=job.state)
        else:
            self._tracer.warning("service.job-failed", job=job.job_id, error=str(error))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop the service.

        ``wait=True`` drains the queue (every accepted job completes);
        ``wait=False`` cancels still-queued jobs (marked ``failed``) and only
        finishes the jobs already running.  Either way the workers are
        joined, and — because store appends are atomic whole-line writes —
        the solution store is left intact.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not wait:
                for job in list(self._inflight.values()):
                    if job.state == "queued":
                        self._inflight.pop(job.fingerprint, None)
                        self.stats["failed"] += 1
                        job.error = "cancelled: service shut down before execution"
                        job.state = "failed"
                        job.done_event.set()
                        self._retire(job)
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        # Only after the last worker has finished its final store append.
        self._close_stores()

    def _close_stores(self) -> None:
        """Close the store handles this service opened itself (idempotent)."""
        if self._owns_warm and self.warm_store is not None:
            self.warm_store.close()
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "MappingService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
