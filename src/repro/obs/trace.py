"""Structured tracing: spans and events into a bounded ring + JSONL sink.

One process-local :class:`Tracer` (reached via :func:`get_tracer`) collects
two record kinds:

* **spans** — named durations with explicit parent ids (a per-thread stack
  supplies the parent), measured on the monotonic ``time.perf_counter``
  clock so system clock steps can never corrupt a duration;
* **events** — point-in-time marks attached to the enclosing span.

Records land in a bounded in-memory ring (:class:`collections.deque` with a
``maxlen``) and, when a sink path is configured, are appended to a JSONL
file using the same crash-safety discipline as
:class:`repro.utils.jsonl_store.AppendOnlyJsonlStore`: one flushed
``write`` per whole line, under a lock, so a crash can tear at most the
final line — and :func:`read_trace` tolerates exactly that.

Tracing is **off by default** and provably inert: a disabled tracer's
``span``/``event`` calls return immediately without reading a clock, no
telemetry value ever feeds a seed or a payload fingerprint, and the tier-1
suite asserts bit-identical search results with tracing on vs off for every
eval backend.  The one exception is :meth:`Tracer.warning`: operational
degradation (a dead RPC host, a wedged worker pool) is recorded in the ring
even when tracing is disabled, so silent-recovery paths stay visible.

Span ids are a plain process-local counter — deterministic, ordered, and
free of entropy (no ``uuid``), which keeps the determinism lint happy and
trace files diffable.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, IO, Iterator, List, Optional

#: Default bound on the in-memory record ring.
DEFAULT_RING_CAPACITY = 4096


class Span:
    """One open span: emitted as a record when its ``with`` block exits.

    ``attrs`` may be extended while the span is open (e.g. a search span
    recording how many samples it ended up using).
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "attrs", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        duration = time.perf_counter() - self._t0
        self.tracer._pop(self)
        self.tracer._emit(
            {
                "kind": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "t0": self._t0,
                "dur_s": duration,
                "attrs": self.attrs,
            }
        )


class _NullSpan:
    """The disabled-tracer span: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Process-local structured tracer (bounded ring + optional JSONL sink)."""

    def __init__(
        self,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        sink_path: Optional[str] = None,
        enabled: bool = False,
    ) -> None:
        if ring_capacity < 1:
            raise ValueError(f"ring_capacity must be >= 1, got {ring_capacity}")
        #: Span/event emission is cheap enough to gate on this single bool.
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=ring_capacity)  # guarded-by: _lock
        self._sink_path = sink_path  # guarded-by: _lock
        self._sink: Optional[IO[str]] = None  # guarded-by: _lock
        self._next_id = 1  # guarded-by: _lock
        self._stack = threading.local()  # per-thread open-span stack

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(
        self,
        enabled: Optional[bool] = None,
        sink_path: "str | None | type(...)" = ...,
        ring_capacity: Optional[int] = None,
    ) -> None:  # acquires-lock: _lock
        """Reconfigure in place (tests and the CLI ``--trace`` flag).

        ``sink_path`` uses ``...`` as "leave unchanged" so ``None`` can mean
        "remove the sink".  Changing the capacity re-bounds the ring while
        keeping its newest records.
        """
        with self._lock:
            if enabled is not None:
                self.enabled = bool(enabled)
            if sink_path is not ...:
                if self._sink is not None:
                    self._sink.close()
                    self._sink = None
                self._sink_path = sink_path
            if ring_capacity is not None:
                if ring_capacity < 1:
                    raise ValueError(f"ring_capacity must be >= 1, got {ring_capacity}")
                self._ring = deque(self._ring, maxlen=ring_capacity)

    @property
    def sink_path(self) -> Optional[str]:
        """The configured JSONL sink path, if any."""
        return self._sink_path

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> "Span | _NullSpan":
        """A context manager timing one named span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, name, span_id, self._current_id(), attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time mark under the current span (when enabled)."""
        if not self.enabled:
            return
        self._record_event(name, "info", attrs)

    def warning(self, name: str, **attrs: Any) -> None:
        """Record an operational-degradation event — even when disabled.

        Dead hosts and wedged pools must never vanish silently just because
        nobody turned tracing on; the bounded ring makes always-on safe.
        """
        self._record_event(name, "warning", attrs)

    def _record_event(self, name: str, level: str, attrs: Dict[str, Any]) -> None:
        with self._lock:
            event_id = self._next_id
            self._next_id += 1
        self._emit(
            {
                "kind": "event",
                "name": name,
                "id": event_id,
                "parent": self._current_id(),
                "t": time.perf_counter(),
                "level": level,
                "attrs": attrs,
            }
        )

    def _emit(self, record: Dict[str, Any]) -> None:  # acquires-lock: _lock
        """Ring-append + sink-append one record (single flushed line write)."""
        with self._lock:
            self._ring.append(record)
            if self._sink_path is not None:
                if self._sink is None:
                    self._sink = open(self._sink_path, "a", encoding="utf-8")
                # One write of one whole line, flushed — the same torn-write
                # discipline as AppendOnlyJsonlStore.append_record: a crash
                # can tear at most the trailing line, never an earlier one.
                self._sink.write(json.dumps(record, sort_keys=True, default=str) + "\n")
                self._sink.flush()

    # ------------------------------------------------------------------
    # Per-thread span stack
    # ------------------------------------------------------------------
    def _frames(self) -> List[Span]:
        frames = getattr(self._stack, "frames", None)
        if frames is None:
            frames = []
            self._stack.frames = frames
        return frames

    def _current_id(self) -> Optional[int]:
        frames = self._frames()
        return frames[-1].span_id if frames else None

    def _push(self, span: Span) -> None:
        self._frames().append(span)

    def _pop(self, span: Span) -> None:
        frames = self._frames()
        if frames and frames[-1] is span:
            frames.pop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def records(
        self,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        level: Optional[str] = None,
    ) -> List[Dict[str, Any]]:  # acquires-lock: _lock
        """Snapshot of the ring, optionally filtered by kind/name/level."""
        with self._lock:
            snapshot = list(self._ring)
        return [
            record
            for record in snapshot
            if (kind is None or record["kind"] == kind)
            and (name is None or record["name"] == name)
            and (level is None or record.get("level") == level)
        ]

    def clear(self) -> None:  # acquires-lock: _lock
        """Drop every buffered record (tests isolate themselves with this)."""
        with self._lock:
            self._ring.clear()

    def close(self) -> None:  # acquires-lock: _lock
        """Close the sink file (reopened lazily on the next emit)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


#: The process-local tracer every instrumented layer shares.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-local tracer (disabled until configured)."""
    return _TRACER


def configure_tracing(
    enabled: Optional[bool] = None,
    sink_path: "str | None | type(...)" = ...,
    ring_capacity: Optional[int] = None,
) -> Tracer:
    """Configure and return the process-local tracer (CLI ``--trace``)."""
    _TRACER.configure(enabled=enabled, sink_path=sink_path, ring_capacity=ring_capacity)
    return _TRACER


def read_trace(path: str) -> Iterator[Dict[str, Any]]:
    """Yield the records of a trace JSONL file, tolerating a torn tail.

    A crash mid-append can leave one torn trailing line (the sink writes
    whole flushed lines, so earlier lines are always intact); any line that
    fails to parse is skipped instead of aborting the analysis.
    """
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record
