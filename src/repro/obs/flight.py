"""Flight recorder: per-search phase breakdown + trace-file analyzer.

:class:`FlightRecorder` rides along one search when tracing is enabled and
produces the ``telemetry`` block a
:class:`~repro.utils.serialization.SearchResultSummary` can carry: wall and
CPU seconds per phase (analyze / warm_start / optimize / finalize),
evaluation counts per backend, generations, and the memo-cache hit rate.

The block is diagnostic, never durable: ``SearchResultSummary.to_dict()``
excludes it by default, so stores, payload fingerprints, campaign resume
byte-identity, and the bit-identity property tests are all untouched by
whether a search was traced (docs/OBSERVABILITY.md spells out the
contract).

:func:`summarize_trace` + :func:`render_trace_summary` implement
``repro-magma trace summarize out.jsonl``: aggregate a trace file's spans
into a per-phase timeline table (count, total/mean/max duration, share of
traced wall time) plus event counts by level.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.trace import read_trace


class _PhaseTimer:
    """Context manager accumulating one phase's wall/cpu seconds."""

    __slots__ = ("recorder", "name", "_wall0", "_cpu0")

    def __init__(self, recorder: "FlightRecorder", name: str) -> None:
        self.recorder = recorder
        self.name = name
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.recorder._accumulate(
            self.name,
            wall_s=time.perf_counter() - self._wall0,
            cpu_s=time.process_time() - self._cpu0,
        )


class _NullPhase:
    """The disabled recorder's phase: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_PHASE = _NullPhase()


class FlightRecorder:
    """Accumulates one search's phase timings and evaluation counts.

    Single-threaded by design (one recorder per search, used from the
    search's own thread); monotonic clocks only.
    """

    def __init__(self) -> None:
        self._phases: Dict[str, Dict[str, float]] = {}
        self._counters: Dict[str, float] = {}

    def phase(self, name: str) -> _PhaseTimer:
        """Time a named phase (re-entering the same name accumulates)."""
        return _PhaseTimer(self, name)

    def _accumulate(self, name: str, wall_s: float, cpu_s: float) -> None:
        entry = self._phases.setdefault(name, {"wall_s": 0.0, "cpu_s": 0.0, "count": 0.0})
        entry["wall_s"] += wall_s
        entry["cpu_s"] += cpu_s
        entry["count"] += 1.0

    def count(self, key: str, amount: float = 1.0) -> None:
        """Accumulate a named counter (eval rows, generations, cache hits)."""
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-ready ``telemetry`` block."""
        phases = {
            name: {
                "wall_s": entry["wall_s"],
                "cpu_s": entry["cpu_s"],
                "count": int(entry["count"]),
            }
            for name, entry in self._phases.items()
        }
        counters = dict(self._counters)
        hits = counters.get("memo_hits", 0.0)
        misses = counters.get("memo_misses", 0.0)
        block: Dict[str, Any] = {"phases": phases, "counters": counters}
        if hits or misses:
            block["cache_hit_rate"] = hits / (hits + misses)
        return block


def null_phase() -> _NullPhase:
    """A no-op phase timer (used when no recorder is riding the search)."""
    return _NULL_PHASE


# ----------------------------------------------------------------------
# Trace-file analysis (``repro-magma trace summarize``)
# ----------------------------------------------------------------------
def summarize_trace(path_or_records: "str | Iterable[Dict[str, Any]]") -> Dict[str, Any]:
    """Aggregate a trace (file path or record iterable) per span name.

    Returns ``{"spans": {name: {count, total_s, mean_s, max_s, share}},
    "events": {name: {count, level}}, "wall_s": traced wall span,
    "records": total}`` where ``share`` is the family's total time as a
    fraction of the summed *top-level* span time — nested spans are already
    inside their parents, so only parentless spans define the denominator,
    but every family is scored against it (a nested family at 30% means 30%
    of the traced run was spent inside it).
    """
    records = read_trace(path_or_records) if isinstance(path_or_records, str) else path_or_records
    spans: Dict[str, Dict[str, float]] = {}
    events: Dict[str, Dict[str, Any]] = {}
    top_level_total = 0.0
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    total = 0
    for record in records:
        total += 1
        if record.get("kind") == "span":
            name = str(record.get("name"))
            duration = float(record.get("dur_s", 0.0))
            entry = spans.setdefault(
                name, {"count": 0.0, "total_s": 0.0, "max_s": 0.0, "top_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += duration
            entry["max_s"] = max(entry["max_s"], duration)
            if record.get("parent") is None:
                entry["top_s"] += duration
                top_level_total += duration
            t0 = float(record.get("t0", 0.0))
            t_min = t0 if t_min is None else min(t_min, t0)
            t_max = t0 + duration if t_max is None else max(t_max, t0 + duration)
        elif record.get("kind") == "event":
            name = str(record.get("name"))
            info = events.setdefault(name, {"count": 0, "level": record.get("level", "info")})
            info["count"] += 1
    span_summary: Dict[str, Any] = {}
    for name, entry in spans.items():
        span_summary[name] = {
            "count": int(entry["count"]),
            "total_s": entry["total_s"],
            "mean_s": entry["total_s"] / entry["count"],
            "max_s": entry["max_s"],
            "share": (entry["total_s"] / top_level_total) if top_level_total else 0.0,
        }
    return {
        "spans": span_summary,
        "events": events,
        "wall_s": (t_max - t_min) if (t_min is not None and t_max is not None) else 0.0,
        "records": total,
    }


def render_trace_summary(summary: Dict[str, Any]) -> str:
    """A fixed-width per-phase timeline table of :func:`summarize_trace`."""
    lines: List[str] = []
    spans: Dict[str, Dict[str, Any]] = summary["spans"]
    lines.append(
        f"trace: {summary['records']} records, "
        f"{len(spans)} span families, traced wall {summary['wall_s']:.3f}s"
    )
    if spans:
        width = max(len(name) for name in spans)
        header = f"{'span':<{width}}  {'count':>7}  {'total_s':>9}  {'mean_ms':>9}  {'max_ms':>9}  {'share':>6}"
        lines.append(header)
        lines.append("-" * len(header))
        ordered = sorted(spans.items(), key=lambda item: -item[1]["total_s"])
        for name, entry in ordered:
            lines.append(
                f"{name:<{width}}  {entry['count']:>7d}  {entry['total_s']:>9.3f}  "
                f"{entry['mean_s'] * 1e3:>9.2f}  {entry['max_s'] * 1e3:>9.2f}  "
                f"{entry['share'] * 100:>5.1f}%"
            )
    if summary["events"]:
        lines.append("")
        lines.append("events:")
        for name, info in sorted(summary["events"].items()):
            lines.append(f"  {name} ({info['level']}): {info['count']}")
    return "\n".join(lines)
