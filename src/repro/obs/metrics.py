"""Metrics registry: counters/gauges/histograms with Prometheus exposition.

A process-local :class:`MetricsRegistry` (reached via :func:`get_metrics`)
holds every metric the engine emits — evaluations per backend, kernel
row-events, memo/store hit counts, chunk dispatch/requeue/steal counts,
heartbeat failures, service queue depth, RPC bytes on the wire.  The full
catalogue (names, types, label sets) lives in docs/OBSERVABILITY.md.

Metrics are always on: one lock-guarded float update per *generation*,
*chunk*, or *request* — never per row — so the hot paths stay hot (the
``BENCH_obs_overhead.json`` floor bounds the total at <5% of the batch
sweep).  Like the tracer, metrics observe and never steer: no metric value
feeds a seed, a fingerprint, or a control-flow decision.

:func:`render_prometheus` renders the registry in the Prometheus text
exposition format (version 0.0.4) for the HTTP frontend's ``GET /metrics``
and the ``repro-magma metrics`` CLI dump.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Prometheus metric/label name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): micro-benchmark to slow-search range.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: Sorted (key, value) label pairs — the identity of one labelled series.
LabelPairs = Tuple[Tuple[str, str], ...]


def _label_pairs(labels: Optional[Dict[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    pairs = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid metric label name {key!r}")
        pairs.append((key, str(labels[key])))
    return tuple(pairs)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value (one labelled series)."""

    metric_type = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def inc(self, amount: float = 1.0) -> None:  # acquires-lock: _lock
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:  # acquires-lock: _lock
        with self._lock:
            return self._value

    def _samples(self, name: str, pairs: LabelPairs) -> List[Tuple[str, LabelPairs, float]]:
        return [(name, pairs, self.value)]


class Gauge:
    """A value that can go up and down (one labelled series)."""

    metric_type = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:  # acquires-lock: _lock
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:  # acquires-lock: _lock
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:  # acquires-lock: _lock
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:  # acquires-lock: _lock
        with self._lock:
            return self._value

    def _samples(self, name: str, pairs: LabelPairs) -> List[Tuple[str, LabelPairs, float]]:
        return [(name, pairs, self.value)]


class Histogram:
    """A distribution of observations over fixed cumulative buckets."""

    metric_type = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._lock = threading.Lock()
        self._bucket_counts = [0] * len(bounds)  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock

    def observe(self, value: float) -> None:  # acquires-lock: _lock
        value = float(value)
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    # Per-bucket counts; snapshot() renders them cumulatively.
                    self._bucket_counts[index] += 1
                    break

    def snapshot(self) -> Dict[str, Any]:  # acquires-lock: _lock
        """Cumulative bucket counts plus sum/count, as one consistent view."""
        with self._lock:
            counts = list(self._bucket_counts)
            total, count = self._sum, self._count
        cumulative: List[int] = []
        running = 0
        for bucket in counts:
            running += bucket
            cumulative.append(running)
        return {"bounds": self.bounds, "cumulative": cumulative, "sum": total, "count": count}

    @property
    def count(self) -> int:
        return int(self.snapshot()["count"])

    @property
    def sum(self) -> float:
        return float(self.snapshot()["sum"])

    def _samples(self, name: str, pairs: LabelPairs) -> List[Tuple[str, LabelPairs, float]]:
        snap = self.snapshot()
        samples: List[Tuple[str, LabelPairs, float]] = []
        for bound, cumulative in zip(snap["bounds"], snap["cumulative"]):
            le = pairs + (("le", _format_value(bound)),)
            samples.append((f"{name}_bucket", le, float(cumulative)))
        samples.append((f"{name}_bucket", pairs + (("le", "+Inf"),), float(snap["count"])))
        samples.append((f"{name}_sum", pairs, float(snap["sum"])))
        samples.append((f"{name}_count", pairs, float(snap["count"])))
        return samples


#: One metric family: shared name/help/type, one child per label set.
class _Family:
    def __init__(self, name: str, help_text: str, metric_type: str) -> None:
        self.name = name
        self.help = help_text
        self.metric_type = metric_type
        self.children: "Dict[LabelPairs, Counter | Gauge | Histogram]" = {}


class MetricsRegistry:
    """Process-local registry of metric families, keyed by name + labels.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the family's type and help text, later calls return the existing
    series (a type mismatch fails loudly — one name, one type).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    def counter(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        metric = self._series(name, help_text, "counter", labels, lambda: Counter())
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        metric = self._series(name, help_text, "gauge", labels, lambda: Gauge())
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._series(name, help_text, "histogram", labels, lambda: Histogram(buckets))
        assert isinstance(metric, Histogram)
        return metric

    def _series(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labels: Optional[Dict[str, str]],
        build: Any,
    ) -> "Counter | Gauge | Histogram":  # acquires-lock: _lock
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        pairs = _label_pairs(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, help_text, metric_type)
                self._families[name] = family
            elif family.metric_type != metric_type:
                raise ValueError(
                    f"metric {name!r} is a {family.metric_type}, not a {metric_type}"
                )
            if help_text and not family.help:
                family.help = help_text
            series = family.children.get(pairs)
            if series is None:
                series = build()
                family.children[pairs] = series
            return series

    # ------------------------------------------------------------------
    def value_of(self, name: str, labels: Optional[Dict[str, str]] = None) -> float:
        """Current value of one counter/gauge series (0.0 when absent)."""
        pairs = _label_pairs(labels)
        with self._lock:
            family = self._families.get(name)
            series = family.children.get(pairs) if family is not None else None
        if series is None or isinstance(series, Histogram):
            return 0.0
        return float(series.value)

    def _family_view(self) -> "List[Tuple[_Family, List[Tuple[LabelPairs, Any]]]]":
        """Consistent (family, sorted children) snapshot taken under the lock."""
        with self._lock:
            return [
                (family, sorted(family.children.items()))
                for family in sorted(self._families.values(), key=lambda f: f.name)
            ]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump of every series (the CLI/healthz form)."""
        dump: Dict[str, Any] = {}
        for family, children in self._family_view():
            series_list = []
            for pairs, series in children:
                entry: Dict[str, Any] = {"labels": dict(pairs)}
                if isinstance(series, Histogram):
                    entry.update(series.snapshot())
                    entry["bounds"] = list(entry["bounds"])
                else:
                    entry["value"] = series.value
                series_list.append(entry)
            dump[family.name] = {
                "type": family.metric_type,
                "help": family.help,
                "series": series_list,
            }
        return dump

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: List[str] = []
        for family, children in self._family_view():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.metric_type}")
            for pairs, series in children:
                for sample_name, sample_pairs, value in series._samples(family.name, pairs):
                    if sample_pairs:
                        rendered = ",".join(
                            f'{key}="{_escape_label_value(val)}"' for key, val in sample_pairs
                        )
                        lines.append(f"{sample_name}{{{rendered}}} {_format_value(value)}")
                    else:
                        lines.append(f"{sample_name} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:  # acquires-lock: _lock
        """Drop every family (tests isolate themselves with this)."""
        with self._lock:
            self._families.clear()


#: The process-local registry every instrumented layer shares.
_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-local metrics registry."""
    return _REGISTRY


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text form of *registry* (default: the process registry)."""
    return (registry if registry is not None else _REGISTRY).render()
