"""Telemetry spine: structured tracing, metrics registry, flight recorder.

Zero-dependency (stdlib-only) observability for the whole engine:

* :mod:`repro.obs.trace` — a process-local :class:`~repro.obs.trace.Tracer`
  emitting JSONL span/event records into a bounded in-memory ring with an
  optional crash-safe file sink.
* :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of counters/gauges/histograms with a Prometheus text exposition, served
  by the HTTP frontend's ``GET /metrics``.
* :mod:`repro.obs.flight` — the per-search
  :class:`~repro.obs.flight.FlightRecorder` (wall/cpu per phase, eval and
  memo-cache counts) and the ``repro-magma trace summarize`` analyzer.

The determinism contract (docs/OBSERVABILITY.md): telemetry observes, never
steers.  All clocks are monotonic, no telemetry value ever reaches a seed or
a payload fingerprint, and every search is bit-identical with tracing on or
off — a property the tier-1 suite asserts for all four eval backends.
"""

from repro.obs.flight import (
    FlightRecorder,
    render_trace_summary,
    summarize_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    render_prometheus,
)
from repro.obs.trace import (
    Tracer,
    configure_tracing,
    get_tracer,
    read_trace,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "configure_tracing",
    "get_metrics",
    "get_tracer",
    "read_trace",
    "render_prometheus",
    "render_trace_summary",
    "summarize_trace",
]
