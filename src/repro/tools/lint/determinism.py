"""RPL1xx — determinism: all entropy must flow through ``repro.utils.rng``.

The seed policy (docs/DETERMINISM.md) only works if no module mints its own
entropy on the side.  Unlike the retired regex lint, this checker resolves
imports through the AST, so ``from numpy import random``, ``import
numpy.random as npr``, and ``from numpy.random import default_rng`` are all
seen as the same qualified name — and annotations like
``rng: np.random.Generator`` are never false positives because only *calls*
are examined.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Mapping

from .engine import (
    Checker,
    Finding,
    SourceFile,
    call_final_name,
    import_aliases,
    qualified_name,
    register,
)


@register
class DeterminismChecker(Checker):
    """Ban naked entropy sources outside the seed policy."""

    name = "determinism"
    codes: Mapping[str, str] = {
        "RPL101": "numpy.random module-level call outside the seed policy",
        "RPL102": "stdlib random module call outside the seed policy",
        "RPL103": "argless RNG constructor mints OS entropy",
        "RPL104": "operating-system entropy source",
        "RPL105": "time-derived seed defeats reproducibility",
    }

    #: numpy.random attributes that are constructors/types, not entropy calls.
    ALLOWED_NUMPY = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "MT19937",
            "SFC64",
        }
    )
    #: Constructors whose *argless* call pulls fresh OS entropy.
    ENTROPY_WHEN_ARGLESS = frozenset({"default_rng", "SeedSequence"})
    #: Wall-clock sources that must never feed a seed.
    TIME_SOURCES = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
        }
    )
    #: Direct OS entropy taps.
    OS_ENTROPY = frozenset({"os.urandom", "os.getrandom", "uuid.uuid4", "uuid.uuid1"})
    #: Call targets whose positional arguments are seeds.
    SEED_CTOR_NAMES = frozenset({"default_rng", "SeedSequence", "ensure_rng", "set_global_seed"})

    def check(self, src: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_seed_arguments(src, node, aliases)
            qual = qualified_name(node.func, aliases)
            if qual is None:
                continue
            if qual.startswith("numpy.random."):
                tail = qual[len("numpy.random.") :]
                if "." in tail:
                    continue  # e.g. numpy.random.Generator.<method> via an odd alias
                if tail not in self.ALLOWED_NUMPY:
                    yield self.finding(
                        src,
                        node,
                        "RPL101",
                        f"numpy.random.{tail}() bypasses the seed policy — use "
                        "repro.utils.rng.ensure_rng / SeedPolicy.stream instead",
                    )
                elif tail in self.ENTROPY_WHEN_ARGLESS and not node.args and not node.keywords:
                    yield self.finding(
                        src,
                        node,
                        "RPL103",
                        f"argless {tail}() mints OS entropy — resolve a seed through "
                        "repro.utils.rng (ensure_rng(None) applies the seed policy)",
                    )
            elif qual.startswith("random."):
                yield self.finding(
                    src,
                    node,
                    "RPL102",
                    f"stdlib {qual}() is unseedable per-process state — use "
                    "repro.utils.rng instead",
                )
            elif qual in self.OS_ENTROPY or qual.startswith("secrets."):
                yield self.finding(
                    src,
                    node,
                    "RPL104",
                    f"{qual}() draws OS entropy — derive values from the run seed "
                    "(docs/DETERMINISM.md)",
                )

    # ------------------------------------------------------------------
    def _check_seed_arguments(
        self, src: SourceFile, call: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        """Flag wall-clock values flowing into a seed position."""
        for keyword in call.keywords:
            if keyword.arg == "seed" and self._contains_time_call(keyword.value, aliases):
                yield self.finding(
                    src,
                    call,
                    "RPL105",
                    "seed derived from wall-clock time — pass a fixed seed or None "
                    "so the seed policy resolves it",
                )
        final = call_final_name(call.func)
        if final in self.SEED_CTOR_NAMES:
            for arg in call.args:
                if self._contains_time_call(arg, aliases):
                    yield self.finding(
                        src,
                        call,
                        "RPL105",
                        f"{final}() seeded from wall-clock time — pass a fixed seed "
                        "or None so the seed policy resolves it",
                    )

    def _contains_time_call(self, node: ast.expr, aliases: Dict[str, str]) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                qual = qualified_name(sub.func, aliases)
                if qual in self.TIME_SOURCES:
                    return True
        return False
