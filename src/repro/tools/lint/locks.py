"""RPL2xx — lock discipline: annotated shared state only mutates under its lock.

Convention (documented in docs/STATIC_ANALYSIS.md):

* ``self.attr = ...  # guarded-by: _lock`` on the attribute's assignment in
  ``__init__`` declares that every later mutation of ``self.attr`` (assign,
  augment, delete, or a mutating method such as ``.append``/``.pop``) must
  happen inside a ``with self._lock:`` block.
* ``# holds-lock: _lock`` on a ``def`` declares a private helper whose
  callers already hold the lock — mutations inside are allowed, but
  re-acquiring the same (non-reentrant) lock is flagged as a deadlock.
* ``# acquires-lock: _lock`` on a ``def`` declares that the method's body
  is responsible for taking the lock itself; a body that never does is
  flagged.

``__init__`` is exempt from the mutation check (the object is not shared
yet), and nested functions are analysed with an empty lock context (a
closure may run on another thread after the ``with`` exits).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple, Union

from .engine import Checker, Finding, SourceFile, register

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?:self\.)?([A-Za-z_]\w*)")
_HOLDS_RE = re.compile(r"#\s*holds-lock:\s*(?:self\.)?([A-Za-z_]\w*)")
_ACQUIRES_RE = re.compile(r"#\s*acquires-lock:\s*(?:self\.)?([A-Za-z_]\w*)")

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names that mutate their receiver in place.
MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "add",
        "insert",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)


@register
class LockDisciplineChecker(Checker):
    """Enforce guarded-by / holds-lock / acquires-lock annotations."""

    name = "locks"
    codes: Mapping[str, str] = {
        "RPL201": "guarded attribute mutated outside its lock",
        "RPL202": "lock annotation references an attribute never assigned",
        "RPL203": "lock acquired while already held (deadlock on threading.Lock)",
        "RPL204": "acquires-lock method never takes its declared lock",
    }

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node)

    # ------------------------------------------------------------------
    def _check_class(self, src: SourceFile, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            node for node in cls.body if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        assigned = self._assigned_attrs(cls)
        guarded, annotation_lines = self._guarded_attrs(src, cls)
        holds: Dict[str, Tuple[str, int]] = {}
        acquires: Dict[str, Tuple[str, int]] = {}
        for method in methods:
            hold = self._def_annotation(src, method, _HOLDS_RE)
            if hold is not None:
                holds[method.name] = hold
            acquire = self._def_annotation(src, method, _ACQUIRES_RE)
            if acquire is not None:
                acquires[method.name] = acquire

        declared_locks = set(guarded.values())
        declared_locks.update(lock for lock, _ in holds.values())
        declared_locks.update(lock for lock, _ in acquires.values())

        # RPL202: every annotation must name a real attribute of the class.
        referenced: List[Tuple[str, int]] = list(holds.values()) + list(acquires.values())
        referenced.extend((lock, annotation_lines[attr]) for attr, lock in guarded.items())
        for lock, line in referenced:
            if lock not in assigned:
                yield Finding(
                    code="RPL202",
                    message=(
                        f"annotation names lock {lock!r} but no 'self.{lock}' is "
                        f"ever assigned in class {cls.name}"
                    ),
                    path=src.path,
                    line=line,
                    column=1,
                    checker=self.name,
                )

        for method in methods:
            if method.name == "__init__":
                continue  # construction precedes sharing
            held: frozenset = frozenset()
            if method.name in holds:
                held = frozenset({holds[method.name][0]})
            yield from self._scan_body(src, method.body, held, guarded, declared_locks)
            if method.name in acquires:
                lock, line = acquires[method.name]
                if not self._body_acquires(method, lock):
                    yield Finding(
                        code="RPL204",
                        message=(
                            f"method {method.name}() is annotated acquires-lock: "
                            f"{lock} but its body never enters 'with self.{lock}:'"
                        ),
                        path=src.path,
                        line=line,
                        column=1,
                        checker=self.name,
                    )

    # ------------------------------------------------------------------
    def _assigned_attrs(self, cls: ast.ClassDef) -> Set[str]:
        attrs: Set[str] = set()
        for node in ast.walk(cls):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    attrs.add(attr)
        return attrs

    def _guarded_attrs(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> Tuple[Dict[str, str], Dict[str, int]]:
        guarded: Dict[str, str] = {}
        lines: Dict[str, int] = {}
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            match = _GUARDED_RE.search(src.comment(node.lineno))
            if match is None:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    guarded[attr] = match.group(1)
                    lines[attr] = node.lineno
        return guarded, lines

    def _def_annotation(
        self, src: SourceFile, method: _FunctionNode, pattern: "re.Pattern[str]"
    ) -> Optional[Tuple[str, int]]:
        """Find an annotation comment anywhere in the def's signature lines."""
        body_start = method.body[0].lineno if method.body else method.lineno + 1
        for line in range(method.lineno, max(body_start, method.lineno + 1)):
            match = pattern.search(src.comment(line))
            if match is not None:
                return match.group(1), line
        return None

    def _body_acquires(self, method: _FunctionNode, lock: str) -> bool:
        for node in ast.walk(method):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _self_attr(item.context_expr) == lock:
                        return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "acquire" and _self_attr(node.func.value) == lock:
                    return True
        return False

    # ------------------------------------------------------------------
    def _scan_body(
        self,
        src: SourceFile,
        stmts: List[ast.stmt],
        held: frozenset,
        guarded: Dict[str, str],
        declared_locks: Set[str],
    ) -> Iterator[Finding]:
        for stmt in stmts:
            yield from self._visit(src, stmt, held, guarded, declared_locks)

    def _visit(
        self,
        src: SourceFile,
        node: ast.AST,
        held: frozenset,
        guarded: Dict[str, str],
        declared_locks: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                lock = _self_attr(item.context_expr)
                if lock is not None and lock in declared_locks:
                    if lock in held:
                        yield self.finding(
                            src,
                            item.context_expr,
                            "RPL203",
                            f"'with self.{lock}:' while the lock is already held — "
                            "threading.Lock is not reentrant",
                        )
                    acquired.add(lock)
                yield from self._visit(src, item.context_expr, held, guarded, declared_locks)
            inner = frozenset(held | acquired)
            for stmt in node.body:
                yield from self._visit(src, stmt, inner, guarded, declared_locks)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A closure can outlive the with-block; analyse it lock-free.
            for stmt in node.body:
                yield from self._visit(src, stmt, frozenset(), guarded, declared_locks)
            return
        if isinstance(node, ast.Lambda):
            yield from self._visit(src, node.body, frozenset(), guarded, declared_locks)
            return

        yield from self._check_mutation(src, node, held, guarded)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(src, child, held, guarded, declared_locks)

    def _check_mutation(
        self,
        src: SourceFile,
        node: ast.AST,
        held: frozenset,
        guarded: Dict[str, str],
    ) -> Iterator[Finding]:
        mutated: List[str] = []
        if isinstance(node, ast.Assign):
            for target in node.targets:
                mutated.extend(_mutated_attrs(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            mutated.extend(_mutated_attrs(node.target))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                mutated.extend(_mutated_attrs(target))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATORS:
                attr = _self_attr(node.func.value)
                if attr is not None:
                    mutated.append(attr)
        for attr in mutated:
            lock = guarded.get(attr)
            if lock is not None and lock not in held:
                yield self.finding(
                    src,
                    node,
                    "RPL201",
                    f"'self.{attr}' is guarded-by {lock} but is mutated outside "
                    f"'with self.{lock}:'",
                )


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutated_attrs(target: ast.expr) -> List[str]:
    """Attribute names of ``self`` mutated by an assignment target."""
    attrs: List[str] = []
    direct = _self_attr(target)
    if direct is not None:
        attrs.append(direct)
    elif isinstance(target, ast.Subscript):
        inner = _self_attr(target.value)
        if inner is not None:
            attrs.append(inner)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            attrs.extend(_mutated_attrs(element))
    elif isinstance(target, ast.Starred):
        attrs.extend(_mutated_attrs(target.value))
    return attrs
