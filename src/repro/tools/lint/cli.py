"""Command-line front end for repro-lint.

Two equivalent entry points exist so the lint runs with or without the
package installed as a console script::

    repro-magma lint [paths...] [--select RPL1] [--format json] [--out f]
    python -m repro.tools.lint [paths...] [...]

Exit status is 1 when any unsuppressed finding remains (CI fails on it),
0 otherwise.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import LintReport, all_codes, lint_paths


def default_paths() -> List[str]:
    """Lint the installed ``repro`` package itself when no path is given."""
    import repro

    return [str(Path(repro.__file__).resolve().parent)]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared lint options (used by both CLI entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PREFIX",
        help="only report codes matching these comma-separated prefixes "
        "(e.g. --select RPL1 for the determinism gate)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print every registered error code and exit",
    )


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    output_format: str = "text",
    out: Optional[str] = None,
    show_suppressed: bool = False,
    list_codes: bool = False,
) -> int:
    """Execute one lint run and print the report; returns the exit status."""
    if list_codes:
        for code, description in sorted(all_codes().items()):
            print(f"{code}  {description}")
        return 0
    resolved = list(paths) if paths else default_paths()
    report: LintReport = lint_paths(resolved, select=select)
    if out is not None:
        Path(out).write_text(report.to_json() + "\n", encoding="utf-8")
    if output_format == "json":
        print(report.to_json())
    else:
        print(report.to_text(show_suppressed=show_suppressed))
    return 1 if report.unsuppressed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.tools.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checkers for the repro codebase "
        "(see docs/STATIC_ANALYSIS.md)",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(
        paths=args.paths,
        select=args.select,
        output_format=args.format,
        out=args.out,
        show_suppressed=args.show_suppressed,
        list_codes=args.list_codes,
    )
