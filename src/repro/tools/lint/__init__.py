"""repro-lint: AST-based invariant checkers (see docs/STATIC_ANALYSIS.md).

Public API::

    from repro.tools.lint import lint_source, lint_paths, Finding

    report = lint_paths(["src/repro"])          # whole tree
    report = lint_source(code, path="x.py")     # one in-memory module
    report.unsuppressed                         # findings that fail the build
"""

from .engine import (
    Checker,
    Finding,
    LintReport,
    SourceFile,
    all_codes,
    lint_paths,
    lint_source,
    register,
    registered_checkers,
)

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "SourceFile",
    "all_codes",
    "lint_paths",
    "lint_source",
    "register",
    "registered_checkers",
]
