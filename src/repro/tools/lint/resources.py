"""RPL4xx — resource lifecycle: sockets, pools, files, and subprocesses close.

A leaked socket or process pool in the service tier survives the request
that created it, so every call that *creates* an OS-backed resource must
dispose of it along some visible path:

* created as a ``with`` context manager,
* closed immediately (``create_connection(...).close()``),
* bound to a name that later flows into ``with``, a ``.close()``-family
  call (typically in ``finally``), a ``return``/``yield``, or another call
  (ownership transfer — e.g. handing a socket to a handler thread),
* or stored on ``self``/a container (the owner's ``close()`` is in charge).

A creator whose result is bound but never disposed is RPL401; a creator
whose result is discarded outright is RPL402.  The analysis is lexical and
per-function — it proves the common leaks cheaply rather than chasing
aliasing through the heap.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Mapping, Optional, Tuple, Union

from .engine import (
    Checker,
    Finding,
    SourceFile,
    call_final_name,
    import_aliases,
    qualified_name,
    register,
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Fully qualified callables that return an owned OS resource.
QUALIFIED_CREATORS = frozenset(
    {
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "sqlite3.connect",
        "subprocess.Popen",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
        "urllib.request.urlopen",
        "multiprocessing.Pool",
    }
)
#: Method/constructor names that create resources regardless of module path
#: (``context.Pool(...)``, ``listener.accept()``, ``concurrent.futures`` pools).
NAME_CREATORS = frozenset(
    {
        "Popen",
        "Pool",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "NamedTemporaryFile",
        "TemporaryFile",
        "accept",
    }
)
#: Methods that count as disposing of a resource.
CLOSERS = frozenset({"close", "terminate", "shutdown", "release", "kill", "server_close"})


@register
class ResourceLifecycleChecker(Checker):
    """Require a visible disposal path for every created OS resource."""

    name = "resources"
    codes: Mapping[str, str] = {
        "RPL401": "resource is bound to a name but never closed or transferred",
        "RPL402": "resource is created and discarded without being closed",
    }

    def check(self, src: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(src.tree)
        parents = src.parents()
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_creator(node, aliases):
                continue
            yield from self._check_creation(src, node, parents)

    # ------------------------------------------------------------------
    def _is_creator(self, call: ast.Call, aliases: Mapping[str, str]) -> bool:
        qual = qualified_name(call.func, aliases)
        if qual in QUALIFIED_CREATORS:
            return True
        if qual in {"io.open", "builtins.open"}:
            return True
        if (
            isinstance(call.func, ast.Name)
            and call.func.id == "open"
            and "open" not in aliases
        ):
            return True
        final = call_final_name(call.func)
        return final in NAME_CREATORS and qual is None

    def _check_creation(
        self, src: SourceFile, call: ast.Call, parents: Mapping[ast.AST, ast.AST]
    ) -> Iterator[Finding]:
        label = call_final_name(call.func) or "resource"
        # Climb from the call to its statement, classifying the usage.
        node: ast.AST = call
        while True:
            parent = parents.get(node)
            if parent is None:
                return
            if isinstance(parent, ast.withitem):
                return  # managed by the with-statement
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom, ast.Await)):
                return  # ownership moves to the caller
            if isinstance(parent, (ast.Call, ast.keyword)) and node is not call.func:
                return  # passed straight into another call (ownership transfer)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                grand = parents.get(parent)
                if parent.attr in CLOSERS and isinstance(grand, ast.Call):
                    return  # immediate .close() idiom
                yield self.finding(
                    src,
                    call,
                    "RPL402",
                    f"{label}() result is used and discarded without close() — "
                    "bind it and close it, or use a with-statement",
                )
                return
            if isinstance(parent, (ast.Assign, ast.AnnAssign)):
                yield from self._check_binding(src, call, parent, parents, label)
                return
            if isinstance(parent, ast.Expr):
                yield self.finding(
                    src,
                    call,
                    "RPL402",
                    f"{label}() result is discarded — the resource leaks until "
                    "garbage collection",
                )
                return
            if isinstance(parent, ast.stmt):
                return  # other statement positions (for-iter etc.): give benefit of doubt
            node = parent

    def _check_binding(
        self,
        src: SourceFile,
        call: ast.Call,
        assign: "ast.Assign | ast.AnnAssign",
        parents: Mapping[ast.AST, ast.AST],
        label: str,
    ) -> Iterator[Finding]:
        targets = assign.targets if isinstance(assign, ast.Assign) else [assign.target]
        names: List[str] = []
        for target in targets:
            kind, extracted = self._target_names(target)
            if kind == "transfer":
                return  # stored on self/a container: the owner closes it
            names.extend(extracted)
        if not names:
            return
        scope = self._enclosing_scope(assign, parents, src)
        for name in names:
            if name == "_":
                continue
            if self._is_disposed(scope, name):
                return
        yield self.finding(
            src,
            call,
            "RPL401",
            f"{label}() is bound to {names[0]!r} but {names[0]!r} never reaches a "
            "with-statement, close()/terminate(), return, or another call — "
            "close it in a finally block",
        )

    def _target_names(self, target: ast.expr) -> Tuple[str, List[str]]:
        """Classify an assignment target: local names vs ownership transfer."""
        if isinstance(target, ast.Name):
            return "names", [target.id]
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return "transfer", []
        if isinstance(target, (ast.Tuple, ast.List)):
            names: List[str] = []
            for element in target.elts:
                kind, extracted = self._target_names(element)
                if kind == "transfer":
                    return "transfer", []
                names.extend(extracted)
            return "names", names
        if isinstance(target, ast.Starred):
            return self._target_names(target.value)
        return "names", []

    def _enclosing_scope(
        self, node: ast.AST, parents: Mapping[ast.AST, ast.AST], src: SourceFile
    ) -> ast.AST:
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = parents.get(current)
        return src.tree

    def _is_disposed(self, scope: ast.AST, name: str) -> bool:
        """True when *name* visibly reaches a disposal path inside *scope*."""
        for node in ast.walk(scope):
            if isinstance(node, ast.withitem):
                if isinstance(node.context_expr, ast.Name) and node.context_expr.id == name:
                    return True
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in CLOSERS
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                ):
                    return True
                for argument in list(node.args) + [kw.value for kw in node.keywords]:
                    if any(
                        isinstance(sub, ast.Name) and sub.id == name
                        for sub in ast.walk(argument)
                    ):
                        return True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                # Only the object itself escaping counts — ``return sock`` is a
                # transfer, ``return sock.recv(1)`` still leaks the socket.
                if node.value is not None and _escapes_directly(node.value, name):
                    return True
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(target, (ast.Attribute, ast.Subscript)) for target in node.targets
                ) and (isinstance(node.value, ast.Name) and node.value.id == name):
                    return True
        return False


def _escapes_directly(value: ast.expr, name: str) -> bool:
    """True when *name* itself (not a derived value) is part of *value*."""
    if isinstance(value, ast.Name):
        return value.id == name
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return any(_escapes_directly(element, name) for element in value.elts)
    if isinstance(value, ast.Dict):
        return any(v is not None and _escapes_directly(v, name) for v in value.values)
    if isinstance(value, ast.Starred):
        return _escapes_directly(value.value, name)
    return False
