"""repro-lint engine: files, findings, suppressions, and the checker registry.

The engine is deliberately stdlib-only (``ast`` + ``tokenize``): it parses
each source file once into a :class:`SourceFile` (AST, comment map, parent
links), runs every registered :class:`Checker` over it, and applies the
suppression comments before reporting.  Checkers are plugins: subclass
:class:`Checker`, declare stable ``RPLnnn`` codes, and decorate the class
with :func:`register` — the engine discovers the built-in checker modules on
first use and any externally imported checker joins the same registry.

Error-code layout (the full table lives in ``docs/STATIC_ANALYSIS.md``):

* ``RPL0xx`` — engine-owned (suppression hygiene, parse failures); these are
  never suppressible, because they police the suppression mechanism itself.
* ``RPL1xx`` — determinism (entropy outside the seed policy).
* ``RPL2xx`` — lock discipline (``guarded-by`` annotations).
* ``RPL3xx`` — RPC frame safety (auth-before-unpickle, frame allowlists).
* ``RPL4xx`` — resource lifecycle (sockets, pools, files, subprocesses).
* ``RPL5xx`` — exception policy (bare/silent broad handlers).

Suppression syntax::

    something_flagged()  # repro-lint: disable=RPL101 — why this is fine
    # repro-lint: disable-file=RPL401 — whole-file waiver, put near the top

A ``disable``/``disable-file`` naming a code no checker registers is itself
an ``RPL001`` finding, so stale waivers cannot rot silently.
"""

from __future__ import annotations

import ast
import importlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Type

#: Engine-owned codes; never suppressible.
ENGINE_CODES: Dict[str, str] = {
    "RPL001": "unknown error code in a repro-lint suppression comment",
    "RPL002": "file could not be parsed",
}

#: The built-in checker modules loaded into the registry on first use.
_CHECKER_MODULES: Tuple[str, ...] = (
    "determinism",
    "locks",
    "rpc_frames",
    "resources",
    "excepts",
    "diagnostics",
)

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*(?P<codes>[A-Z0-9,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One reported invariant violation at a source position."""

    code: str
    message: str
    path: str
    line: int
    column: int
    checker: str
    suppressed: bool = False

    def render(self) -> str:
        """The canonical one-line text form (``path:line:col: CODE message``)."""
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.column}: {self.code}{tag} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the CI artifact is a list of these)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "checker": self.checker,
            "suppressed": self.suppressed,
        }


class SourceFile:
    """One parsed source file: text, AST, comments, and parent links."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        self.tree = ast.parse(text)
        #: line number -> full comment text (``#`` included) on that line.
        self.comments: Dict[int, str] = {}
        try:
            for token in tokenize.generate_tokens(io.StringIO(text).readline):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except (tokenize.TokenError, IndentationError):
            # ast.parse accepted the file, so a tokenize hiccup only costs
            # comment-based features (annotations/suppressions), not the lint.
            pass
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None

    def comment(self, line: int) -> str:
        """The comment on *line*, or ``""``."""
        return self.comments.get(line, "")

    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child AST node -> parent node map (built lazily, cached)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents


class Checker:
    """Base class for one invariant checker (a repro-lint plugin).

    Subclasses declare a short ``name``, a ``codes`` table mapping each
    stable ``RPLnnn`` code to its one-line description, and implement
    :meth:`check` yielding :class:`Finding` objects.  Register with the
    :func:`register` decorator.
    """

    name: str = "checker"
    codes: Mapping[str, str] = {}

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Yield every violation this checker sees in *src*."""
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST, code: str, message: str) -> Finding:
        """Build a finding anchored at *node* (or line 1 for module-level)."""
        return Finding(
            code=code,
            message=message,
            path=src.path,
            line=int(getattr(node, "lineno", 1)),
            column=int(getattr(node, "col_offset", 0)) + 1,
            checker=self.name,
        )


_REGISTRY: List[Type[Checker]] = []


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a :class:`Checker` subclass to the registry."""
    if cls not in _REGISTRY:
        _REGISTRY.append(cls)
    return cls


def _load_builtin_checkers() -> None:
    for module in _CHECKER_MODULES:
        importlib.import_module(f"{__package__}.{module}")


def registered_checkers() -> List[Checker]:
    """Fresh instances of every registered checker (built-ins auto-loaded)."""
    _load_builtin_checkers()
    return [cls() for cls in _REGISTRY]


def all_codes() -> Dict[str, str]:
    """Every known error code (engine + checkers) with its description."""
    codes = dict(ENGINE_CODES)
    for checker in registered_checkers():
        codes.update(checker.codes)
    return codes


# ----------------------------------------------------------------------
# Shared AST utilities (used by several checkers)
# ----------------------------------------------------------------------
def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map every imported local name to the fully qualified name it binds.

    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from numpy import
    random`` -> ``{"random": "numpy.random"}``; ``from numpy.random import
    default_rng as rng_ctor`` -> ``{"rng_ctor": "numpy.random.default_rng"}``.
    This is what lets checkers resolve aliased calls a regex lint misses.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay package-local; nothing to ban there
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def qualified_name(node: ast.expr, aliases: Mapping[str, str]) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to its imported dotted name.

    ``np.random.rand`` with ``{"np": "numpy"}`` resolves to
    ``"numpy.random.rand"``; chains rooted in anything that is not an
    imported name (``self.rng.random``) resolve to ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def call_final_name(func: ast.expr) -> Optional[str]:
    """The last identifier of a call target (``a.b.c(...)`` -> ``"c"``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _parse_suppressions(
    src: SourceFile, known_codes: Set[str]
) -> Tuple[Dict[int, Set[str]], Set[str], List[Finding]]:
    """Extract per-line and per-file suppression tokens, validating codes."""
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    errors: List[Finding] = []
    for line, comment in src.comments.items():
        match = _DISABLE_RE.search(comment)
        if match is None:
            continue
        tokens = {tok.strip() for tok in match.group("codes").split(",") if tok.strip()}
        for token in tokens:
            valid = token in known_codes or any(c.startswith(token) for c in known_codes)
            if not valid:
                errors.append(
                    Finding(
                        code="RPL001",
                        message=(
                            f"suppression names unknown code {token!r} "
                            f"(see docs/STATIC_ANALYSIS.md for the code table)"
                        ),
                        path=src.path,
                        line=line,
                        column=1,
                        checker="engine",
                    )
                )
        valid_tokens = {
            t for t in tokens
            if t in known_codes or any(c.startswith(t) for c in known_codes)
        }
        if match.group("scope"):
            per_file |= valid_tokens
        else:
            per_line.setdefault(line, set()).update(valid_tokens)
    return per_line, per_file, errors


def _matches(code: str, tokens: Iterable[str]) -> bool:
    return any(code == token or code.startswith(token) for token in tokens)


# ----------------------------------------------------------------------
# Reports and entry points
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_scanned: int

    @property
    def unsuppressed(self) -> List[Finding]:
        """Findings that fail the build."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        """Findings waived by ``repro-lint: disable`` comments."""
        return [f for f in self.findings if f.suppressed]

    def summary_counts(self) -> Dict[str, int]:
        """Unsuppressed finding count per code."""
        counts: Dict[str, int] = {}
        for finding in self.unsuppressed:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_text(self, show_suppressed: bool = False) -> str:
        """Human-readable report (one line per finding plus a summary line)."""
        shown = self.findings if show_suppressed else self.unsuppressed
        lines = [finding.render() for finding in shown]
        lines.append(
            f"{self.files_scanned} file(s) scanned: "
            f"{len(self.unsuppressed)} finding(s), {len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-ready report (what CI uploads as an artifact)."""
        return {
            "files_scanned": self.files_scanned,
            "unsuppressed": len(self.unsuppressed),
            "suppressed": len(self.suppressed),
            "summary": self.summary_counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self) -> str:
        """The JSON report as a string."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)


def _select_tokens(select: "str | Sequence[str] | None") -> Optional[List[str]]:
    if select is None:
        return None
    if isinstance(select, str):
        select = [select]
    tokens = [tok.strip() for item in select for tok in str(item).split(",") if tok.strip()]
    return tokens or None


def lint_source(
    text: str,
    path: str = "<memory>",
    select: "str | Sequence[str] | None" = None,
    checkers: Optional[Sequence[Checker]] = None,
) -> LintReport:
    """Lint one source text (the unit tests' entry point)."""
    active = list(checkers) if checkers is not None else registered_checkers()
    known = set(ENGINE_CODES)
    for checker in active:
        known.update(checker.codes)
    tokens = _select_tokens(select)

    try:
        src = SourceFile(path, text)
    except SyntaxError as error:
        finding = Finding(
            code="RPL002",
            message=f"file could not be parsed: {error.msg}",
            path=path,
            line=int(error.lineno or 1),
            column=int(error.offset or 1),
            checker="engine",
        )
        if tokens is not None and not _matches(finding.code, tokens):
            return LintReport(findings=[], files_scanned=1)
        return LintReport(findings=[finding], files_scanned=1)

    per_line, per_file, suppression_errors = _parse_suppressions(src, known)
    findings: List[Finding] = []
    for checker in active:
        for finding in checker.check(src):
            waivers = per_line.get(finding.line, set()) | per_file
            if finding.code not in ENGINE_CODES and _matches(finding.code, waivers):
                finding = replace(finding, suppressed=True)
            findings.append(finding)
    findings.extend(suppression_errors)
    if tokens is not None:
        findings = [f for f in findings if _matches(f.code, tokens)]
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return LintReport(findings=findings, files_scanned=1)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under *paths* (files taken as-is), sorted, no caches."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if "__pycache__" in candidate.parts:
                continue
            yield candidate


def lint_paths(
    paths: Sequence[str],
    select: "str | Sequence[str] | None" = None,
    checkers: Optional[Sequence[Checker]] = None,
) -> LintReport:
    """Lint every Python file under *paths* and merge the per-file reports."""
    active = list(checkers) if checkers is not None else registered_checkers()
    findings: List[Finding] = []
    scanned = 0
    for path in iter_python_files(paths):
        scanned += 1
        text = path.read_text(encoding="utf-8")
        report = lint_source(text, path=str(path), select=select, checkers=active)
        findings.extend(report.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return LintReport(findings=findings, files_scanned=scanned)
