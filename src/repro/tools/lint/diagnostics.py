"""RPL6xx — diagnostics discipline: one observability channel, not three.

The library's diagnostic output flows through :mod:`repro.obs` (structured
trace events and the metrics registry) plus Python ``warnings`` for
user-actionable degradation.  Ad-hoc ``print()`` calls and ``logging``
handlers inside library code bypass all of that — they interleave with the
CLI's real output, are invisible to the flight recorder, and (for
``logging``) drag in global handler/level state the reproduction never
configures.  This checker bans both inside ``src/repro``:

* **RPL601** — ``print()`` in library code.  Exempt: the CLI entry points
  (``cli.py`` / ``__main__.py`` basenames), whose *job* is to print.
* **RPL602** — importing ``logging`` in library code.  Same exemptions.

The :mod:`repro.obs` package itself is also exempt: it is the sanctioned
sink the rest of the library is being pointed at (it still must not import
``logging`` — only the ``print`` waiver applies there, for the renderers
the CLI calls).  Suppress single deliberate uses with
``# repro-lint: disable=RPL601 — rationale``.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, Mapping

from .engine import Checker, Finding, SourceFile, register

#: Basenames whose whole purpose is terminal I/O.
_CLI_BASENAMES = frozenset({"cli.py", "__main__.py"})


def _is_cli_file(path: str) -> bool:
    return os.path.basename(path) in _CLI_BASENAMES


def _is_obs_file(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return "obs" in parts


@register
class DiagnosticsChecker(Checker):
    """Flag print()/logging in library code (use repro.obs instead)."""

    name = "diagnostics"
    codes: Mapping[str, str] = {
        "RPL601": "print() in library code bypasses the obs tracing/metrics spine",
        "RPL602": "logging import in library code: repro emits via repro.obs",
    }

    def check(self, src: SourceFile) -> Iterator[Finding]:
        cli_file = _is_cli_file(src.path)
        obs_file = _is_obs_file(src.path)
        for node in ast.walk(src.tree):
            if (
                not cli_file
                and not obs_file
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    src,
                    node,
                    "RPL601",
                    "library code must not print(): emit a trace event/metric "
                    "(repro.obs) or a warnings.warn for user-actionable problems",
                )
            if not cli_file and self._imports_logging(node):
                yield self.finding(
                    src,
                    node,
                    "RPL602",
                    "library code must not use the logging module: the repro.obs "
                    "tracer/metrics registry is the one diagnostics channel",
                )

    # ------------------------------------------------------------------
    def _imports_logging(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Import):
            return any(alias.name.split(".")[0] == "logging" for alias in node.names)
        if isinstance(node, ast.ImportFrom):
            return node.level == 0 and (node.module or "").split(".")[0] == "logging"
        return False
