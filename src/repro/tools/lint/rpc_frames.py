"""RPL3xx — RPC frame safety: auth before unpickle, allowlisted frame ops.

``pickle.loads`` on attacker-controlled bytes is remote code execution, so
the RPC layer's safety argument (docs/STATIC_ANALYSIS.md) is structural and
this checker proves it at the source level for every module that imports
``pickle``:

* ``# rpc-frame: decoder`` on a ``def`` marks the one place raw bytes may be
  unpickled; any other ``pickle.loads``/``load``/``Unpickler`` is RPL301.
* ``# rpc-frame: auth-gate`` marks the function that authenticates a peer on
  raw (never unpickled) bytes.  A connection handler that unpickles must
  call the gate first — unpickling at an earlier line, or discarding the
  gate's result, is RPL302; never calling it at all is RPL303.
* ``# rpc-frame: encoder allow=op1,op2,...`` marks the serialization
  choke-point and the frame ops it may emit; a call site passing a literal
  frame whose ``"op"`` is off-list (or missing) is RPL304.
* Raw ndarray frames never touch pickle, but aliasing wire bytes as an
  array (``np.frombuffer``, ``np.ndarray(buffer=...)``, or ``recv``-ing
  straight into an array's memory) trusts a peer-supplied dtype/shape
  header, so it must also live in the ``decoder`` function — anywhere else
  is RPL306.  No ``allow=`` entry is involved: the tag byte, not a frame
  ``op``, selects the array path.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple, Union

from .engine import (
    Checker,
    Finding,
    SourceFile,
    call_final_name,
    import_aliases,
    qualified_name,
    register,
)

_FRAME_RE = re.compile(r"#\s*rpc-frame:\s*(decoder|encoder|auth-gate)(?:\s+allow=([\w,\s-]+))?")

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Parameter names that mark a function as a peer-connection handler.
CONN_PARAMS = frozenset({"conn", "sock", "connection", "client", "peer"})

#: pickle entry points that deserialize (the dangerous direction).
UNPICKLERS = frozenset({"pickle.loads", "pickle.load", "pickle.Unpickler"})
#: pickle entry points that serialize.
PICKLERS = frozenset({"pickle.dumps", "pickle.dump", "pickle.Pickler"})


@register
class RpcFrameChecker(Checker):
    """Prove auth-before-unpickle and the frame-op allowlist statically."""

    name = "rpc-frames"
    codes: Mapping[str, str] = {
        "RPL301": "pickle deserialization outside the annotated frame decoder",
        "RPL302": "unpickling reachable before the auth gate passes",
        "RPL303": "connection handler unpickles without calling the auth gate",
        "RPL304": "frame op not in the encoder's allowlist",
        "RPL305": "pickle serialization outside the annotated frame encoder",
        "RPL306": "raw ndarray frame decode outside the annotated frame decoder",
    }

    def check(self, src: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(src.tree)
        if not any(value == "pickle" or value.startswith("pickle.") for value in aliases.values()):
            return  # module never touches pickle; nothing to prove

        decoders: Set[str] = set()
        encoders: Dict[str, Optional[Set[str]]] = {}
        auth_gates: Set[str] = set()
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            role = self._frame_annotation(src, node)
            if role is None:
                continue
            kind, allow = role
            if kind == "decoder":
                decoders.add(node.name)
            elif kind == "auth-gate":
                auth_gates.add(node.name)
            else:
                encoders[node.name] = allow

        annotated = decoders | auth_gates | set(encoders)
        parents = src.parents()

        # Every call with its stack of enclosing functions (innermost last);
        # a single pass avoids double-visiting calls inside nested defs.
        calls: List[Tuple[ast.Call, Tuple[_FunctionNode, ...]]] = []

        def collect(node: ast.AST, stack: Tuple[_FunctionNode, ...]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack = stack + (node,)
            elif isinstance(node, ast.Call):
                calls.append((node, stack))
            for child in ast.iter_child_nodes(node):
                collect(child, stack)

        collect(src.tree, ())

        per_function: Dict[Optional[_FunctionNode], Dict[str, List[ast.Call]]] = {}
        for call, stack in calls:
            qual = qualified_name(call.func, aliases)
            final = call_final_name(call.func)
            owner = stack[-1] if stack else None
            bucket = per_function.setdefault(
                owner, {"deserializes": [], "auth": []}
            )
            if qual in UNPICKLERS:
                bucket["deserializes"].append(call)
                if not any(f.name in decoders for f in stack):
                    yield self.finding(
                        src,
                        call,
                        "RPL301",
                        f"{qual}() outside the '# rpc-frame: decoder' function — "
                        "all deserialization must go through the frame decoder",
                    )
            elif qual in PICKLERS:
                if not any(f.name in encoders for f in stack):
                    yield self.finding(
                        src,
                        call,
                        "RPL305",
                        f"{qual}() outside the '# rpc-frame: encoder' function — "
                        "all serialization must go through the frame encoder",
                    )
            elif final in decoders:
                bucket["deserializes"].append(call)
            elif final in auth_gates:
                bucket["auth"].append(call)
            if final in encoders:
                yield from self._check_frame_literal(src, call, encoders[final])
            reason = self._raw_ndarray_decode(call, qual, final)
            if reason is not None and not any(f.name in decoders for f in stack):
                yield self.finding(
                    src,
                    call,
                    "RPL306",
                    f"{reason} outside the '# rpc-frame: decoder' function — "
                    "peer-supplied dtype/shape headers may only be trusted there",
                )

        for function, bucket in per_function.items():
            if function is None or function.name in annotated:
                continue
            deserializes = bucket["deserializes"]
            auth_calls = bucket["auth"]
            if not deserializes:
                continue
            if auth_calls:
                first_auth = min(call.lineno for call in auth_calls)
                for call in deserializes:
                    if call.lineno < first_auth:
                        yield self.finding(
                            src,
                            call,
                            "RPL302",
                            "frame is deserialized before the auth gate runs — "
                            "authenticate on raw bytes first",
                        )
                for call in auth_calls:
                    if isinstance(parents.get(call), ast.Expr):
                        yield self.finding(
                            src,
                            call,
                            "RPL302",
                            "auth gate result is discarded — the handler must stop "
                            "when authentication fails",
                        )
            elif self._handles_connection(function):
                yield self.finding(
                    src,
                    function,
                    "RPL303",
                    f"connection handler {function.name}() deserializes frames but "
                    "never calls the '# rpc-frame: auth-gate' function",
                )

    # ------------------------------------------------------------------
    def _frame_annotation(
        self, src: SourceFile, function: _FunctionNode
    ) -> Optional[Tuple[str, Optional[Set[str]]]]:
        body_start = function.body[0].lineno if function.body else function.lineno + 1
        for line in range(function.lineno, max(body_start, function.lineno + 1)):
            match = _FRAME_RE.search(src.comment(line))
            if match is not None:
                allow: Optional[Set[str]] = None
                if match.group(2):
                    allow = {op.strip() for op in match.group(2).split(",") if op.strip()}
                return match.group(1), allow
        return None

    def _raw_ndarray_decode(
        self, call: ast.Call, qual: Optional[str], final: Optional[str]
    ) -> Optional[str]:
        """Why *call* constructs an ndarray from raw wire bytes, else ``None``.

        Three shapes count as the zero-copy decode direction: aliasing a
        bytes object (``np.frombuffer``), aliasing an arbitrary buffer
        (``np.ndarray(buffer=...)``), and receiving socket bytes straight
        into an existing array's memory (a ``recv``-style call handed a
        ``memoryview(array).cast(...)``).
        """
        if qual == "numpy.frombuffer":
            return "np.frombuffer() aliases raw bytes as an ndarray"
        if qual == "numpy.ndarray" and any(kw.arg == "buffer" for kw in call.keywords):
            return "np.ndarray(buffer=...) aliases raw bytes as an ndarray"
        if final is not None and "recv" in final:
            arguments = list(call.args) + [kw.value for kw in call.keywords]
            if any(self._casts_memoryview(argument) for argument in arguments):
                return "socket bytes received straight into an ndarray's memory"
        return None

    @staticmethod
    def _casts_memoryview(node: ast.expr) -> bool:
        """True if *node* contains a ``memoryview(...).cast(...)`` expression."""
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "cast"
                and isinstance(sub.func.value, ast.Call)
                and call_final_name(sub.func.value.func) == "memoryview"
            ):
                return True
        return False

    def _handles_connection(self, function: _FunctionNode) -> bool:
        names = [arg.arg for arg in function.args.args + function.args.kwonlyargs]
        return any(name in CONN_PARAMS for name in names)

    def _check_frame_literal(
        self, src: SourceFile, call: ast.Call, allow: Optional[Set[str]]
    ) -> Iterator[Finding]:
        """Validate literal frame dicts passed to an encoder call."""
        candidates: List[ast.expr] = list(call.args) + [kw.value for kw in call.keywords]
        for candidate in candidates:
            if not isinstance(candidate, ast.Dict):
                continue
            op: Optional[str] = None
            has_op_key = False
            for key, value in zip(candidate.keys, candidate.values):
                if isinstance(key, ast.Constant) and key.value == "op":
                    has_op_key = True
                    if isinstance(value, ast.Constant) and isinstance(value.value, str):
                        op = value.value
            if not has_op_key:
                yield self.finding(
                    src,
                    candidate,
                    "RPL304",
                    "literal frame has no 'op' key — every frame must carry an "
                    "allowlisted op",
                )
            elif op is not None and allow is not None and op not in allow:
                allowed = ", ".join(sorted(allow))
                yield self.finding(
                    src,
                    candidate,
                    "RPL304",
                    f"frame op {op!r} is not in the encoder allowlist ({allowed})",
                )
