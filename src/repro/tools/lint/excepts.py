"""RPL5xx — exception policy: no bare or silently-swallowed broad handlers.

A ``except Exception: pass`` in the service tier turns a crashed worker into
a silent hang; this checker requires every broad handler to either *do*
something observable (record the error, fail the job, re-raise) or carry an
explicit ``# repro-lint: disable=RPL502`` waiver with a rationale.  The
triage of the library's intentional waivers is tabulated in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping, Sequence

from .engine import Checker, Finding, SourceFile, register


@register
class ExceptionPolicyChecker(Checker):
    """Flag bare ``except:`` and broad handlers that swallow silently."""

    name = "excepts"
    codes: Mapping[str, str] = {
        "RPL501": "bare except catches SystemExit/KeyboardInterrupt",
        "RPL502": "broad exception handler silently swallows the error",
    }

    BROAD = frozenset({"Exception", "BaseException"})

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    src,
                    node,
                    "RPL501",
                    "bare except also catches SystemExit/KeyboardInterrupt — "
                    "name the exception types (Exception at the broadest)",
                )
            elif self._is_broad(node.type) and self._is_silent(node.body):
                yield self.finding(
                    src,
                    node,
                    "RPL502",
                    "broad handler swallows the error with no logging, re-raise, "
                    "or state change — record it or narrow the except",
                )

    # ------------------------------------------------------------------
    def _is_broad(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Tuple):
            return any(self._is_broad(element) for element in expr.elts)
        if isinstance(expr, ast.Name):
            return expr.id in self.BROAD
        if isinstance(expr, ast.Attribute):
            return expr.attr in self.BROAD
        return False

    def _is_silent(self, body: Sequence[ast.stmt]) -> bool:
        """True when the handler body provably does nothing observable."""
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Return) and (
                stmt.value is None or isinstance(stmt.value, ast.Constant)
            ):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True
