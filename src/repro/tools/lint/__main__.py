"""``python -m repro.tools.lint`` — run the invariant checkers."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
