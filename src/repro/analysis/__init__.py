"""Analysis and reporting utilities behind the paper's figures."""

from repro.analysis.convergence import ConvergenceCurve, convergence_from_history, sample_efficiency
from repro.analysis.pca import PCAProjection, project_encodings
from repro.analysis.gantt import schedule_to_gantt, schedule_to_bandwidth_series, render_ascii_gantt
from repro.analysis.reporting import (
    ComparisonReport,
    normalized_throughputs,
    speedup_summary,
)

__all__ = [
    "ConvergenceCurve",
    "convergence_from_history",
    "sample_efficiency",
    "PCAProjection",
    "project_encodings",
    "schedule_to_gantt",
    "schedule_to_bandwidth_series",
    "render_ascii_gantt",
    "ComparisonReport",
    "normalized_throughputs",
    "speedup_summary",
]
