"""PCA projection of explored mappings (Fig. 10 of the paper).

Fig. 10 visualises where in the mapping space each optimizer spends its
samples by projecting the encoded mappings onto their first two principal
components.  This module implements the projection directly with NumPy's SVD
so no external ML dependency is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.exceptions import ExperimentError


@dataclass(frozen=True)
class PCAProjection:
    """A fitted 2-D PCA projection of encoded mappings."""

    mean: np.ndarray
    components: np.ndarray  # shape (2, dim)
    explained_variance_ratio: np.ndarray

    def transform(self, encodings: np.ndarray) -> np.ndarray:
        """Project ``(n, dim)`` encodings onto the two principal components."""
        data = np.atleast_2d(np.asarray(encodings, dtype=float))
        if data.shape[1] != self.mean.shape[0]:
            raise ExperimentError(
                f"encodings have dimension {data.shape[1]}, expected {self.mean.shape[0]}"
            )
        return (data - self.mean) @ self.components.T


def fit_pca(encodings: np.ndarray, num_components: int = 2) -> PCAProjection:
    """Fit a PCA projection on a set of encoded mappings."""
    data = np.atleast_2d(np.asarray(encodings, dtype=float))
    if data.shape[0] < 2:
        raise ExperimentError("PCA needs at least two encodings to fit")
    mean = data.mean(axis=0)
    centered = data - mean
    _, singular_values, v_transpose = np.linalg.svd(centered, full_matrices=False)
    variance = singular_values**2
    total_variance = variance.sum() if variance.sum() > 0 else 1.0
    components = v_transpose[:num_components]
    return PCAProjection(
        mean=mean,
        components=components,
        explained_variance_ratio=variance[:num_components] / total_variance,
    )


def project_encodings(
    encodings_by_method: Dict[str, np.ndarray],
    num_components: int = 2,
) -> Dict[str, np.ndarray]:
    """Fit a shared PCA over all methods' samples and project each method.

    Returns a mapping ``method -> (n_samples, 2)`` array of projected points.
    The shared fit mirrors Fig. 10, where all methods are plotted in the same
    projected space so their coverage can be compared.
    """
    if not encodings_by_method:
        return {}
    stacked = np.vstack([np.atleast_2d(e) for e in encodings_by_method.values()])
    projection = fit_pca(stacked, num_components=num_components)
    return {label: projection.transform(e) for label, e in encodings_by_method.items()}
