"""Convergence-curve utilities (Fig. 11 and Fig. 16 of the paper).

Every search records the best-so-far fitness after each evaluated sample;
this module turns those histories into the down-sampled series the figures
plot and into simple sample-efficiency summaries (samples needed to reach a
fraction of the final value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import ExperimentError


@dataclass(frozen=True)
class ConvergenceCurve:
    """Best-so-far objective value as a function of samples used."""

    label: str
    samples: np.ndarray
    best_so_far: np.ndarray

    def __post_init__(self) -> None:
        if self.samples.shape != self.best_so_far.shape:
            raise ExperimentError("samples and best_so_far must have the same shape")

    @property
    def final_value(self) -> float:
        """Best value at the end of the search."""
        return float(self.best_so_far[-1]) if self.best_so_far.size else float("nan")

    def value_at(self, sample: int) -> float:
        """Best value after *sample* evaluations (clamped to the recorded range)."""
        if self.best_so_far.size == 0:
            return float("nan")
        index = int(np.searchsorted(self.samples, sample, side="right")) - 1
        index = int(np.clip(index, 0, len(self.best_so_far) - 1))
        return float(self.best_so_far[index])

    def samples_to_reach(self, fraction: float) -> Optional[int]:
        """Samples needed to reach *fraction* of the final value, or ``None``."""
        if not (0.0 < fraction <= 1.0):
            raise ExperimentError(f"fraction must be in (0, 1], got {fraction}")
        if self.best_so_far.size == 0:
            return None
        target = fraction * self.final_value
        reached = np.flatnonzero(self.best_so_far >= target)
        if reached.size == 0:
            return None
        return int(self.samples[reached[0]])


def convergence_from_history(
    label: str,
    history: Sequence[float],
    max_points: int = 200,
) -> ConvergenceCurve:
    """Build a down-sampled convergence curve from a per-sample history."""
    history_array = np.asarray(list(history), dtype=float)
    if history_array.size == 0:
        return ConvergenceCurve(label=label, samples=np.array([]), best_so_far=np.array([]))
    total = history_array.size
    if total <= max_points:
        indices = np.arange(total)
    else:
        indices = np.unique(np.linspace(0, total - 1, max_points).astype(int))
    return ConvergenceCurve(
        label=label,
        samples=indices + 1,
        best_so_far=history_array[indices],
    )


def sample_efficiency(curves: Dict[str, ConvergenceCurve], fraction: float = 0.95) -> Dict[str, Optional[int]]:
    """Samples each method needs to reach *fraction* of its own final value."""
    return {label: curve.samples_to_reach(fraction) for label, curve in curves.items()}


def align_curves(curves: Sequence[ConvergenceCurve], num_points: int = 100) -> Dict[str, np.ndarray]:
    """Resample several curves onto a common sample grid for tabular output."""
    if not curves:
        return {}
    max_samples = max(int(curve.samples[-1]) for curve in curves if curve.samples.size)
    grid = np.unique(np.linspace(1, max_samples, num_points).astype(int))
    aligned: Dict[str, np.ndarray] = {"samples": grid}
    for curve in curves:
        aligned[curve.label] = np.array([curve.value_at(int(s)) for s in grid])
    return aligned
