"""Schedule visualisation data (Fig. 4(b) and Fig. 15 of the paper).

The paper visualises a found mapping as (a) a per-core Gantt chart of job
execution and (b) the per-core bandwidth allocation over time.  This module
extracts both as plain data structures and can render a coarse ASCII Gantt
chart for terminal inspection (used by the CLI and examples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.schedule import Schedule
from repro.exceptions import ExperimentError
from repro.workloads.groups import JobGroup


@dataclass(frozen=True)
class GanttEntry:
    """One bar of the Gantt chart: a job running on a core for a time window."""

    core: int
    job_index: int
    start_cycle: float
    end_cycle: float
    label: str


def schedule_to_gantt(schedule: Schedule, group: Optional[JobGroup] = None) -> List[GanttEntry]:
    """Flatten a schedule into Gantt entries, optionally labelled with job metadata."""
    entries: List[GanttEntry] = []
    for job in schedule.jobs:
        if group is not None and job.job_index < len(group):
            source = group[job.job_index]
            label = f"{source.task_type or source.model_name or 'job'}:{job.job_index}"
        else:
            label = f"job:{job.job_index}"
        entries.append(
            GanttEntry(
                core=job.sub_accelerator_index,
                job_index=job.job_index,
                start_cycle=job.start_cycle,
                end_cycle=job.end_cycle,
                label=label,
            )
        )
    entries.sort(key=lambda e: (e.core, e.start_cycle))
    return entries


def schedule_to_bandwidth_series(schedule: Schedule) -> Dict[int, List[Tuple[float, float]]]:
    """Per-core bandwidth allocation as (time, GB/s) step series (Fig. 15(b)(d))."""
    series: Dict[int, List[Tuple[float, float]]] = {
        core: [] for core in range(schedule.num_sub_accelerators)
    }
    for segment in schedule.segments:
        for core, allocation in enumerate(segment.allocation_gbps):
            series[core].append((segment.start_cycle, allocation))
    # Close each series at the makespan so consumers can draw the final step.
    makespan = schedule.makespan_cycles
    for core in series:
        if series[core]:
            series[core].append((makespan, series[core][-1][1]))
    return series


def render_ascii_gantt(schedule: Schedule, group: Optional[JobGroup] = None, width: int = 80) -> str:
    """Render the schedule as a coarse fixed-width ASCII Gantt chart.

    Each core is one row; characters mark which task type (V/L/R for vision,
    language, recommendation; ``#`` otherwise) occupies that time slice.
    """
    if width <= 10:
        raise ExperimentError(f"width must be larger than 10 characters, got {width}")
    makespan = schedule.makespan_cycles
    if makespan <= 0:
        return "(empty schedule)"
    entries = schedule_to_gantt(schedule, group)
    rows: List[str] = []
    for core in range(schedule.num_sub_accelerators):
        row = ["."] * width
        for entry in entries:
            if entry.core != core:
                continue
            start = int(entry.start_cycle / makespan * (width - 1))
            end = max(start + 1, int(entry.end_cycle / makespan * (width - 1)))
            symbol = "#"
            if entry.label.startswith("vision"):
                symbol = "V"
            elif entry.label.startswith("language"):
                symbol = "L"
            elif entry.label.startswith("recommendation"):
                symbol = "R"
            for position in range(start, min(end, width)):
                row[position] = symbol
        rows.append(f"core{core:<3d} |" + "".join(row) + "|")
    header = f"makespan: {makespan:.3e} cycles ({schedule.makespan_seconds * 1e3:.2f} ms)"
    return "\n".join([header, *rows])
