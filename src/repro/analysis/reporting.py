"""Comparison reporting: normalised throughputs and geomean speedups.

The paper reports every main figure as throughput normalised by MAGMA's and
summarises the headline results as geometric-mean speedups of MAGMA over the
other methods.  This module computes both from a dictionary of search
results so figures, examples, the CLI, and EXPERIMENTS.md all derive their
numbers the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.framework import SearchResult
from repro.exceptions import ExperimentError
from repro.utils.tables import format_table, geometric_mean, unique_key


def normalized_throughputs(
    results: Mapping[str, SearchResult],
    reference: str = "MAGMA",
) -> Dict[str, float]:
    """Throughput of each method divided by the reference method's throughput."""
    if reference not in results:
        raise ExperimentError(f"reference method {reference!r} missing from results")
    reference_value = results[reference].throughput_gflops
    if reference_value <= 0:
        raise ExperimentError("reference throughput is non-positive; cannot normalise")
    return {name: result.throughput_gflops / reference_value for name, result in results.items()}


def normalized_values_with_reference(
    values: Mapping[str, float],
    preferred: str = "MAGMA",
) -> tuple[Dict[str, float], str]:
    """Like :func:`normalized_with_reference`, for plain per-method numbers.

    Seed-replicate post-processing normalises *mean* throughputs across
    seeds rather than single :class:`SearchResult` objects; same fallback
    semantics (the best method when *preferred* is absent).
    """
    if not values:
        raise ExperimentError("cannot normalise an empty values mapping")
    reference = preferred if preferred in values else max(values, key=lambda name: values[name])
    reference_value = float(values[reference])
    if reference_value <= 0:
        raise ExperimentError("reference throughput is non-positive; cannot normalise")
    return {name: float(value) / reference_value for name, value in values.items()}, reference


def normalized_with_reference(
    results: Mapping[str, SearchResult],
    preferred: str = "MAGMA",
) -> tuple[Dict[str, float], str]:
    """Normalised throughputs plus the reference method actually used.

    Falls back to the best-throughput method when *preferred* is absent from
    *results* (e.g. a figure re-run with ``methods=`` that excludes MAGMA),
    instead of raising.  Returns ``(normalized, reference_used)`` so callers
    can record which method the panel was normalised against.
    """
    if not results:
        raise ExperimentError("cannot normalise an empty results mapping")
    if preferred in results:
        reference = preferred
    else:
        reference = max(results, key=lambda name: results[name].throughput_gflops)
    return normalized_throughputs(results, reference), reference


def speedup_summary(
    per_task_results: Mapping[str, Mapping[str, SearchResult]],
    reference: str = "MAGMA",
) -> Dict[str, float]:
    """Geometric-mean speedup of the reference method over each other method.

    ``per_task_results`` maps a task label (e.g. ``"vision"``) to that task's
    per-method results.  The return value maps every non-reference method to
    ``geomean_over_tasks(reference_throughput / method_throughput)`` — the
    aggregation behind statements like "MAGMA is 1.4x better than Herald".
    """
    speedups: Dict[str, List[float]] = {}
    for task, results in per_task_results.items():
        if reference not in results:
            raise ExperimentError(f"reference {reference!r} missing for task {task!r}")
        reference_value = results[reference].throughput_gflops
        for method, result in results.items():
            if method == reference:
                continue
            value = result.throughput_gflops
            ratio = reference_value / value if value > 0 else float("inf")
            speedups.setdefault(method, []).append(ratio)
    summary: Dict[str, float] = {}
    for method, ratios in speedups.items():
        finite = [r for r in ratios if r != float("inf")]
        summary[method] = geometric_mean(finite) if finite else float("inf")
    return summary


@dataclass
class ComparisonReport:
    """Tabular report of one multi-method comparison (one figure panel)."""

    title: str
    results: Dict[str, SearchResult] = field(default_factory=dict)
    reference: str = "MAGMA"

    def add(self, result: SearchResult, name: Optional[str] = None) -> None:
        """Add one method's search result.

        ``name`` overrides the row label (callers holding an
        already-deduplicated results dict pass its key); otherwise the
        optimizer's display name is used, suffixed if it would collide with a
        row already in the report.
        """
        label = name if name is not None else result.optimizer_name
        self.results[unique_key(label, self.results)] = result

    @property
    def best_method(self) -> Optional[str]:
        """Method with the highest throughput, or ``None`` if empty."""
        if not self.results:
            return None
        return max(self.results, key=lambda name: self.results[name].throughput_gflops)

    def normalized(self) -> Dict[str, float]:
        """Normalised throughputs relative to the reference method."""
        return normalized_throughputs(self.results, self.reference)

    def to_rows(self) -> List[List[object]]:
        """Rows of (method, GFLOP/s, normalised, samples) for tabular output."""
        normalised = self.normalized() if self.reference in self.results else {}
        rows: List[List[object]] = []
        for name, result in self.results.items():
            rows.append(
                [
                    name,
                    result.throughput_gflops,
                    normalised.get(name, float("nan")),
                    result.samples_used,
                ]
            )
        rows.sort(key=lambda row: row[1], reverse=True)
        return rows

    def to_text(self) -> str:
        """Render the report as an ASCII table."""
        table = format_table(
            headers=["method", "throughput (GFLOP/s)", f"norm. vs {self.reference}", "samples"],
            rows=self.to_rows(),
        )
        return f"{self.title}\n{table}"
