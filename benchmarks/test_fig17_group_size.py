"""Fig. 17 — effect of the dependency-free group size (Mix, S2, BW=16).

Paper result: normalised to the group-size-1000 run, throughput stays within
roughly +-25% across group sizes from 10 to 1000, but a very small group
(size 4) leaves performance on the table (0.68).

The benchmark sweeps the group size with MAGMA and checks that (i) the
mid-range group sizes are within a reasonable band of the largest one and
(ii) the smallest group size is the weakest or close to it.
"""

from repro.experiments.runner import run_fig17_group_size


def test_fig17_group_size_sweep(benchmark, scale, report_lines):
    if scale.name == "paper":
        group_sizes = (4, 10, 20, 50, 100, 200, 500, 1000)
    else:
        group_sizes = (4, 8, 16, 32)
    result = benchmark.pedantic(
        run_fig17_group_size,
        kwargs={"scale": scale, "seed": 0, "group_sizes": group_sizes},
        rounds=1,
        iterations=1,
    )
    normalized = result["normalized"]
    throughput = result["throughput"]

    assert set(normalized) == set(group_sizes)
    assert normalized[max(group_sizes)] == 1.0
    assert all(value > 0 for value in throughput.values())

    # Mid-to-large group sizes stay within a band of the reference; tiny
    # groups can fall below it (the paper's 0.68 at size 4).
    for size in group_sizes[1:]:
        assert normalized[size] > 0.4, (size, normalized)
    smallest = group_sizes[0]
    assert normalized[smallest] <= max(normalized.values()) + 1e-9

    report_lines.append(
        "fig17 normalised throughput per group size: "
        + ", ".join(f"{size}={normalized[size]:.2f}" for size in group_sizes)
    )
