"""Perf smoke: the batch evaluation backend vs the scalar reference oracle.

Evaluates the same 100-individual population through both backends, records
the wall times (and the achieved speedup) to ``BENCH_batch_eval.json``, and
asserts the vectorized batch path is at least 10x faster.  This is a
regression guard for the hot path of every population-based optimizer, not a
statistically rigorous benchmark.  The floor was raised from 3x after the
kernel raw-speed pass (docs/PERFORMANCE.md): the dev-box measurement is
~29x, so 10x still leaves ~3x headroom for slower shared runners while a
regression to the pre-optimization kernel would trip it.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.accelerator import build_setting
from repro.core.evaluator import MappingEvaluator
from repro.workloads import TaskType, build_task_workload

#: Minimum accepted batch-vs-scalar speedup on a 100-individual population.
MIN_SPEEDUP = 10.0

POPULATION_SIZE = 100
GROUP_SIZE = 20
SETTING = "S2"
BANDWIDTH_GBPS = 16.0


def _best_of(callable_, repeats: int = 3) -> float:
    """Best-of-N wall time, the usual cheap noise guard for smoke perf tests."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_backend_at_least_3x_faster(report_lines):
    platform = build_setting(SETTING, BANDWIDTH_GBPS)
    group = build_task_workload(
        TaskType.MIX,
        group_size=GROUP_SIZE,
        seed=0,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    scalar = MappingEvaluator(group, platform, backend="scalar")
    batch = MappingEvaluator(group, platform, backend="batch")
    population = scalar.codec.random_population(POPULATION_SIZE, rng=0)

    # Warm up both paths (imports, allocator state) outside the timed region,
    # and verify equivalence before timing anything.
    warm_scalar = scalar.evaluate_population(population, count_samples=False)
    warm_batch = batch.evaluate_population(population, count_samples=False)
    assert np.array_equal(warm_scalar, warm_batch)

    scalar_seconds = _best_of(
        lambda: scalar.evaluate_population(population, count_samples=False)
    )
    # Fresh evaluator per timing run so the memoization cache cannot hide the
    # simulation cost being measured.
    def run_batch():
        MappingEvaluator(
            group, platform, analysis_table=batch.table, backend="batch"
        ).evaluate_population(population, count_samples=False)

    batch_seconds = _best_of(run_batch)
    speedup = scalar_seconds / batch_seconds

    record = {
        "setting": SETTING,
        "bandwidth_gbps": BANDWIDTH_GBPS,
        "group_size": GROUP_SIZE,
        "population_size": POPULATION_SIZE,
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "speedup": speedup,
        "min_required_speedup": MIN_SPEEDUP,
    }
    with open("BENCH_batch_eval.json", "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    report_lines.append(
        f"batch-eval speedup: {speedup:.1f}x "
        f"(scalar {scalar_seconds*1e3:.1f} ms vs batch {batch_seconds*1e3:.1f} ms, "
        f"{POPULATION_SIZE} individuals)"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batch backend only {speedup:.2f}x faster than scalar "
        f"({scalar_seconds:.4f}s vs {batch_seconds:.4f}s); expected >= {MIN_SPEEDUP}x"
    )
