"""Perf smoke: raw ndarray frame encode/decode throughput (GB/s).

The rpc transport ships encoding rows and fitness vectors as tagged raw
ndarray frames — a dtype/shape header followed by the array's buffer bytes,
received straight into a preallocated array (docs/PERFORMANCE.md documents
the wire format).  This bench pumps a population-sized float64 matrix
through a ``socketpair`` (sender thread encodes, main thread decodes) and
floors the end-to-end codec throughput in GB/s.  Like the kernel step-rate
bench it is deliberately core-count-independent: the codec is
memory-bandwidth bound, so it measures — and gates — even on the
single-core runners where the rpc *speedup* bench must skip-with-reason.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np

from repro.core.rpc import _recv_message, _send_array

#: Minimum accepted encode+decode throughput.  Dev-box measurement is well
#: over 1 GB/s (one memcpy into the socket, one ``recv_into`` out); the
#: floor sits far below so shared runners do not flake, while a return to
#: pickle-round-trip rates (~0.1 GB/s with frame copies) trips the gate.
MIN_GB_PER_SECOND = 0.25

ROWS = 512
COLS = 8192  # 512 x 8192 float64 = 32 MiB per frame
WARMUP = 3
REPEATS = 5
RESULT_FILE = "BENCH_frame_codec.json"


def test_ndarray_frame_codec_throughput(report_lines):
    array = np.arange(ROWS * COLS, dtype=np.float64).reshape(ROWS, COLS)
    left, right = socket.socketpair()
    errors: list = []

    def pump():
        try:
            for _ in range(WARMUP + REPEATS):
                _send_array(left, array)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(repr(error))

    sender = threading.Thread(target=pump)
    try:
        sender.start()
        # Warm-up round trips (first passes fault in fresh 32 MiB pages and
        # settle the allocator), checked for exactness before timing.
        for _ in range(WARMUP):
            assert np.array_equal(_recv_message(right), array)
        # Best-of-N per frame, the usual cheap noise guard: a steady-state
        # decode is one recv_into stream into a fresh array, and the best
        # frame is the machine's actual codec rate.
        seconds = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            decoded = _recv_message(right)
            seconds = min(seconds, time.perf_counter() - start)
        assert np.array_equal(decoded, array)
    finally:
        sender.join()
        left.close()
        right.close()
    assert not errors, f"sender thread failed: {errors}"

    gb_per_second = array.nbytes / 1e9 / seconds

    record = {
        "rows": ROWS,
        "cols": COLS,
        "frame_bytes": array.nbytes,
        "repeats": REPEATS,
        "best_frame_seconds": seconds,
        "ndarray_frame_gb_per_second": gb_per_second,
        "min_ndarray_frame_gb_per_second": MIN_GB_PER_SECOND,
    }
    with open(RESULT_FILE, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    report_lines.append(
        f"ndarray frame codec: {gb_per_second:.2f} GB/s "
        f"(best of {REPEATS} x {array.nbytes / 2**20:.0f} MiB frames, "
        f"{seconds * 1e3:.1f} ms/frame)"
    )

    assert gb_per_second >= MIN_GB_PER_SECOND, (
        f"frame codec only {gb_per_second:.3f} GB/s; "
        f"expected >= {MIN_GB_PER_SECOND} GB/s"
    )
