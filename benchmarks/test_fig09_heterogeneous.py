"""Fig. 9 — all methods on the heterogeneous accelerators S2 (BW=16) and S4 (BW=256).

Paper result: heterogeneity exposes the weaknesses of the baselines.
AI-MT-like (designed for homogeneous platforms) collapses — 39.5x behind
MAGMA on the small Mix panel and 52x on the large one — while Herald-like
stays competitive on Vision but loses ground on Mix (2.3x / 1.7x).  The RL
methods are the closest baselines (1.01x / 1.3x).  Absolute MAGMA values:
254 / 271 / 254 / 383 GFLOP/s across the four panels.

The benchmark regenerates the four panels and checks the qualitative shape:
MAGMA on top (within tolerance), AI-MT-like far behind on every
heterogeneous panel.
"""

from repro.experiments.runner import run_fig9_heterogeneous


def test_fig9_heterogeneous_accelerators(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_fig9_heterogeneous, kwargs={"scale": scale, "seed": 0}, rounds=1, iterations=1
    )
    normalized = result["normalized"]
    assert set(normalized) == {"vision_small", "mix_small", "vision_large", "mix_large"}

    for panel_name, panel in normalized.items():
        assert panel["MAGMA"] == 1.0
        # AI-MT-like assumes identical cores, so it never wins on a
        # heterogeneous platform; the collapse is most dramatic on the Mix
        # panels (checked below), milder on Vision where the LB core is only
        # moderately slower.
        assert panel["AI-MT-like"] < 0.95, (panel_name, panel)
        # No baseline beats MAGMA by more than a small margin.
        assert max(panel.values()) < 1.25, (panel_name, panel)

    # The gap to AI-MT-like is the largest on the Mix panels, as in the paper.
    assert normalized["mix_small"]["AI-MT-like"] < 0.2
    assert normalized["mix_large"]["AI-MT-like"] < 0.5

    for panel_name, panel in normalized.items():
        worst = min(panel, key=panel.get)
        report_lines.append(
            f"fig9  {panel_name:<13s} MAGMA=1.00, Herald-like={panel.get('Herald-like', float('nan')):.2f}, "
            f"AI-MT-like={panel.get('AI-MT-like', float('nan')):.3f}, worst={worst}"
        )
