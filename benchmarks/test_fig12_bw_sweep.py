"""Fig. 12 — bandwidth sweep on the heterogeneous accelerators (Mix task).

Paper result: normalised to MAGMA, Herald-like and the RL methods fall
further behind as the system bandwidth shrinks — e.g. on S2, MAGMA's
advantage grows from ~1.2x at 16 GB/s to ~1.6x at 1 GB/s; the same trend
appears on S4 between 256 GB/s and 1 GB/s.

The benchmark sweeps the bandwidth on S2 and S4, checks that every method's
absolute throughput decreases monotonically as bandwidth shrinks, that MAGMA
stays on top (within tolerance), and that Herald-like's normalised value at
the lowest bandwidth does not exceed its value at the highest bandwidth by
more than a small margin (i.e. the gap does not close at low bandwidth).
"""

from repro.experiments.runner import run_fig12_bw_sweep


def test_fig12_bandwidth_sweep(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_fig12_bw_sweep,
        kwargs={
            "scale": scale,
            "seed": 0,
            "methods": ("herald-like", "a2c", "ppo2", "magma"),
            "small_bandwidths": (1.0, 4.0, 16.0),
            "large_bandwidths": (1.0, 16.0, 256.0),
        },
        rounds=1,
        iterations=1,
    )
    absolute = result["absolute"]
    normalized = result["normalized"]

    for sweep_name, per_bw in absolute.items():
        bandwidths = sorted(per_bw)
        for method in ("Herald-like", "MAGMA"):
            values = [per_bw[bw][method] for bw in bandwidths]
            # More bandwidth never reduces throughput.
            assert all(b >= a * 0.99 for a, b in zip(values, values[1:])), (sweep_name, method, values)

    for sweep_name, per_bw in normalized.items():
        for bw, panel in per_bw.items():
            assert panel["MAGMA"] == 1.0
            assert max(panel.values()) < 1.25, (sweep_name, bw, panel)
        lowest, highest = min(per_bw), max(per_bw)
        # Herald's relative standing does not improve as bandwidth shrinks
        # (in the paper it deteriorates from ~0.8 to ~0.6).
        assert per_bw[lowest]["Herald-like"] <= per_bw[highest]["Herald-like"] * 1.15

        report_lines.append(
            f"fig12 {sweep_name:<9s} Herald-like normalised: "
            + ", ".join(f"BW{bw:g}={per_bw[bw]['Herald-like']:.2f}" for bw in sorted(per_bw))
        )
