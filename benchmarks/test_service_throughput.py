"""Perf smoke: mapping-service cache-hit latency and request throughput.

The point of the service layer is that repeated queries stop paying for the
GA: the first request runs a real search, every identical request afterwards
is answered from the persistent solution store via an in-memory index.  This
benchmark records, to ``BENCH_service.json``:

* ``search_seconds`` — wall time of the initial (cache-miss) search;
* ``cache_hit_latency_ms`` (median + p95) — wall time of an identical
  repeat request, answered without invoking any optimizer;
* ``requests_per_second`` — sustained submit throughput over a burst of
  cached requests;

and asserts the structural guarantees: hits are bit-identical to the stored
summary, run no further searches, and arrive orders of magnitude faster
than the search itself.
"""

from __future__ import annotations

import json
import time

from repro.service import MappingRequest, MappingService

HIT_SAMPLES = 200
BURST = 1000


def test_cache_hits_are_fast_and_bit_identical(scale, tmp_path, report_lines):
    service = MappingService(
        store=str(tmp_path / "solutions.jsonl"),
        warm_store=str(tmp_path / "warm.jsonl"),
        scale=scale,
        workers=2,
    )
    try:
        request = MappingRequest(task="vision", setting="S2", seed=0)

        start = time.perf_counter()
        first = service.submit(request)
        reference = service.result(first.job_id, timeout=600)
        search_seconds = time.perf_counter() - start
        assert service.stats["searches_run"] == 1

        # Repeated identical requests: instant store hits, bit-identical.
        latencies = []
        for _ in range(HIT_SAMPLES):
            start = time.perf_counter()
            job = service.submit(request)
            latencies.append(time.perf_counter() - start)
            assert job.cached and job.state == "done"
            assert job.result.to_dict() == reference.to_dict()
        assert service.stats["searches_run"] == 1  # no optimizer ran again
        latencies.sort()
        median_ms = latencies[len(latencies) // 2] * 1e3
        p95_ms = latencies[int(len(latencies) * 0.95)] * 1e3

        # Sustained submit throughput over a burst of cached requests.
        start = time.perf_counter()
        for _ in range(BURST):
            service.submit(request)
        burst_seconds = time.perf_counter() - start
        requests_per_second = BURST / burst_seconds

        # "Milliseconds instead of a GA run": the median hit must undercut
        # the search by >=100x (in practice it is sub-millisecond), and the
        # service must sustain a healthy request rate single-threaded.
        assert median_ms / 1e3 < search_seconds / 100
        assert requests_per_second > 100
    finally:
        service.close()

    payload = {
        "scale": scale.name,
        "search_seconds": search_seconds,
        "cache_hit_latency_ms_median": median_ms,
        "cache_hit_latency_ms_p95": p95_ms,
        "hit_samples": HIT_SAMPLES,
        "burst_requests": BURST,
        "requests_per_second": requests_per_second,
        "speedup_vs_search": search_seconds / (median_ms / 1e3),
    }
    with open("BENCH_service.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    report_lines.append(
        f"[service] search {search_seconds:.2f}s -> cache hit {median_ms:.3f}ms median "
        f"(p95 {p95_ms:.3f}ms, {search_seconds / (median_ms / 1e3):.0f}x), "
        f"{requests_per_second:.0f} req/s sustained"
    )
