"""Fig. 14 — fixed versus flexible (configurable-shape) PE arrays.

Paper result: per-job no-stall latency improves with flexible arrays (the
shape is re-optimised per layer) at the price of a higher bandwidth
requirement, and end-to-end the flexible accelerator outperforms the fixed
one in every (accelerator, task, bandwidth) combination — by up to ~1/0.34x
in the most bandwidth-rich case.

The benchmark regenerates the per-job analysis and the MAGMA throughput for
fixed and flexible variants of the Small (S1) and Large (S3) accelerators and
checks that flexible is never slower per job and never loses end to end by
more than a small tolerance.
"""

from repro.experiments.runner import run_fig14_flexible


def test_fig14_fixed_vs_flexible(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_fig14_flexible, kwargs={"scale": scale, "seed": 0}, rounds=1, iterations=1
    )
    job_analysis = result["job_analysis"]
    throughput = result["throughput"]

    for panel, analysis in job_analysis.items():
        # Flexible arrays never increase the average no-stall latency.
        assert analysis["flexible_avg_latency"] <= analysis["fixed_avg_latency"] * 1.001, panel

    wins = 0
    comparisons = 0
    for panel, per_bw in throughput.items():
        for bw_label, row in per_bw.items():
            comparisons += 1
            ratio = row["fixed"] / row["flexible"] if row["flexible"] > 0 else float("inf")
            # Fixed never beats flexible by more than 10% at reduced scale.
            assert ratio < 1.10, (panel, bw_label, row)
            if row["flexible"] >= row["fixed"]:
                wins += 1
            report_lines.append(
                f"fig14 {panel:<13s} {bw_label:<8s} fixed={row['fixed']:.1f} "
                f"flexible={row['flexible']:.1f} GFLOP/s"
            )
    # Flexible wins (or ties) in the clear majority of scenarios, as in the paper.
    assert wins >= comparisons // 2
