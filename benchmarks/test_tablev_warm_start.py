"""Table V — warm-start transfer between groups of the same task type.

Paper result (Mix, S4, BW=1): starting a new group's search from the solution
of a previously optimized group ("Trf-0-ep") is 7.4x-152x better than a random
start ("Raw"); one epoch of further optimization ("Trf-1-ep") recovers ~93% of
the fully optimized value, thirty epochs ~99%, and the full run defines 1.00.

The benchmark reproduces the table structure at reduced scale and checks the
orderings: Raw <= Trf-0-ep plausibility band, Trf-1-ep >= Raw, and the
transfer curve is (weakly) monotone towards the full-optimization value.
"""

from repro.experiments.runner import run_table5_warm_start


def test_tablev_warm_start_transfer(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_table5_warm_start,
        kwargs={"scale": scale, "seed": 0, "num_instances": 2},
        rounds=1,
        iterations=1,
    )
    average = result["average"]

    # The full optimization defines the reference value.
    assert average["trf_full"] == 1.0
    # Warm-started searches recover the bulk of the final value quickly.
    assert average["trf_30_ep"] >= 0.6
    assert average["trf_1_ep"] >= average["raw"] * 0.8
    # The warm-started initial point is a meaningful fraction of the final
    # value (the paper reports 0.32-0.78 on individual instances).
    assert average["trf_0_ep"] > 0.05

    report_lines.append(
        "tableV averages: "
        + ", ".join(f"{key}={average[key]:.2f}" for key in ("raw", "trf_0_ep", "trf_1_ep", "trf_30_ep", "trf_full"))
    )
    for instance, row in result["instances"].items():
        report_lines.append(
            f"tableV {instance}: "
            + ", ".join(f"{key}={row[key]:.2f}" for key in ("raw", "trf_0_ep", "trf_1_ep", "trf_30_ep"))
        )
