"""Profile the batched bandwidth event-sweep kernel (docs/PERFORMANCE.md).

Runs the hot loop of :class:`~repro.core.bw_allocator.BatchBandwidthAllocator`
under ``cProfile`` plus a wall-clock sweep over population sizes and settings,
printing a per-setting measurement table and (optionally) dumping the raw
profile stats for the CI artifact::

    PYTHONPATH=src python benchmarks/profile_kernel.py --out kernel_profile.txt

This is the measurement half of the ROADMAP item-3 raw-speed pass: measure
the kernel first, then apply targeted fixes, then measure again — the
before/after table lives in docs/PERFORMANCE.md and the step-rate floor is
gated by ``benchmarks/test_kernel_sweep.py`` -> ``BENCH_kernel_sweep.json``.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import time
from typing import List, Tuple

import numpy as np

from repro.accelerator import build_setting
from repro.core.bw_allocator import BatchBandwidthAllocator
from repro.core.evaluator import MappingEvaluator
from repro.workloads import TaskType, build_task_workload

#: (setting, bandwidth GB/s, group size) grid of kernel measurement points.
SWEEP_POINTS: List[Tuple[str, float, int]] = [
    ("S2", 16.0, 20),
    ("S6", 256.0, 64),
]

POPULATION_SIZES = (32, 128, 512)


def build_problem(setting: str, bandwidth: float, group_size: int):
    """One (platform, codec, allocator, table, repaired population builder)."""
    platform = build_setting(setting, bandwidth)
    group = build_task_workload(
        TaskType.MIX,
        group_size=group_size,
        seed=0,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    evaluator = MappingEvaluator(group, platform, backend="batch")
    return platform, evaluator


def measure_point(setting: str, bandwidth: float, group_size: int, pop: int,
                  repeats: int = 5) -> dict:
    """Best-of-N kernel wall time and derived rates for one sweep point."""
    platform, evaluator = build_problem(setting, bandwidth, group_size)
    allocator = BatchBandwidthAllocator(
        system_bandwidth_gbps=platform.system_bandwidth_gbps,
        frequency_hz=platform.sub_accelerators[0].frequency_hz,
    )
    rows = evaluator.codec.repair_batch(evaluator.codec.random_population(pop, rng=0))
    batch = evaluator.codec.decode_batch(rows)
    allocator.makespan_cycles(batch, evaluator.table)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        allocator.makespan_cycles(batch, evaluator.table)
        best = min(best, time.perf_counter() - start)
    # Every individual sees ~group_size completion events, so row-events is
    # the natural unit of kernel work (each event is one vectorized step).
    row_events = pop * group_size
    return {
        "setting": setting,
        "bandwidth_gbps": bandwidth,
        "group_size": group_size,
        "population": pop,
        "cores": platform.num_sub_accelerators,
        "seconds": best,
        "row_events_per_second": row_events / best,
        "rows_per_second": pop / best,
    }


def run_sweep() -> List[dict]:
    results = []
    for setting, bandwidth, group_size in SWEEP_POINTS:
        for pop in POPULATION_SIZES:
            results.append(measure_point(setting, bandwidth, group_size, pop))
    return results


def profile_kernel(setting: str = "S2", bandwidth: float = 16.0,
                   group_size: int = 20, pop: int = 512) -> str:
    """cProfile the kernel sweep; returns the cumulative-time stats text."""
    platform, evaluator = build_problem(setting, bandwidth, group_size)
    allocator = BatchBandwidthAllocator(
        system_bandwidth_gbps=platform.system_bandwidth_gbps,
        frequency_hz=platform.sub_accelerators[0].frequency_hz,
    )
    rows = evaluator.codec.repair_batch(evaluator.codec.random_population(pop, rng=0))
    batch = evaluator.codec.decode_batch(rows)
    allocator.makespan_cycles(batch, evaluator.table)  # warm-up
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(5):
        allocator.makespan_cycles(batch, evaluator.table)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(25)
    return buffer.getvalue()


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the table + cProfile stats to FILE")
    args = parser.parse_args(argv)

    lines = []
    header = (f"{'setting':>8} {'cores':>6} {'G':>4} {'pop':>6} "
              f"{'ms':>9} {'rows/s':>12} {'row-events/s':>14}")
    lines.append(header)
    lines.append("-" * len(header))
    for point in run_sweep():
        lines.append(
            f"{point['setting']:>8} {point['cores']:>6} {point['group_size']:>4} "
            f"{point['population']:>6} {point['seconds'] * 1e3:>9.2f} "
            f"{point['rows_per_second']:>12.0f} {point['row_events_per_second']:>14.0f}"
        )
    table = "\n".join(lines)
    print(table)
    profile_text = profile_kernel()
    print("\ncProfile (S2, pop=512, 5 sweeps, top 25 by cumulative time):")
    print(profile_text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(table + "\n\n" + profile_text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
