"""Fig. 13 — sub-accelerator combinations: S3 (Bigs, homogeneous) vs S4 (Bigs,
heterogeneous) vs S5 (BigLittle) under scarce and ample bandwidth.

Paper result: (a) the heterogeneous settings require less average bandwidth
but incur more no-stall latency than the homogeneous S3; (c) when bandwidth
is scarce (BW=1 GB/s) the settings with lower bandwidth demand win (S5 best,
then S4, then S3 at 0.81), while with ample bandwidth (BW=64 GB/s) all three
are effectively tied (the compute-richer settings no longer pay a penalty).

The benchmark regenerates the job analysis and the MAGMA throughput for the
three settings at both bandwidths and checks those relationships.
"""

from repro.experiments.runner import run_fig13_subaccel_combinations


def test_fig13_subaccelerator_combinations(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_fig13_subaccel_combinations,
        kwargs={"scale": scale, "seed": 0, "bandwidths": (1.0, 64.0), "settings": ("S3", "S4", "S5")},
        rounds=1,
        iterations=1,
    )
    job_analysis = result["job_analysis"]
    normalized = result["normalized"]

    # (a)/(b): heterogeneous settings trade bandwidth demand for latency.
    for task in ("mix", "language"):
        assert job_analysis["S4"][task]["avg_required_bw_gbps"] < job_analysis["S3"][task]["avg_required_bw_gbps"]
        assert job_analysis["S4"][task]["avg_no_stall_latency_cycles"] >= job_analysis["S3"][task][
            "avg_no_stall_latency_cycles"
        ]
    # The BigLittle setting has the lowest bandwidth demand of the three.
    assert (
        job_analysis["S5"]["mix"]["avg_required_bw_gbps"]
        < job_analysis["S3"]["mix"]["avg_required_bw_gbps"]
    )

    # (c): at scarce bandwidth the lower-demand settings are competitive with
    # (or better than) the homogeneous Bigs; at ample bandwidth nobody is
    # dramatically ahead of S3.
    scarce = normalized[1.0]
    ample = normalized[64.0]
    assert scarce["S4"] >= scarce["S3"] * 0.95
    assert scarce["S5"] >= scarce["S3"] * 0.95
    assert ample["S3"] >= 0.8

    report_lines.append(
        "fig13 normalised throughput at BW=1:  "
        + ", ".join(f"{s}={scarce[s]:.2f}" for s in ("S3", "S4", "S5"))
    )
    report_lines.append(
        "fig13 normalised throughput at BW=64: "
        + ", ".join(f"{s}={ample[s]:.2f}" for s in ("S3", "S4", "S5"))
    )
