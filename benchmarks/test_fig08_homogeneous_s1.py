"""Fig. 8 — all ten mapping methods on the homogeneous small accelerator (S1, BW=16).

Paper result: on S1 the manual mappers and the optimization baselines all land
within a reasonable factor of MAGMA, and MAGMA is the best method overall —
geomean 1.4x over Herald-like, 1.41x over AI-MT-like, and 1.6x over the other
optimization methods.  Absolute MAGMA throughputs reported: 249 / 397 / 194 /
329 GFLOP/s for Vision / Language / Recommendation / Mix.

The benchmark regenerates the four panels (normalised throughput per method)
and checks that MAGMA is never beaten by a manual mapper by more than a small
margin and beats the field on the Mix task.
"""

from repro.experiments.runner import run_fig8_homogeneous
from repro.optimizers.registry import PAPER_COMPARISON_METHODS


def test_fig8_homogeneous_small_accelerator(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_fig8_homogeneous, kwargs={"scale": scale, "seed": 0}, rounds=1, iterations=1
    )
    normalized = result["normalized"]
    absolute = result["absolute"]

    assert set(normalized) == {"vision", "language", "recommendation", "mix"}
    for task, panel in normalized.items():
        # All ten methods produced a mapping.
        assert len(panel) == len(PAPER_COMPARISON_METHODS)
        # Throughputs are positive and normalised against MAGMA.
        assert panel["MAGMA"] == 1.0
        assert all(value > 0 for value in panel.values())

    # MAGMA is competitive on every task: no method beats it by more than a
    # small margin at reduced scale (in the paper MAGMA is strictly best).
    for task, panel in normalized.items():
        assert max(panel.values()) < 1.25, (task, panel)

    for task, panel in absolute.items():
        ordered = sorted(panel.items(), key=lambda item: item[1], reverse=True)
        top = ", ".join(f"{name}={value:.1f}" for name, value in ordered[:3])
        report_lines.append(f"fig8  {task:<15s} top methods (GFLOP/s): {top}")
