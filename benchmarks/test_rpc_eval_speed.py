"""Perf smoke: the multi-host RPC backend vs the single-process batch sweep.

Spawns real ``repro-magma eval-worker`` *subprocesses* on localhost (the same
code path a remote host would run), evaluates the same 200-individual
population through the ``batch`` backend and through ``rpc`` with a warm
fleet, records the wall times and achieved speedup to
``BENCH_rpc_eval.json``, and asserts the sharded path is at least 1.5x
faster.  Mirrors ``test_parallel_eval_speed.py`` / ``BENCH_parallel_eval.json``
(the bar is lower than the process pool's 2x because every shard also pays
pickling + TCP, which on localhost is pure overhead — across real hosts it
buys memory and cores the coordinator does not have).

Like the parallel benchmark, this skips (with a recorded reason) on
single-core runners, where workers would timeshare one core; the rpc
backend's correctness is covered by the machine-agnostic equivalence tests
in ``tests/core/test_rpc_eval.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.accelerator import build_setting
from repro.core.evaluator import MappingEvaluator
from repro.workloads import TaskType, build_task_workload

#: Minimum accepted rpc-vs-batch speedup on a 200-individual population.
MIN_SPEEDUP = 1.5

POPULATION_SIZE = 200
GROUP_SIZE = 200
SETTING = "S6"  # 16 cores: wide per-event state, the shard-friendly regime
BANDWIDTH_GBPS = 256.0
RESULT_FILE = "BENCH_rpc_eval.json"
TOKEN = "bench-token"


def _record(payload: dict) -> None:
    with open(RESULT_FILE, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def _best_of(callable_, repeats: int = 3) -> float:
    """Best-of-N wall time, the usual cheap noise guard for smoke perf tests."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _spawn_worker() -> tuple[subprocess.Popen, str]:
    """Start one eval-worker subprocess on an ephemeral port; return its address."""
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "eval-worker",
         "--listen", "127.0.0.1:0", "--token", TOKEN],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        bufsize=1,
    )
    line = process.stdout.readline()
    if "listening on" not in line:
        process.kill()
        stderr = process.stderr.read()
        raise RuntimeError(f"eval-worker failed to start: {line!r}\n{stderr}")
    return process, line.rsplit(" ", 1)[-1].strip()


def test_rpc_backend_at_least_1_5x_faster(report_lines):
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        reason = (
            f"rpc speedup needs >=2 CPU cores, runner has {cpu_count}; "
            "localhost workers would timeshare one core"
        )
        _record({
            "setting": SETTING,
            "bandwidth_gbps": BANDWIDTH_GBPS,
            "group_size": GROUP_SIZE,
            "population_size": POPULATION_SIZE,
            "cpu_count": cpu_count,
            "status": "skipped",
            "skip_reason": reason,
            "min_required_speedup": MIN_SPEEDUP,
        })
        report_lines.append(f"rpc-eval speedup: skipped ({reason})")
        pytest.skip(reason)

    num_workers = min(cpu_count, 4)
    workers = [_spawn_worker() for _ in range(num_workers)]
    try:
        platform = build_setting(SETTING, BANDWIDTH_GBPS)
        group = build_task_workload(
            TaskType.MIX,
            group_size=GROUP_SIZE,
            seed=0,
            num_sub_accelerators=platform.num_sub_accelerators,
        )[0]
        batch = MappingEvaluator(group, platform, backend="batch")
        rpc = MappingEvaluator(
            group, platform, analysis_table=batch.table,
            backend="rpc",
            eval_hosts=[address for _, address in workers],
            rpc_token=TOKEN,
        )
        population = batch.codec.random_population(POPULATION_SIZE, rng=0)

        # Warm both paths (imports, allocator state, worker bootstrap) outside
        # the timed region, and verify bitwise equivalence before timing.
        assert rpc._pool.warm_up() == num_workers
        warm_batch = batch.evaluate_population(population, count_samples=False)
        warm_rpc = rpc.evaluate_population(population, count_samples=False)
        assert np.array_equal(warm_batch, warm_rpc)

        # Clear the memo cache before every timed run so the simulation cost
        # (not a cache hit) is what gets measured; the fleet connections stay
        # warm, exactly as they would across the generations of a real search.
        def run_batch():
            batch._fitness_cache.clear()
            batch.evaluate_population(population, count_samples=False)

        def run_rpc():
            rpc._fitness_cache.clear()
            rpc.evaluate_population(population, count_samples=False)

        batch_seconds = _best_of(run_batch)
        rpc_seconds = _best_of(run_rpc)
        rpc.close()
    finally:
        for process, _ in workers:
            process.kill()
        for process, _ in workers:
            process.wait(timeout=10)
    speedup = batch_seconds / rpc_seconds

    _record({
        "setting": SETTING,
        "bandwidth_gbps": BANDWIDTH_GBPS,
        "group_size": GROUP_SIZE,
        "population_size": POPULATION_SIZE,
        "cpu_count": cpu_count,
        "num_workers": num_workers,
        "status": "measured",
        "batch_seconds": batch_seconds,
        "rpc_seconds": rpc_seconds,
        "speedup": speedup,
        "min_required_speedup": MIN_SPEEDUP,
    })
    report_lines.append(
        f"rpc-eval speedup: {speedup:.1f}x with {num_workers} localhost workers "
        f"(batch {batch_seconds*1e3:.1f} ms vs rpc {rpc_seconds*1e3:.1f} ms, "
        f"{POPULATION_SIZE} individuals)"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"rpc backend only {speedup:.2f}x faster than batch "
        f"({batch_seconds:.4f}s vs {rpc_seconds:.4f}s) with {num_workers} "
        f"localhost workers; expected >= {MIN_SPEEDUP}x"
    )
