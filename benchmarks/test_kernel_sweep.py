"""Perf smoke: raw step rate of the batched bandwidth event-sweep kernel.

The parallel/rpc speed benches must skip-with-reason on core-starved runners
(a fleet timesharing one CPU cannot demonstrate a speedup), which would
leave the raw-speed pass ungated there.  This bench closes that hole: the
kernel's step rate is a single-core property, so it measures — and floors —
on every machine.  The unit is *row-events per second*: each of the ``pop``
individuals sees ~``group_size`` job-completion events, and each event is
one vectorized sweep step (see ``benchmarks/profile_kernel.py``, whose
measurement method this reuses, and docs/PERFORMANCE.md for the
methodology and the before/after table).
"""

from __future__ import annotations

import json

from profile_kernel import measure_point

#: Per-setting step-rate floors (row-events/s).  Dev-box measurements are
#: 3.5M (S2) and 2.1M (S6); the floors sit ~3x under that so shared CI
#: runners with noisy neighbours do not flake, while a kernel regression
#: back to the pre-optimization rates (1.2M / 0.7M) still trips the gate.
MIN_S2_ROW_EVENTS_PER_SECOND = 1.2e6
MIN_S6_ROW_EVENTS_PER_SECOND = 0.7e6

POPULATION_SIZE = 512


def test_kernel_step_rate_floors(report_lines):
    s2 = measure_point("S2", 16.0, 20, POPULATION_SIZE)
    s6 = measure_point("S6", 256.0, 64, POPULATION_SIZE)

    record = {
        "population_size": POPULATION_SIZE,
        "s2_seconds": s2["seconds"],
        "s2_row_events_per_second": s2["row_events_per_second"],
        "s6_seconds": s6["seconds"],
        "s6_row_events_per_second": s6["row_events_per_second"],
        "min_s2_row_events_per_second": MIN_S2_ROW_EVENTS_PER_SECOND,
        "min_s6_row_events_per_second": MIN_S6_ROW_EVENTS_PER_SECOND,
    }
    with open("BENCH_kernel_sweep.json", "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    report_lines.append(
        f"kernel step rate: S2 {s2['row_events_per_second'] / 1e6:.2f}M "
        f"({s2['seconds'] * 1e3:.2f} ms), "
        f"S6 {s6['row_events_per_second'] / 1e6:.2f}M "
        f"({s6['seconds'] * 1e3:.2f} ms) row-events/s at pop {POPULATION_SIZE}"
    )

    assert s2["row_events_per_second"] >= MIN_S2_ROW_EVENTS_PER_SECOND, (
        f"S2 kernel step rate {s2['row_events_per_second']:.3g} row-events/s "
        f"below floor {MIN_S2_ROW_EVENTS_PER_SECOND:.3g}"
    )
    assert s6["row_events_per_second"] >= MIN_S6_ROW_EVENTS_PER_SECOND, (
        f"S6 kernel step rate {s6['row_events_per_second']:.3g} row-events/s "
        f"below floor {MIN_S6_ROW_EVENTS_PER_SECOND:.3g}"
    )
