"""Perf smoke: telemetry must be (almost) free on the batch hot path.

Runs the same population sweep untraced and traced (tracer enabled with a
JSONL sink, flight recorder riding the span hooks) and records the ratio to
``BENCH_obs_overhead.json``.  The ISSUE's contract is <5% overhead on the
batch hot path; the gated floor is ``traced_ratio >= 0.95`` (traced runs at
no less than 95% of untraced speed).  Metrics are always on in both arms —
the measured delta is the *tracing* machinery (span allocation, ring
appends, sink writes), which is exactly what ``--trace`` adds.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.accelerator import build_setting
from repro.core.evaluator import MappingEvaluator
from repro.obs import configure_tracing, get_tracer
from repro.workloads import TaskType, build_task_workload

#: Traced must run at >= this fraction of untraced speed (0.95 == <5% overhead).
MIN_TRACED_RATIO = 0.95

#: Sized so one sweep takes tens of milliseconds: scheduler jitter on shared
#: runners is ~1 ms, which must stay well under the 5% band being asserted.
POPULATION_SIZE = 500
GROUP_SIZE = 20
SETTING = "S2"
BANDWIDTH_GBPS = 16.0
SWEEPS = 8
REPEATS = 5


def test_tracing_overhead_under_five_percent(report_lines, tmp_path):
    platform = build_setting(SETTING, BANDWIDTH_GBPS)
    group = build_task_workload(
        TaskType.MIX,
        group_size=GROUP_SIZE,
        seed=0,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    batch = MappingEvaluator(group, platform, backend="batch")
    rng = np.random.default_rng(0)
    populations = [
        batch.codec.random_population(POPULATION_SIZE, rng=rng) for _ in range(SWEEPS)
    ]

    def sweep():
        # Fresh evaluator per run so memoization cannot hide the cost; the
        # shared analysis table keeps setup out of the timed region.
        evaluator = MappingEvaluator(
            group, platform, analysis_table=batch.table, backend="batch"
        )
        for population in populations:
            evaluator.evaluate_population(population, count_samples=False)

    sweep()  # warm-up (imports, allocator state) outside the timed region

    # Measure the arms back-to-back in pairs, alternating which goes first,
    # and score each pair by its own ratio: CPU frequency / cache drift then
    # cancels within the pair instead of being baked into the ratio as a
    # phantom overhead.  The best pair is the cleanest look at the true cost.
    def timed_sweep():
        start = time.perf_counter()
        sweep()
        return time.perf_counter() - start

    def traced_sweep():
        configure_tracing(enabled=True, sink_path=str(tmp_path / "bench_trace.jsonl"))
        try:
            return timed_sweep()
        finally:
            configure_tracing(enabled=False, sink_path=None)

    traced_ratio = 0.0
    untraced_seconds = traced_seconds = float("nan")
    try:
        for repeat in range(REPEATS):
            if repeat % 2 == 0:
                traced = traced_sweep()
                untraced = timed_sweep()
            else:
                untraced = timed_sweep()
                traced = traced_sweep()
            if untraced / traced > traced_ratio:
                traced_ratio = untraced / traced
                untraced_seconds, traced_seconds = untraced, traced
    finally:
        configure_tracing(enabled=False, sink_path=None)
        get_tracer().clear()

    record = {
        "setting": SETTING,
        "bandwidth_gbps": BANDWIDTH_GBPS,
        "group_size": GROUP_SIZE,
        "population_size": POPULATION_SIZE,
        "sweeps": SWEEPS,
        "repeats": REPEATS,
        "untraced_seconds": untraced_seconds,
        "traced_seconds": traced_seconds,
        "traced_ratio": traced_ratio,
        "min_required_ratio": MIN_TRACED_RATIO,
    }
    with open("BENCH_obs_overhead.json", "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    report_lines.append(
        f"obs overhead: traced at {traced_ratio:.3f}x untraced speed "
        f"(untraced {untraced_seconds*1e3:.1f} ms vs traced {traced_seconds*1e3:.1f} ms, "
        f"{SWEEPS}x{POPULATION_SIZE} rows)"
    )

    assert traced_ratio >= MIN_TRACED_RATIO, (
        f"tracing costs more than its budget: traced runs at {traced_ratio:.3f}x "
        f"untraced speed ({traced_seconds:.4f}s vs {untraced_seconds:.4f}s); "
        f"expected >= {MIN_TRACED_RATIO}"
    )
