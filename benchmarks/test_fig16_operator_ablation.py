"""Fig. 16 — ablation of MAGMA's genetic operators.

Paper result: with the mutation operator alone MAGMA's sample efficiency
collapses; adding crossover-gen recovers most of it, and the full operator
set (crossover-rg + crossover-accel) converges the fastest on both
(Vision, S2, BW=16) and (Mix, S3, BW=16).

The benchmark runs the three ablation levels with the same budget and checks
that adding operators never hurts the final value beyond noise, and that the
full MAGMA reaches the best (or tied-best) final throughput.
"""

from repro.experiments.runner import run_fig16_operator_ablation


def test_fig16_operator_ablation(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_fig16_operator_ablation, kwargs={"scale": scale, "seed": 0}, rounds=1, iterations=1
    )
    final_values = result["final_values"]
    curves = result["curves"]
    assert set(final_values) == {"vision_s2", "mix_s3"}

    for panel_name, panel in final_values.items():
        assert set(panel) == {"MAGMA-mut", "MAGMA-mut+gen", "MAGMA"}
        best = max(panel.values())
        # The full operator set is the best or within 10% of the best variant.
        assert panel["MAGMA"] >= 0.9 * best, (panel_name, panel)

        # Convergence curves are monotone best-so-far traces.
        for method, curve in curves[panel_name].items():
            values = curve.best_so_far
            assert all(b >= a for a, b in zip(values, values[1:])), (panel_name, method)

        report_lines.append(
            f"fig16 {panel_name:<10s} "
            + ", ".join(f"{m}={v:.1f}" for m, v in sorted(panel.items()))
        )
