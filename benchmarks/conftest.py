"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation via
the runners in :mod:`repro.experiments.runner`.  The fidelity/runtime
trade-off is controlled by the ``REPRO_SCALE`` environment variable
(``smoke`` / ``small`` / ``paper``).  When the variable is unset the harness
defaults to ``smoke`` so that ``pytest benchmarks/ --benchmark-only``
completes in a few minutes; export ``REPRO_SCALE=paper`` to re-run at the
paper's full group size and sampling budget.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.settings import SCALE_ENV_VAR, get_scale

# Default the benchmark harness to the cheapest scale unless the user opted in
# to a bigger one explicitly.
os.environ.setdefault(SCALE_ENV_VAR, "smoke")


@pytest.fixture(scope="session")
def scale():
    """The experiment scale shared by every benchmark in the session."""
    return get_scale()


@pytest.fixture(scope="session")
def report_lines():
    """Collector for human-readable result lines.

    The collected lines are printed at session end (visible with ``pytest -s``)
    and always written to ``reproduction_summary.txt`` in the working
    directory so the measured values can be compared against EXPERIMENTS.md
    even when pytest captures stdout.
    """
    lines: list[str] = []
    yield lines
    if not lines:
        return
    header = [
        "=" * 72,
        f"Reproduction summary (paper vs measured), scale={get_scale().name}",
        "=" * 72,
    ]
    print("\n" + "\n".join(header))
    for line in lines:
        print(line)
    with open("reproduction_summary.txt", "w", encoding="utf-8") as handle:
        handle.write("\n".join(header + lines) + "\n")
