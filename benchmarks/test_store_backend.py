"""Perf smoke: multi-replica service tier over a shared store backend.

The scaling claim behind the pluggable store backends: two ``repro-magma
serve`` replicas sharing one ``sqlite:`` store stay fast — and bit-identical
— when the store already holds 10⁵ solutions.  This benchmark records, to
``BENCH_store_backend.json``:

* ``seed_records_per_second`` — bulk-load rate for the 10⁵-record seed;
* ``lookup_latency_ms`` (median) — per-fingerprint lookup against the full
  store through the indexed backend;
* ``requests_per_second`` — sustained submit throughput across *two* live
  replicas under concurrent client threads;

and asserts the structural guarantee the tier is built on: the replica that
never ran the search answers the shared fingerprint bit-identically to the
one that did.
"""

from __future__ import annotations

import json
import threading
import time

from repro.service import MappingRequest, MappingService
from repro.utils.sqlite_store import SqliteStoreBackend

SEED_RECORDS = 100_000
LOOKUP_SAMPLES = 500
BURST_PER_CLIENT = 500
CLIENTS_PER_REPLICA = 2


def _seed_record(index: int) -> dict:
    fitness = float(index % 997)
    return {
        "fingerprint": f"seed-{index:08d}",
        "request": {"task": "vision", "seed": index},
        "task_key": f"task{index % 13}/throughput",
        "result": {
            "optimizer_name": "MAGMA",
            "best_fitness": fitness,
            "objective_value": fitness,
            "throughput_gflops": fitness,
            "makespan_cycles": 100.0,
            "samples_used": 48,
            "best_encoding": [0.0, 1.0, 0.5, 0.25],
            "history": [fitness / 2, fitness],
        },
    }


def test_two_replicas_share_a_hundred_thousand_solution_store(
    scale, tmp_path, report_lines
):
    store_url = f"sqlite:{tmp_path / 'shared.sqlite3'}"

    # Bulk-seed 10^5 solutions (one transaction batch at a time).
    backend = SqliteStoreBackend(str(tmp_path / "shared.sqlite3"))
    start = time.perf_counter()
    batch = 10_000
    for base in range(0, SEED_RECORDS, batch):
        backend.append_many([_seed_record(i) for i in range(base, base + batch)])
    seed_seconds = time.perf_counter() - start
    assert len(backend) == SEED_RECORDS

    # Indexed lookup latency against the full store.
    latencies = []
    step = SEED_RECORDS // LOOKUP_SAMPLES
    for i in range(0, SEED_RECORDS, step):
        begin = time.perf_counter()
        record = backend.lookup(f"seed-{i:08d}")
        latencies.append(time.perf_counter() - begin)
        assert record is not None
    backend.close()
    latencies.sort()
    lookup_ms = latencies[len(latencies) // 2] * 1e3

    replica_a = MappingService(
        store=store_url, scale=scale, workers=2, replica_id="bench-a"
    )
    replica_b = MappingService(
        store=store_url, scale=scale, workers=2, replica_id="bench-b"
    )
    try:
        request = MappingRequest(task="vision", setting="S2", seed=0)
        job = replica_a.submit(request)
        reference = replica_a.result(job.job_id, timeout=600)

        # The replica that never searched answers bit-identically from the
        # shared backend (the tier's correctness contract, at 10^5 scale).
        hit = replica_b.submit(request)
        assert hit.cached and hit.state == "done"
        assert hit.result.to_dict() == reference.to_dict()
        assert replica_b.stats["searches_run"] == 0

        # Sustained concurrent submit load across both replicas.
        errors = []

        def client(replica):
            try:
                for _ in range(BURST_PER_CLIENT):
                    submitted = replica.submit(request)
                    assert submitted.result.to_dict() == reference.to_dict()
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(replica,))
            for replica in (replica_a, replica_b)
            for _ in range(CLIENTS_PER_REPLICA)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        burst_seconds = time.perf_counter() - start
        assert not errors
        total_requests = BURST_PER_CLIENT * len(threads)
        requests_per_second = total_requests / burst_seconds
        assert requests_per_second > 100
        stored = len(replica_a.store)
    finally:
        replica_b.close()
        replica_a.close()

    assert stored >= SEED_RECORDS + 1  # the seed plus the one real search

    payload = {
        "scale": scale.name,
        "backend": "sqlite",
        "replicas": 2,
        "seed_records": SEED_RECORDS,
        "seed_seconds": seed_seconds,
        "seed_records_per_second": SEED_RECORDS / seed_seconds,
        "lookup_latency_ms_median": lookup_ms,
        "lookup_samples": LOOKUP_SAMPLES,
        "burst_requests": total_requests,
        "requests_per_second": requests_per_second,
        "stored_records": stored,
    }
    with open("BENCH_store_backend.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    report_lines.append(
        f"[store-backend] seeded {SEED_RECORDS} records in {seed_seconds:.2f}s "
        f"({SEED_RECORDS / seed_seconds:.0f}/s), lookup {lookup_ms:.3f}ms median, "
        f"2 replicas sustained {requests_per_second:.0f} req/s"
    )
