"""Fig. 10 — exploration behaviour of the methods on (Mix, S2, BW=16).

Paper result: projected onto the first two principal components of the
sampled mappings, MAGMA covers a wide region early and then concentrates near
the optimum, reaching the same 254 GFLOP/s as a 1M-sample exhaustive search,
while PPO2 (101), PSO (68), CMA (19), and stdGA (16) converge to different,
worse local optima.

The benchmark records every sampled mapping per method, fits the shared PCA,
and checks that (i) every method's samples project into the common 2-D space,
(ii) MAGMA's reached throughput is at least as good as the other recorded
methods', and (iii) MAGMA gets within a reasonable factor of the best-effort
random reference.
"""

from repro.experiments.runner import run_fig10_exploration


def test_fig10_exploration_pca(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_fig10_exploration, kwargs={"scale": scale, "seed": 0}, rounds=1, iterations=1
    )
    reached = result["reached_gflops"]
    projections = result["projections"]

    assert "MAGMA" in reached and "Exhaustively Sampled" in reached
    for method, points in projections.items():
        assert points.ndim == 2 and points.shape[1] == 2, method
        assert points.shape[0] > 0, method

    searched_methods = [m for m in reached if m != "Exhaustively Sampled"]
    best_searched = max(searched_methods, key=lambda m: reached[m])
    # MAGMA is the best (or tied within 10%) among the recorded search methods.
    assert reached["MAGMA"] >= 0.9 * reached[best_searched]
    # And it lands within 2x of the best-effort exhaustive reference even at
    # reduced scale (the paper reports an exact match at full budget).
    assert reached["MAGMA"] >= 0.5 * reached["Exhaustively Sampled"]

    summary = ", ".join(f"{name}={value:.1f}" for name, value in sorted(reached.items()))
    report_lines.append(f"fig10 reached GFLOP/s: {summary}")
