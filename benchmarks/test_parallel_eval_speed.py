"""Perf smoke: the sharded multi-process backend vs the single-process batch sweep.

Evaluates the same 200-individual population through the ``batch`` backend
and through ``parallel`` with a warm worker pool, records the wall times and
achieved speedup to ``BENCH_parallel_eval.json``, and asserts the sharded
path is at least 2x faster.  Mirrors ``test_batch_eval_speed.py`` /
``BENCH_batch_eval.json``.

Sharding a population only buys wall time when shards can run on distinct
cores, so this test skips (with a recorded reason) on single-core runners —
the correctness of the parallel backend is covered by the (machine-agnostic)
equivalence tests in ``tests/core/test_parallel_eval.py``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.accelerator import build_setting
from repro.core.evaluator import MappingEvaluator
from repro.workloads import TaskType, build_task_workload

#: Minimum accepted parallel-vs-batch speedup on a 200-individual population.
MIN_SPEEDUP = 2.0

POPULATION_SIZE = 200
GROUP_SIZE = 200
SETTING = "S6"  # 16 cores: wide per-event state, the shard-friendly regime
BANDWIDTH_GBPS = 256.0
RESULT_FILE = "BENCH_parallel_eval.json"


def _record(payload: dict) -> None:
    with open(RESULT_FILE, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def _best_of(callable_, repeats: int = 3) -> float:
    """Best-of-N wall time, the usual cheap noise guard for smoke perf tests."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_backend_at_least_2x_faster(report_lines):
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        reason = (
            f"parallel speedup needs >=2 CPU cores, runner has {cpu_count}; "
            "sharded workers would timeshare one core"
        )
        _record({
            "setting": SETTING,
            "bandwidth_gbps": BANDWIDTH_GBPS,
            "group_size": GROUP_SIZE,
            "population_size": POPULATION_SIZE,
            "cpu_count": cpu_count,
            "status": "skipped",
            "skip_reason": reason,
            "min_required_speedup": MIN_SPEEDUP,
        })
        report_lines.append(f"parallel-eval speedup: skipped ({reason})")
        pytest.skip(reason)

    num_workers = min(cpu_count, 8)
    platform = build_setting(SETTING, BANDWIDTH_GBPS)
    group = build_task_workload(
        TaskType.MIX,
        group_size=GROUP_SIZE,
        seed=0,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    batch = MappingEvaluator(group, platform, backend="batch")
    parallel = MappingEvaluator(
        group, platform, analysis_table=batch.table,
        backend="parallel", num_workers=num_workers,
    )
    population = batch.codec.random_population(POPULATION_SIZE, rng=0)

    try:
        # Warm both paths (imports, allocator state, worker bootstrap) outside
        # the timed region, and verify bitwise equivalence before timing.
        parallel._pool.warm_up()
        warm_batch = batch.evaluate_population(population, count_samples=False)
        warm_parallel = parallel.evaluate_population(population, count_samples=False)
        assert np.array_equal(warm_batch, warm_parallel)

        # Clear the memo cache before every timed run so the simulation cost
        # (not a cache hit) is what gets measured; the worker pool stays warm,
        # exactly as it would across the generations of a real search.
        def run_batch():
            batch._fitness_cache.clear()
            batch.evaluate_population(population, count_samples=False)

        def run_parallel():
            parallel._fitness_cache.clear()
            parallel.evaluate_population(population, count_samples=False)

        batch_seconds = _best_of(run_batch)
        parallel_seconds = _best_of(run_parallel)
    finally:
        parallel.close()
    speedup = batch_seconds / parallel_seconds

    _record({
        "setting": SETTING,
        "bandwidth_gbps": BANDWIDTH_GBPS,
        "group_size": GROUP_SIZE,
        "population_size": POPULATION_SIZE,
        "cpu_count": cpu_count,
        "num_workers": num_workers,
        "status": "measured",
        "batch_seconds": batch_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "min_required_speedup": MIN_SPEEDUP,
    })
    report_lines.append(
        f"parallel-eval speedup: {speedup:.1f}x with {num_workers} workers "
        f"(batch {batch_seconds*1e3:.1f} ms vs parallel {parallel_seconds*1e3:.1f} ms, "
        f"{POPULATION_SIZE} individuals)"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"parallel backend only {speedup:.2f}x faster than batch "
        f"({batch_seconds:.4f}s vs {parallel_seconds:.4f}s) with {num_workers} "
        f"workers; expected >= {MIN_SPEEDUP}x"
    )
