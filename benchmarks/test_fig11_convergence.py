"""Fig. 11 — convergence of the optimization methods over an extended budget.

Paper result: on (Vision, S2, BW=16) and (Mix, S3, BW=16) most methods
converge well before the 10K-sample budget (TBPSA needs ~20K in one case),
but they converge to *worse* points than MAGMA.

The benchmark regenerates the convergence curves with the scaled extended
budget and checks that every curve is monotone (best-so-far), that every
method has effectively converged by the end of the budget, and that MAGMA's
final value is the best (within tolerance).
"""

from repro.experiments.runner import run_fig11_convergence


def test_fig11_convergence_curves(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_fig11_convergence,
        kwargs={"scale": scale, "seed": 0, "methods": ("magma", "stdga", "de", "pso", "cma", "tbpsa")},
        rounds=1,
        iterations=1,
    )
    curves = result["curves"]
    assert set(curves) == {"vision_s2", "mix_s3"}

    for panel_name, panel in curves.items():
        finals = {}
        for method, curve in panel.items():
            values = curve.best_so_far
            assert all(b >= a for a, b in zip(values, values[1:])), (panel_name, method)
            finals[method] = curve.final_value
        best_method = max(finals, key=finals.get)
        # MAGMA's converged value is the best or within 10% of the best.
        assert finals["MAGMA"] >= 0.9 * finals[best_method], (panel_name, finals)
        report_lines.append(
            f"fig11 {panel_name:<10s} final GFLOP/s: "
            + ", ".join(f"{m}={v:.1f}" for m, v in sorted(finals.items()))
        )
