"""Fig. 7 — per-job latency/bandwidth characteristics of the DNN models.

Paper reference values (HB / LB, averages across the task's models):

* Vision:          latency 1.7e5 / 2.8e6 cycles, required BW 0.9 / 0.037 GB/s
* Language:        latency 7.4e3 / 1.5e6 cycles, required BW 4.1 / 1.9e-4 GB/s
* Recommendation:  latency 1.9e2 / 7.6e5 cycles, required BW 150 / 1.1e-4 GB/s

The absolute values depend on the cost model; the benchmark checks the
orderings the paper's analysis relies on: recommendation jobs are the most
bandwidth-hungry and the shortest, vision jobs the most compute-heavy, and
the LB dataflow always trades much longer latency for much lower bandwidth.
"""

from repro.experiments.runner import run_fig7_job_analysis


def test_fig7_job_analysis(benchmark, report_lines):
    result = benchmark.pedantic(run_fig7_job_analysis, rounds=1, iterations=1)
    per_task = result["per_task"]

    vision, language, recommendation = (
        per_task["vision"],
        per_task["language"],
        per_task["recommendation"],
    )

    # Required bandwidth ordering on the HB style (paper: recom >> lang > vision).
    assert recommendation["hb_required_bw_gbps"] > language["hb_required_bw_gbps"]
    assert recommendation["hb_required_bw_gbps"] > 2 * vision["hb_required_bw_gbps"]

    # Latency ordering on the HB style (paper: vision >> lang >> recom).
    assert vision["hb_latency_cycles"] > language["hb_latency_cycles"]
    assert language["hb_latency_cycles"] > recommendation["hb_latency_cycles"]

    # The LB style trades latency for bandwidth for every task type, and the
    # penalty is far harsher for language/recommendation than for vision.
    for task in (vision, language, recommendation):
        assert task["lb_latency_cycles"] > task["hb_latency_cycles"]
        assert task["lb_required_bw_gbps"] < task["hb_required_bw_gbps"]
    vision_slowdown = vision["lb_latency_cycles"] / vision["hb_latency_cycles"]
    language_slowdown = language["lb_latency_cycles"] / language["hb_latency_cycles"]
    assert language_slowdown > 5 * vision_slowdown

    for name, row in per_task.items():
        report_lines.append(
            f"fig7  {name:<15s} HB lat {row['hb_latency_cycles']:.3g} cyc, "
            f"HB bw {row['hb_required_bw_gbps']:.3g} GB/s | "
            f"LB lat {row['lb_latency_cycles']:.3g} cyc, LB bw {row['lb_required_bw_gbps']:.3g} GB/s"
        )
