"""Perf smoke: per-chunk overhead of the work-stealing dispatch machinery.

The parallel/rpc speed benches measure whether a fleet beats one core — a
property a single-core runner cannot demonstrate, so they skip-with-reason
there.  What *can* be measured anywhere is the coordinator-side cost the
dispatcher adds around each chunk: the steal-queue pop, the per-chunk
bookkeeping, and the row-offset scatter.  This bench drives the real
:meth:`RpcEvaluationPool._dispatch` steal loop with stub clients whose
``evaluate`` returns instantly, so the measured wall time is pure dispatch
machinery, and floors the sustained chunk rate.  If per-chunk overhead ever
grows past the cost of evaluating a small chunk, stealing would stop paying
for itself — that is the regression this gate exists to catch.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.accelerator import build_setting
from repro.core.evaluator import MappingEvaluator
from repro.core.parallel import EvaluatorSpec, split_chunks
from repro.core.rpc import RpcEvaluationPool
from repro.workloads import TaskType, build_task_workload

#: Minimum accepted sustained dispatch rate (chunks through the steal loop
#: per second, two stub workers).  Dev-box measurement is tens of thousands
#: per second; the floor is ~0.5 ms of coordinator overhead per chunk —
#: the break-even point against evaluating a 16-row chunk locally.
MIN_CHUNKS_PER_SECOND = 2000.0

NUM_ROWS = 4096
CHUNK_ROWS = 16
REPEATS = 5
RESULT_FILE = "BENCH_dispatch_overhead.json"


class _InstantClient:
    """Duck-typed stand-in for a connected worker: replies in zero work."""

    host = "stub"
    port = 0

    def evaluate(self, rows: np.ndarray) -> np.ndarray:
        return np.zeros(len(rows))


def test_dispatch_overhead_per_chunk(report_lines):
    platform = build_setting("S2", 16.0)
    group = build_task_workload(
        TaskType.MIX, group_size=10, seed=0,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    evaluator = MappingEvaluator(group, platform, backend="batch")
    spec = EvaluatorSpec.capture(
        evaluator.codec, evaluator.batch_allocator, evaluator.table, evaluator.objective
    )
    pool = RpcEvaluationPool(spec, hosts=None, token="bench-token")
    rows = np.zeros((NUM_ROWS, evaluator.codec.encoding_length))
    chunks = split_chunks(NUM_ROWS, CHUNK_ROWS)
    clients = [_InstantClient(), _InstantClient()]

    pool._dispatch(rows, chunks, clients)  # warm-up (thread machinery, caches)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        out = pool._dispatch(rows, chunks, clients)
        best = min(best, time.perf_counter() - start)
    assert np.array_equal(out, np.zeros(NUM_ROWS))

    chunks_per_second = len(chunks) / best
    per_chunk_overhead_us = best / len(chunks) * 1e6

    record = {
        "num_rows": NUM_ROWS,
        "chunk_rows": CHUNK_ROWS,
        "num_chunks": len(chunks),
        "num_stub_workers": len(clients),
        "seconds": best,
        "chunks_per_second": chunks_per_second,
        "per_chunk_overhead_us": per_chunk_overhead_us,
        "min_chunks_per_second": MIN_CHUNKS_PER_SECOND,
    }
    with open(RESULT_FILE, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    report_lines.append(
        f"dispatch overhead: {per_chunk_overhead_us:.0f} us/chunk "
        f"({chunks_per_second:.0f} chunks/s through the steal loop, "
        f"{len(chunks)} chunks x {CHUNK_ROWS} rows)"
    )

    assert chunks_per_second >= MIN_CHUNKS_PER_SECOND, (
        f"dispatch machinery only {chunks_per_second:.0f} chunks/s "
        f"({per_chunk_overhead_us:.0f} us per chunk); "
        f"expected >= {MIN_CHUNKS_PER_SECOND:.0f} chunks/s"
    )
