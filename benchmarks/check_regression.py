"""Benchmark regression gate for CI.

The benchmark smoke suite writes one ``BENCH_*.json`` per perf claim (batch
speedup, parallel speedup, rpc speedup, service hit ratios...).  This script
compares the freshly measured ratios against the committed floors in
``benchmarks/baselines.json`` and exits non-zero when any ratio has dropped
below its floor — turning "the README says 3x" into a gate a PR cannot
silently regress.

Rules:

* A benchmark whose payload says ``"status": "skipped"`` *and* records a
  ``skip_reason`` passes, listing every floored metric it skipped explicitly
  (constrained runners record *why* they could not measure — e.g. a
  single-core machine cannot demonstrate a multi-worker speedup).
* A skipped payload without a recorded reason fails: "skipped" must be an
  explicit decision, never a silent hole in coverage.
* A missing benchmark file fails: the gate must notice when a benchmark is
  deleted or silently stops running.
* A metric missing from a measured payload fails for the same reason.

Usage::

    python benchmarks/check_regression.py            # after the smoke suite
    python benchmarks/check_regression.py --dir . --baselines benchmarks/baselines.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List

#: Default committed floors, relative to the repo root.
DEFAULT_BASELINES = os.path.join(os.path.dirname(__file__), "baselines.json")

PASS, SKIP, FAIL = "ok", "skipped", "REGRESSION"


def load_baselines(path: str) -> Dict[str, Dict[str, float]]:
    """The committed ``{bench file -> {metric -> floor}}`` map."""
    with open(path, "r", encoding="utf-8") as handle:
        baselines = json.load(handle)
    if not isinstance(baselines, dict) or not baselines:
        raise ValueError(f"baselines file {path!r} must be a non-empty JSON object")
    return baselines


def check_bench(path: str, floors: Dict[str, float]) -> List[Dict[str, Any]]:
    """Compare one benchmark payload against its floors.

    Returns one finding per metric: ``{"file", "metric", "status", "value",
    "floor", "note"}``; a whole-file problem (missing/skipped) yields a
    single finding with ``metric=None``.
    """
    name = os.path.basename(path)
    if not os.path.exists(path):
        return [{
            "file": name, "metric": None, "status": FAIL,
            "value": None, "floor": None,
            "note": "benchmark result file missing — did the smoke suite run it?",
        }]
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("status") == "skipped":
        # List every floored metric the skip covers, so skipped floors are
        # visible one-by-one in the gate's output instead of hiding behind a
        # single per-file line; a skip with no recorded reason is a failure,
        # not a free pass.
        reason = payload.get("skip_reason")
        status = SKIP if reason else FAIL
        note = reason or "skipped without a recorded reason — record skip_reason or run it"
        return [{
            "file": name, "metric": metric, "status": status,
            "value": None, "floor": floor,
            "note": note,
        } for metric, floor in sorted(floors.items())]
    findings = []
    for metric, floor in sorted(floors.items()):
        value = payload.get(metric)
        if value is None:
            findings.append({
                "file": name, "metric": metric, "status": FAIL,
                "value": None, "floor": floor,
                "note": "metric missing from measured payload",
            })
        elif float(value) < float(floor):
            findings.append({
                "file": name, "metric": metric, "status": FAIL,
                "value": float(value), "floor": float(floor),
                "note": f"measured {float(value):.3g} < required {float(floor):.3g}",
            })
        else:
            findings.append({
                "file": name, "metric": metric, "status": PASS,
                "value": float(value), "floor": float(floor),
                "note": f"measured {float(value):.3g} >= required {float(floor):.3g}",
            })
    return findings


def run(baselines_path: str, directory: str) -> List[Dict[str, Any]]:
    """Check every baselined benchmark under *directory*."""
    findings: List[Dict[str, Any]] = []
    for bench_file, floors in sorted(load_baselines(baselines_path).items()):
        findings.extend(check_bench(os.path.join(directory, bench_file), floors))
    return findings


def write_step_summary(findings: List[Dict[str, Any]], path: str) -> None:
    """Append the gate's verdict to a GitHub Actions step summary file.

    Two markdown tables: every gated metric with its measured value vs
    floor, then — so constrained runners cannot silently hollow out the
    gate — a dedicated table of skipped floors with their recorded reasons.
    """
    def fmt(value: "float | None") -> str:
        return "—" if value is None else f"{float(value):.3g}"

    icon = {PASS: "✅", SKIP: "⏭️", FAIL: "❌"}
    lines = [
        "## Benchmark regression gate",
        "",
        "| | benchmark | metric | measured | floor |",
        "|---|---|---|---|---|",
    ]
    for finding in findings:
        lines.append(
            f"| {icon[finding['status']]} | {finding['file']} "
            f"| {finding['metric'] or '—'} "
            f"| {fmt(finding['value'])} | {fmt(finding['floor'])} |"
        )
    skipped = [finding for finding in findings if finding["status"] == SKIP]
    if skipped:
        lines += [
            "",
            "### Skipped floors",
            "",
            "These floors could not be measured on this runner; each skip",
            "records why.  The core-count-independent benches (kernel step",
            "rate, frame codec GB/s, dispatch overhead) still gate above.",
            "",
            "| benchmark | metric | reason |",
            "|---|---|---|",
        ]
        for finding in skipped:
            lines.append(
                f"| {finding['file']} | {finding['metric'] or '—'} "
                f"| {finding['note']} |"
            )
    verdict = "FAILED" if any(f["status"] == FAIL for f in findings) else "ok"
    lines += ["", f"**Verdict:** {verdict}", ""]
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baselines", default=DEFAULT_BASELINES,
        help="committed {bench file -> {metric -> floor}} JSON",
    )
    parser.add_argument(
        "--dir", default=".", metavar="DIR",
        help="directory holding the freshly produced BENCH_*.json files",
    )
    args = parser.parse_args(argv)

    findings = run(args.baselines, args.dir)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        write_step_summary(findings, summary_path)
    width = max(len(f["file"]) for f in findings)
    failed = False
    for finding in findings:
        status = finding["status"]
        failed = failed or status == FAIL
        metric = finding["metric"] or "-"
        print(f"{status:>10}  {finding['file']:<{width}}  {metric:<22} {finding['note']}")
    if failed:
        print("\nbenchmark regression gate: FAILED", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
