"""Fig. 15 — visualisation of the schedules found by Herald-like and MAGMA
(Mix task, S5, BW=1 GB/s).

Paper result: Herald-like front-loads the bandwidth-intensive jobs, causing
bandwidth competition and a ~9x longer finish time (5.2e6 vs 5.6e5 cycles);
MAGMA spreads the bandwidth-intensive language/recommendation jobs across the
runtime.

The benchmark regenerates both schedules, checks that MAGMA's finish time is
no worse than Herald-like's, and that the extracted Gantt / bandwidth-series
data is structurally complete (every job appears once; the allocation series
never exceeds the 1 GB/s system budget).
"""

from repro.experiments.runner import run_fig15_schedule_visualization


def test_fig15_schedule_visualization(benchmark, scale, report_lines):
    result = benchmark.pedantic(
        run_fig15_schedule_visualization, kwargs={"scale": scale, "seed": 0}, rounds=1, iterations=1
    )
    finish = result["finish_time_cycles"]
    gantt = result["gantt"]
    bandwidth_series = result["bandwidth_series"]

    assert set(finish) == {"Herald-like", "MAGMA"}
    # MAGMA finishes the group no later than the manual mapper (the paper
    # reports ~9x earlier at full scale).
    assert finish["MAGMA"] <= finish["Herald-like"] * 1.02

    for method, entries in gantt.items():
        job_indices = sorted(entry.job_index for entry in entries)
        assert job_indices == list(range(len(job_indices))), method
        assert len(set(job_indices)) == len(job_indices), method

    for method, series in bandwidth_series.items():
        for core, points in series.items():
            assert all(value <= 1.0 + 1e-6 for _, value in points), (method, core)

    ratio = finish["Herald-like"] / finish["MAGMA"]
    report_lines.append(
        f"fig15 finish time: Herald-like={finish['Herald-like']:.3e} cyc, "
        f"MAGMA={finish['MAGMA']:.3e} cyc (Herald/MAGMA = {ratio:.2f}x; paper ~9x)"
    )
