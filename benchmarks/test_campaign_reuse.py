"""Perf smoke: shared-work dedup and resume behaviour of the campaign engine.

Runs a 2-setting x 2-task grid (two methods per problem, so every analysis
table is needed twice) through :class:`CampaignRunner`, records the
shared-cache statistics and wall times to ``BENCH_campaign.json``, and
asserts the two structural guarantees of the campaign engine:

* the Job Analysis Table is built once per unique (group, platform) pair —
  not once per cell;
* resuming a completed campaign re-runs zero cells (and an interrupted one
  re-runs only the missing cells, converging to an identical store).
"""

from __future__ import annotations

import json
import time

from repro.core.analyzer import AnalysisTableCache
from repro.experiments.campaign import CampaignRunner
from repro.experiments.scenarios import ScenarioSpec

SETTINGS = ("S1", "S2")
TASKS = ("vision", "mix")
METHODS = ("herald-like", "magma")


def _grid() -> ScenarioSpec:
    return ScenarioSpec(
        name="campaign-reuse",
        description="2-setting x 2-task x 2-method reuse grid",
        settings=SETTINGS,
        bandwidths=(16.0,),
        tasks=TASKS,
        methods=METHODS,
    )


def test_campaign_reuses_tables_and_resumes_for_free(scale, tmp_path, report_lines):
    spec = _grid()
    num_cells = len(SETTINGS) * len(TASKS) * len(METHODS)
    unique_problems = len(SETTINGS) * len(TASKS)
    store_path = str(tmp_path / "campaign.jsonl")

    engine = CampaignRunner(scale=scale, table_cache=AnalysisTableCache())
    start = time.perf_counter()
    report = engine.run([spec], store=store_path)
    fresh_seconds = time.perf_counter() - start

    assert report.cells_run == num_cells
    # The shared cache builds one table per unique (group, platform) pair;
    # every other cell is a hit.  Without the campaign-level cache this grid
    # would build a table per cell.
    assert report.table_builds == unique_problems
    assert report.table_hits == num_cells - unique_problems

    # Resuming the completed campaign re-runs zero cells...
    start = time.perf_counter()
    resumed = CampaignRunner(scale=scale, table_cache=AnalysisTableCache()).run(
        [spec], store=store_path, resume=True
    )
    resume_seconds = time.perf_counter() - start
    assert resumed.cells_run == 0
    assert resumed.cells_skipped == num_cells

    # ... and an interrupted campaign converges to an identical store.
    with open(store_path, "r", encoding="utf-8") as handle:
        full_lines = handle.read()
    truncated = str(tmp_path / "interrupted.jsonl")
    with open(truncated, "w", encoding="utf-8") as handle:
        handle.write("".join(line + "\n" for line in full_lines.splitlines()[: num_cells // 2]))
    repaired = CampaignRunner(scale=scale, table_cache=AnalysisTableCache()).run(
        [spec], store=truncated, resume=True
    )
    assert repaired.cells_run == num_cells - num_cells // 2
    with open(truncated, "r", encoding="utf-8") as handle:
        assert handle.read() == full_lines

    payload = {
        "scale": scale.name,
        "cells": num_cells,
        "unique_problems": unique_problems,
        "table_builds": report.table_builds,
        "table_hits": report.table_hits,
        "fresh_seconds": fresh_seconds,
        "resume_seconds": resume_seconds,
        "resume_cells_rerun": resumed.cells_run,
    }
    with open("BENCH_campaign.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    report_lines.append(
        f"[campaign] {num_cells} cells, {report.table_builds} table builds "
        f"({report.table_hits} cache hits); fresh {fresh_seconds:.2f}s, "
        f"resume {resume_seconds:.3f}s with 0 cells re-run"
    )
