#!/usr/bin/env python3
"""Compare mapping methods for a multi-tenant inference data center.

The paper's motivating scenario (Section I) is a data center running batched
vision, language, and recommendation inference on a large multi-core
accelerator.  This example reproduces a slice of Fig. 9: it runs the manual
mappers (Herald-like, AI-MT-like), a black-box optimizer (stdGA), and MAGMA
on the Large heterogeneous accelerator (S4) for the Mix task, and prints the
normalised comparison table plus MAGMA's geomean speedups.

Run it with::

    python examples/datacenter_mapper_comparison.py [--budget N]
"""

from __future__ import annotations

import argparse

from repro import M3E, TaskType, build_setting, build_task_workload
from repro.analysis.reporting import ComparisonReport, speedup_summary
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=1_500,
                        help="sampling budget per method (paper: 10000)")
    parser.add_argument("--group-size", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    platform = build_setting("S4", system_bandwidth_gbps=256.0)
    print(platform.describe())
    print()

    per_task_results = {}
    for task in (TaskType.VISION, TaskType.MIX):
        group = build_task_workload(
            task,
            group_size=args.group_size,
            seed=args.seed,
            num_sub_accelerators=platform.num_sub_accelerators,
        )[0]
        explorer = M3E(platform, sampling_budget=args.budget)
        results = explorer.compare(
            group,
            optimizers=["herald-like", "ai-mt-like", "stdga", "magma"],
            seed=args.seed,
        )
        per_task_results[task.value] = results

        report = ComparisonReport(title=f"{task.value} task on S4 (BW=256 GB/s)")
        for result in results.values():
            report.add(result)
        print(report.to_text())
        print()

    speedups = speedup_summary(per_task_results, reference="MAGMA")
    rows = [[method, f"{speedup:.2f}x"] for method, speedup in sorted(speedups.items())]
    print("MAGMA geomean speedup over each baseline (paper: 1.7x Herald, 52x AI-MT on S4 Mix):")
    print(format_table(["baseline", "geomean speedup"], rows))


if __name__ == "__main__":
    main()
