#!/usr/bin/env python3
"""Quickstart: map a multi-tenant Mix workload onto a heterogeneous accelerator.

This example walks through the whole M3E flow from the paper:

1. build an accelerator platform (the paper's S2 setting: 3 HB cores + 1 LB
   core sharing 16 GB/s of system bandwidth),
2. build a batched multi-tenant workload (vision + language + recommendation
   jobs) and take one dependency-free group,
3. run the MAGMA search for a global mapping,
4. inspect the resulting schedule: throughput, per-core utilisation, and an
   ASCII Gantt chart of which job runs where and when.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import M3E, TaskType, build_setting, build_task_workload
from repro.analysis.gantt import render_ascii_gantt


def main() -> None:
    # 1. The accelerator: S2 = small heterogeneous (Table III of the paper).
    platform = build_setting("S2", system_bandwidth_gbps=16.0)
    print(platform.describe())
    print()

    # 2. The workload: one dependency-free group of 64 mixed-tenant jobs.
    group = build_task_workload(
        TaskType.MIX,
        group_size=64,
        seed=0,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    print(f"workload: {group.describe()}")
    print()

    # 3. Search for a mapping with MAGMA (reduced budget for a quick demo).
    explorer = M3E(platform, objective="throughput", sampling_budget=2_000)
    result = explorer.search(group, optimizer="magma", seed=0)

    # 4. Inspect the result.
    print(f"optimizer        : {result.optimizer_name}")
    print(f"samples used     : {result.samples_used}")
    print(f"throughput       : {result.throughput_gflops:.1f} GFLOP/s")
    print(f"makespan         : {result.schedule.makespan_cycles:.3e} cycles "
          f"({result.schedule.makespan_seconds * 1e3:.2f} ms)")
    utilisation = ", ".join(f"{u:.0%}" for u in result.schedule.core_utilization())
    print(f"core utilisation : {utilisation}")
    print(f"jobs per core    : {result.best_mapping.jobs_per_core()}")
    print()
    print(render_ascii_gantt(result.schedule, group, width=72))


if __name__ == "__main__":
    main()
