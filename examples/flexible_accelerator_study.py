#!/usr/bin/env python3
"""Fixed versus flexible PE arrays on FPGA/CGRA-style accelerators (Fig. 14).

Section VI-F of the paper studies accelerators whose PE-array *shape* can be
re-configured per layer (FPGAs, CGRAs, programmable accelerators): the PE
budget stays fixed but the aspect ratio is re-optimised to match each layer's
parallel dimensions.  This example:

1. shows, for a few representative layers, which array shape the flexible
   cost model picks and how much no-stall latency it saves,
2. runs MAGMA on the fixed and flexible variants of the Small accelerator
   (S1) for a Vision and a Mix workload and reports the end-to-end gain.

Run it with::

    python examples/flexible_accelerator_study.py [--budget N]
"""

from __future__ import annotations

import argparse

from repro import M3E, TaskType, build_setting, build_task_workload
from repro.costmodel import AnalyticalCostModel, FlexibleArrayCostModel
from repro.utils.tables import format_table
from repro.workloads import get_model


def per_layer_shape_study() -> None:
    """Which shapes does the flexible array pick, and what do they save?"""
    fixed = AnalyticalCostModel(pe_rows=32, pe_cols=64, dataflow="HB", sg_bytes=146 * 1024)
    flexible = FlexibleArrayCostModel(total_pes=2048, dataflow="HB", sg_bytes=146 * 1024)

    sample_layers = [
        ("resnet50 early conv", get_model("resnet50")[1]),
        ("resnet50 late conv", get_model("resnet50")[-3]),
        ("mobilenet_v2 depthwise", next(l for l in get_model("mobilenet_v2") if "dw" in l.name)),
        ("gpt2 feed-forward", next(l for l in get_model("gpt2") if "ffn_up" in l.name)),
        ("dlrm top MLP", get_model("dlrm")[-2]),
    ]
    rows = []
    for label, layer in sample_layers:
        fixed_estimate = fixed.evaluate(layer)
        flexible_estimate = flexible.evaluate(layer)
        rows.append(
            [
                label,
                "x".join(str(d) for d in flexible.chosen_shape(layer)),
                fixed_estimate.no_stall_latency_cycles,
                flexible_estimate.no_stall_latency_cycles,
                fixed_estimate.no_stall_latency_cycles / flexible_estimate.no_stall_latency_cycles,
            ]
        )
    print("Per-layer shape selection (2048-PE budget, HB dataflow):")
    print(format_table(["layer", "chosen shape", "fixed latency", "flex latency", "speedup"], rows))
    print()


def end_to_end_study(budget: int, seed: int) -> None:
    """MAGMA throughput on fixed vs flexible S1 for Vision and Mix workloads."""
    rows = []
    for task in (TaskType.VISION, TaskType.MIX):
        for bandwidth in (1.0, 16.0):
            fixed_platform = build_setting("S1", bandwidth)
            flexible_platform = fixed_platform.with_flexible_arrays(True)
            group = build_task_workload(
                task, group_size=32, seed=seed,
                num_sub_accelerators=fixed_platform.num_sub_accelerators,
            )[0]
            throughputs = {}
            for label, platform in (("fixed", fixed_platform), ("flexible", flexible_platform)):
                explorer = M3E(platform, sampling_budget=budget)
                result = explorer.search(group, optimizer="magma", seed=seed)
                throughputs[label] = result.throughput_gflops
            rows.append(
                [
                    task.value,
                    f"{bandwidth:g}",
                    throughputs["fixed"],
                    throughputs["flexible"],
                    throughputs["flexible"] / throughputs["fixed"],
                ]
            )
    print("End-to-end MAGMA throughput, fixed vs flexible S1 (paper Fig. 14(c-d)):")
    print(format_table(["task", "BW (GB/s)", "fixed GFLOP/s", "flexible GFLOP/s", "flex / fixed"], rows))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=800)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    per_layer_shape_study()
    end_to_end_study(args.budget, args.seed)


if __name__ == "__main__":
    main()
