#!/usr/bin/env python3
"""Warm-starting the mapper in a continuously running deployment (Table V).

A deployed scheduler repeatedly faces new dependency-free groups drawn from
the same task mix.  Re-running a full search for every group is wasteful; the
paper's warm-start engine (Section V-C) re-uses the previous solution as the
starting population and recovers most of the full-search quality within one
or a few generations.

This example optimizes one source group, then maps three new groups of the
same task type with and without warm start, printing the recovered fraction
of the fully optimized throughput for each transfer budget.

Run it with::

    python examples/warm_start_deployment.py [--budget N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import M3E, TaskType, build_setting, build_task_workload
from repro.optimizers import build_optimizer
from repro.optimizers.warmstart import WarmStartEngine
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=1_200, help="full-search sampling budget")
    parser.add_argument("--population", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    platform = build_setting("S4", system_bandwidth_gbps=1.0)
    explorer = M3E(platform, sampling_budget=args.budget)
    engine = WarmStartEngine()

    # Optimize the source group and remember the solution for the "mix" task.
    source = build_task_workload(TaskType.MIX, group_size=48, seed=args.seed,
                                 num_sub_accelerators=platform.num_sub_accelerators)[0]
    source_result = explorer.search(
        source, optimizer="magma", seed=args.seed,
        optimizer_options={"population_size": args.population},
    )
    codec = explorer.build_evaluator(source).codec
    engine.record(TaskType.MIX.value, source_result.best_encoding, codec, source_result.best_fitness)
    print(f"source group optimized: {source_result.throughput_gflops:.1f} GFLOP/s")
    print()

    rows = []
    for instance in range(1, 4):
        group = build_task_workload(TaskType.MIX, group_size=48, seed=args.seed + 100 * instance,
                                    num_sub_accelerators=platform.num_sub_accelerators)[0]
        evaluator = explorer.build_evaluator(group)
        warm = engine.suggest(TaskType.MIX.value, evaluator.codec,
                              count=args.population, rng=instance)

        # Raw: best of one random population, no optimization.
        random_population = evaluator.codec.random_population(args.population, rng=instance)
        raw = float(np.max(evaluator.evaluate_population(random_population, count_samples=False)))
        # Transferred solution before any further optimization.
        transferred = float(evaluator.evaluate(warm[0], count_sample=False))

        def optimize(budget: int) -> float:
            optimizer = build_optimizer("magma", seed=args.seed + instance,
                                        population_size=args.population)
            result = M3E(platform, sampling_budget=budget).search(
                group, optimizer=optimizer, initial_encodings=warm, sampling_budget=budget
            )
            return result.throughput_gflops

        one_epoch = optimize(2 * args.population)
        full = optimize(args.budget)
        rows.append([
            f"group {instance}",
            raw / full,
            transferred / full,
            one_epoch / full,
            1.0,
        ])

    print("Fraction of fully-optimized throughput recovered (paper Table V structure):")
    print(format_table(["instance", "Raw", "Trf-0-ep", "Trf-1-ep", "Trf-full"], rows))


if __name__ == "__main__":
    main()
