#!/usr/bin/env python3
"""Study a bandwidth-constrained edge deployment (paper Fig. 12 / Fig. 13).

Edge data centers share a thin memory/host link across the accelerator's
cores, so the mapper's bandwidth awareness matters most when the system
bandwidth is scarce.  This example:

1. sweeps the system bandwidth of the small heterogeneous accelerator (S2)
   for a Mix workload and reports how Herald-like and MAGMA scale,
2. compares the Large homogeneous (S3) and heterogeneous (S4) platforms at
   scarce and ample bandwidth, reproducing the heterogeneity argument of
   Fig. 13.

Run it with::

    python examples/bandwidth_constrained_edge.py [--budget N]
"""

from __future__ import annotations

import argparse

from repro import M3E, TaskType, build_setting, build_task_workload
from repro.utils.tables import format_table


def bandwidth_sweep(budget: int, seed: int) -> None:
    """Throughput of Herald-like vs MAGMA on S2 across system bandwidths."""
    rows = []
    for bandwidth in (1.0, 4.0, 8.0, 16.0):
        platform = build_setting("S2", bandwidth)
        group = build_task_workload(
            TaskType.MIX, group_size=48, seed=seed,
            num_sub_accelerators=platform.num_sub_accelerators,
        )[0]
        explorer = M3E(platform, sampling_budget=budget)
        results = explorer.compare(group, optimizers=["herald-like", "magma"], seed=seed)
        herald = results["Herald-like"].throughput_gflops
        magma = results["MAGMA"].throughput_gflops
        rows.append([f"{bandwidth:g}", magma, herald, herald / magma])
    print("S2 (small heterogeneous), Mix task — bandwidth sweep:")
    print(format_table(["BW (GB/s)", "MAGMA GFLOP/s", "Herald GFLOP/s", "Herald / MAGMA"], rows))
    print()


def heterogeneity_study(budget: int, seed: int) -> None:
    """S3 (homogeneous Bigs) vs S4 (heterogeneous Bigs) at scarce / ample bandwidth."""
    rows = []
    for bandwidth in (1.0, 64.0):
        row = [f"{bandwidth:g}"]
        for setting in ("S3", "S4"):
            platform = build_setting(setting, bandwidth)
            group = build_task_workload(
                TaskType.MIX, group_size=48, seed=seed,
                num_sub_accelerators=platform.num_sub_accelerators,
            )[0]
            explorer = M3E(platform, sampling_budget=budget)
            result = explorer.search(group, optimizer="magma", seed=seed)
            row.append(result.throughput_gflops)
        rows.append(row)
    print("S3 vs S4 with MAGMA (paper Fig. 13: heterogeneity helps when BW is scarce):")
    print(format_table(["BW (GB/s)", "S3 GFLOP/s", "S4 GFLOP/s"], rows))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=1_000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    bandwidth_sweep(args.budget, args.seed)
    heterogeneity_study(args.budget, args.seed)


if __name__ == "__main__":
    main()
