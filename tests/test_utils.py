"""Tests for the shared utility modules (rng, units, tables)."""

import math

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs
from repro.utils.tables import format_table, geometric_mean, normalize_by
from repro.utils.units import (
    BYTES_PER_GB,
    DEFAULT_FREQUENCY_HZ,
    bytes_per_cycle_to_gbps,
    cycles_to_seconds,
    gbps_to_bytes_per_cycle,
    macs_to_flops,
    seconds_to_cycles,
)


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        a = ensure_rng(123).random(5)
        b = ensure_rng(123).random(5)
        assert np.allclose(a, b)

    def test_ensure_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_spawn_rngs_are_independent_but_reproducible(self):
        first = [r.random() for r in spawn_rngs(7, 3)]
        second = [r.random() for r in spawn_rngs(7, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_rngs_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2
        assert children[0].random() != children[1].random()

    def test_spawn_rngs_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_seed_in_range(self):
        seed = derive_seed(np.random.default_rng(0))
        assert 0 <= seed < 2**31


class TestUnits:
    def test_cycles_seconds_round_trip(self):
        cycles = 1_000_000.0
        assert seconds_to_cycles(cycles_to_seconds(cycles)) == pytest.approx(cycles)

    def test_default_frequency_is_200mhz(self):
        assert DEFAULT_FREQUENCY_HZ == pytest.approx(200e6)

    def test_bandwidth_conversion_round_trip(self):
        gbps = 12.5
        assert bytes_per_cycle_to_gbps(gbps_to_bytes_per_cycle(gbps)) == pytest.approx(gbps)

    def test_one_gbps_at_200mhz_is_five_bytes_per_cycle(self):
        assert gbps_to_bytes_per_cycle(1.0) == pytest.approx(1e9 / 200e6)

    def test_macs_to_flops(self):
        assert macs_to_flops(10) == 20

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(100, frequency_hz=0)
        with pytest.raises(ValueError):
            seconds_to_cycles(1.0, frequency_hz=-1)

    def test_bytes_per_gb_constant(self):
        assert BYTES_PER_GB == 1e9


class TestTables:
    def test_geometric_mean_matches_log_average(self):
        values = [2.0, 8.0, 4.0]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geometric_mean(values) == pytest.approx(expected)

    def test_normalize_by_reference(self):
        assert normalize_by({"x": 3.0, "y": 6.0}, "y")["x"] == pytest.approx(0.5)

    def test_normalize_by_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize_by({"x": 0.0}, "x")

    def test_format_table_handles_mixed_types(self):
        text = format_table(["a", "b"], [["row", 123456.789], ["other", 0.0000012]])
        assert "1.235e+05" in text
        assert "1.200e-06" in text

    def test_format_table_zero(self):
        text = format_table(["v"], [[0.0]])
        assert "0" in text.splitlines()[-1]
