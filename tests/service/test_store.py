"""Tests for the solution store and the shared append-only JSONL base."""

import json
import threading

import pytest

from repro.service.store import SolutionStore
from repro.utils.jsonl_store import AppendOnlyJsonlStore
from repro.utils.serialization import SearchResultSummary


def _summary(fitness: float, encoding=None) -> SearchResultSummary:
    return SearchResultSummary(
        optimizer_name="MAGMA",
        best_fitness=fitness,
        objective_value=fitness,
        throughput_gflops=fitness,
        makespan_cycles=100.0,
        samples_used=48,
        best_encoding=list(encoding or [0.0, 1.0, 0.5, 0.25]),
        history=[fitness / 2, fitness],
    )


@pytest.fixture()
def store(tmp_path):
    return SolutionStore(str(tmp_path / "solutions.jsonl"))


class TestSolutionStore:
    def test_append_and_lookup_round_trip(self, store):
        summary = _summary(10.0)
        store.append("fp-a", {"task": "vision"}, "vision/throughput", summary)
        record = store.lookup("fp-a")
        assert record["request"] == {"task": "vision"}
        assert record["task_key"] == "vision/throughput"
        assert store.lookup_result("fp-a").to_dict() == summary.to_dict()

    def test_lookup_unknown_fingerprint(self, store):
        assert store.lookup("missing") is None
        assert store.lookup_result("missing") is None

    def test_duplicate_fingerprints_resolve_to_best_fitness(self, store):
        store.append("fp", {}, "k", _summary(5.0))
        store.append("fp", {}, "k", _summary(9.0))
        store.append("fp", {}, "k", _summary(7.0))
        assert store.lookup_result("fp").best_fitness == 9.0
        assert store.best_by_fingerprint()["fp"]["result"]["best_fitness"] == 9.0

    def test_best_by_task_keeps_best_per_key(self, store):
        store.append("fp1", {}, "vision/throughput", _summary(5.0))
        store.append("fp2", {}, "vision/throughput", _summary(8.0))
        store.append("fp3", {}, "mix/throughput", _summary(3.0))
        best = store.best_by_task()
        assert set(best) == {"vision/throughput", "mix/throughput"}
        assert best["vision/throughput"]["fingerprint"] == "fp2"

    def test_missing_file_is_empty(self, store):
        assert store.records() == []
        assert store.fingerprints() == set()
        assert len(store) == 0


class TestFastFingerprintScan:
    def test_scan_matches_full_parse_on_large_store(self, tmp_path):
        """The regex scan and a full JSON parse agree on a large store."""
        store = SolutionStore(str(tmp_path / "large.jsonl"))
        expected = set()
        for i in range(2000):
            fingerprint = f"{i:032x}"
            # Realistic records: non-trivial encodings and histories, plus
            # adversarial request values that *contain* the scanned key.
            store.append(
                fingerprint,
                {"note": 'contains "fingerprint": "deadbeef" as data', "seed": i},
                f"task{i % 7}/throughput",
                _summary(float(i), encoding=[float(j) for j in range(32)]),
            )
            expected.add(fingerprint)
        assert store.fingerprints() == expected
        assert store.fingerprints() == {
            record["fingerprint"] for record in store.records()
        }

    def test_scan_ignores_torn_trailing_line(self, tmp_path):
        store = AppendOnlyJsonlStore(str(tmp_path / "torn.jsonl"))
        store.append_record({"fingerprint": "aaa", "x": 1})
        store.append_record({"fingerprint": "bbb", "x": 2})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "ccc", "x"')
        # The torn record was never durably written; it must not be trusted.
        assert store.fingerprints() == {"aaa", "bbb"}
        assert store.repair() == 2
        assert store.fingerprints() == {"aaa", "bbb"}

    def test_scan_falls_back_to_json_for_odd_layouts(self, tmp_path):
        store = AppendOnlyJsonlStore(str(tmp_path / "odd.jsonl"))
        with open(store.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"fingerprint": 123}) + "\n")
            handle.write(json.dumps({"other": "no fingerprint here"}) + "\n")
        assert store.fingerprints() == {"123"}


class TestConcurrentWrites:
    def test_parallel_appends_never_tear_or_drop_records(self, tmp_path):
        """Two workers appending simultaneously leave only intact records."""
        store = SolutionStore(str(tmp_path / "concurrent.jsonl"))
        per_worker, workers = 200, 4
        errors = []

        def writer(worker: int) -> None:
            try:
                for i in range(per_worker):
                    store.append(
                        f"w{worker}-{i:04d}",
                        {"worker": worker, "i": i},
                        f"task{worker}/throughput",
                        _summary(float(i)),
                    )
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        # The repair path (shared with the campaign store) finds nothing torn,
        # every line parses, and no record was dropped or duplicated.
        assert store.repair() == per_worker * workers
        records = store.records()
        assert len(records) == per_worker * workers
        fingerprints = [record["fingerprint"] for record in records]
        assert len(set(fingerprints)) == per_worker * workers
        assert store.fingerprints() == set(fingerprints)
