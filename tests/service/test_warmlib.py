"""Tests for the persistent warm-start library and the M3E warm_store hook."""

import numpy as np
import pytest

from repro.accelerator import build_setting
from repro.core.encoding import MappingCodec
from repro.core.framework import M3E
from repro.optimizers.warmstart import WarmStartEngine
from repro.service.warmlib import WarmStartLibrary, group_task_key
from repro.workloads.benchmark import TaskType, build_task_workload


@pytest.fixture()
def codec():
    return MappingCodec(num_jobs=8, num_sub_accelerators=3)


class TestStateRoundTrip:
    """Satellite: WarmStartEngine.to_state()/from_state() dict round-trip."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_round_tripped_engine_suggests_identical_populations(self, codec, seed):
        engine = WarmStartEngine()
        rng = np.random.default_rng(seed)
        for task in ("vision", "language", "mix"):
            engine.record(task, codec.random_encoding(rng=rng), codec, fitness=float(rng.random()))

        clone = WarmStartEngine.from_state(engine.to_state())
        assert clone.known_tasks() == engine.known_tasks()
        other = MappingCodec(num_jobs=12, num_sub_accelerators=2)
        for task in engine.known_tasks():
            for target in (codec, other):
                original = engine.suggest(task, target, count=7, rng=seed)
                restored = clone.suggest(task, target, count=7, rng=seed)
                np.testing.assert_array_equal(original, restored)

    def test_state_is_json_safe(self, codec):
        import json

        engine = WarmStartEngine()
        engine.record("mix", codec.random_encoding(rng=0), codec, fitness=1.5)
        state = json.loads(json.dumps(engine.to_state()))
        restored = WarmStartEngine.from_state(state)
        np.testing.assert_array_equal(
            restored.suggest("mix", codec, rng=0), engine.suggest("mix", codec, rng=0)
        )

    def test_malformed_state_rejected(self):
        from repro.exceptions import OptimizationError

        with pytest.raises(OptimizationError):
            WarmStartEngine.from_state({"mix": {"encoding": [1.0], "num_jobs": 4}})
        with pytest.raises(OptimizationError):
            WarmStartEngine.from_state(
                {"mix": {"encoding": [1.0, 0.5], "num_jobs": 4,
                         "num_sub_accelerators": 2, "fitness": 1.0}}
            )

    def test_record_reports_whether_memory_changed(self, codec):
        engine = WarmStartEngine()
        assert engine.record("mix", codec.random_encoding(rng=0), codec, fitness=5.0)
        assert not engine.record("mix", codec.random_encoding(rng=1), codec, fitness=3.0)
        assert engine.record("mix", codec.random_encoding(rng=2), codec, fitness=8.0)


class TestLibraryPersistence:
    def test_solutions_survive_reload(self, tmp_path, codec):
        path = str(tmp_path / "warm.jsonl")
        library = WarmStartLibrary(path)
        encoding = codec.random_encoding(rng=0)
        assert library.record("vision", "throughput", encoding, codec, fitness=4.0)

        reloaded = WarmStartLibrary(path)
        assert reloaded.known_tasks() == ["vision/throughput"]
        assert reloaded.fitness_of("vision", "throughput") == 4.0
        np.testing.assert_array_equal(
            reloaded.suggest("vision", "throughput", codec, rng=1),
            library.suggest("vision", "throughput", codec, rng=1),
        )

    def test_only_improvements_are_appended(self, tmp_path, codec):
        path = str(tmp_path / "warm.jsonl")
        library = WarmStartLibrary(path)
        library.record("mix", "throughput", codec.random_encoding(rng=0), codec, fitness=4.0)
        assert not library.record(
            "mix", "throughput", codec.random_encoding(rng=1), codec, fitness=2.0
        )
        library.record("mix", "throughput", codec.random_encoding(rng=2), codec, fitness=9.0)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 2  # the non-improvement was not persisted
        assert WarmStartLibrary(path).fitness_of("mix", "throughput") == 9.0

    def test_objectives_are_namespaced(self, tmp_path, codec):
        library = WarmStartLibrary(str(tmp_path / "warm.jsonl"))
        library.record("mix", "throughput", codec.random_encoding(rng=0), codec, fitness=4.0)
        assert library.suggest("mix", "energy", codec) is None
        assert library.fitness_of("mix", "energy") is None

    def test_missing_file_is_empty_library(self, tmp_path):
        library = WarmStartLibrary(str(tmp_path / "nope.jsonl"))
        assert len(library) == 0

    def test_torn_trailing_line_is_repaired_on_load(self, tmp_path, codec):
        path = str(tmp_path / "warm.jsonl")
        library = WarmStartLibrary(path)
        library.record("vision", "throughput", codec.random_encoding(rng=0), codec, fitness=4.0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"task_key": "vision/throughput", "fitn')
        reloaded = WarmStartLibrary(path)
        assert reloaded.fitness_of("vision", "throughput") == 4.0


class TestGroupTaskKey:
    def test_single_task_group(self):
        group = build_task_workload(TaskType.VISION, group_size=8, seed=0)[0]
        assert group_task_key(group) == "vision"

    def test_mixed_group(self):
        group = build_task_workload(TaskType.MIX, group_size=16, seed=0)[0]
        assert group_task_key(group) in [t.value for t in TaskType]


class TestM3EWarmStoreHook:
    def test_search_records_winner_and_seeds_next_search(self, tmp_path):
        path = str(tmp_path / "warm.jsonl")
        platform = build_setting("S1", 16.0)
        group = build_task_workload(
            TaskType.VISION, group_size=8, seed=0,
            num_sub_accelerators=platform.num_sub_accelerators,
        )[0]

        library = WarmStartLibrary(path)
        explorer = M3E(platform, sampling_budget=48, warm_store=library)
        result = explorer.search(
            group, optimizer="magma", seed=0, optimizer_options={"population_size": 12}
        )
        assert library.fitness_of("vision", "throughput") == pytest.approx(result.best_fitness)

        # A fresh process (new library instance) warm-starts from the stored
        # winner: the adapted solution is injected verbatim, so the new
        # search's first population already contains it.
        fresh = WarmStartLibrary(path)
        evaluator = explorer.build_evaluator(group)
        warm = fresh.warm_population(group, evaluator.codec, objective="throughput", count=3, rng=1)
        assert warm is not None and warm.shape[0] == 3
        np.testing.assert_array_equal(warm[0], evaluator.codec.repair(result.best_encoding))

    def test_warm_started_campaign_cells_are_reproducible(self, tmp_path):
        """Regression: with no explicit search seed (campaign cells hand M3E
        a pre-seeded optimizer), warm perturbations must come from the
        optimizer's deterministic stream, not OS entropy — identical reruns
        of a warm-started cell must be bit-identical."""
        import shutil

        from repro.experiments.campaign import CampaignRunner
        from repro.experiments.scenarios import ScenarioSpec
        from repro.experiments.settings import get_scale

        seed_path = str(tmp_path / "seed.jsonl")
        platform = build_setting("S1", 16.0)
        group = build_task_workload(
            TaskType.VISION, group_size=8, seed=0,
            num_sub_accelerators=platform.num_sub_accelerators,
        )[0]
        M3E(platform, sampling_budget=48, warm_store=WarmStartLibrary(seed_path)).search(
            group, optimizer="magma", seed=0, optimizer_options={"population_size": 12}
        )

        spec = ScenarioSpec(
            name="warm-repro", description="one warm-started cell",
            settings=("S1",), tasks=("vision",), methods=("magma",), seeds=(1,),
        )
        cell = spec.expand(get_scale("tiny"))[0]

        results = []
        for run in ("a", "b"):
            library_path = str(tmp_path / f"lib_{run}.jsonl")
            shutil.copy(seed_path, library_path)
            runner = CampaignRunner(scale="tiny", warm_store=WarmStartLibrary(library_path))
            results.append(runner.run_cell(cell))
        np.testing.assert_array_equal(results[0].best_encoding, results[1].best_encoding)
        assert results[0].history == results[1].history

    def test_no_warm_store_keeps_cold_start(self, tmp_path):
        platform = build_setting("S1", 16.0)
        group = build_task_workload(
            TaskType.VISION, group_size=8, seed=0,
            num_sub_accelerators=platform.num_sub_accelerators,
        )[0]
        cold = M3E(platform, sampling_budget=48).search(
            group, optimizer="magma", seed=0, optimizer_options={"population_size": 12}
        )
        empty_library = WarmStartLibrary(str(tmp_path / "empty.jsonl"))
        warm = M3E(platform, sampling_budget=48, warm_store=empty_library).search(
            group, optimizer="magma", seed=0, optimizer_options={"population_size": 12}
        )
        # An *empty* library must not change the search at all.
        np.testing.assert_array_equal(cold.best_encoding, warm.best_encoding)
        assert cold.history == warm.history
