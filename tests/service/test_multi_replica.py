"""Multi-replica service tests: shared stores, lifecycle, and health.

The service tier's scaling story is N :class:`MappingService` replicas
sharing one store through a ``shared`` backend (``sqlite:`` locally,
``tcp://`` across machines).  The acceptance bar: a fingerprint solved on
one replica is answered *bit-identically* by another replica without
running a second search.  Alongside that E2E path this module pins the
store-lifecycle contract — a service closes exactly the store handles it
opened itself, on every path including a constructor that fails halfway.
"""

import pytest

from repro.core.evalconfig import EvalConfig
from repro.exceptions import ConfigurationError
from repro.service import MappingRequest, MappingService, SolutionStore
from repro.service.netstore import NetworkStoreServer

SCALE = "tiny"
TOKEN = "replica-secret"


@pytest.fixture(params=["sqlite", "tcp"])
def shared_store_url(request, tmp_path, monkeypatch):
    """A shared-capable store URL per transport (tcp served over sqlite)."""
    monkeypatch.delenv("REPRO_RPC_TOKEN", raising=False)
    if request.param == "sqlite":
        yield f"sqlite:{tmp_path / 'shared.sqlite3'}"
    else:
        server = NetworkStoreServer(
            f"sqlite:{tmp_path / 'backing.sqlite3'}", token=TOKEN
        ).start()
        yield f"{server.url}?token={TOKEN}"
        server.shutdown()


class TestTwoReplicasOneStore:
    def test_second_replica_answers_bit_identically_without_searching(
        self, shared_store_url
    ):
        request = MappingRequest(task="vision", setting="S2", seed=11)
        with MappingService(
            store=shared_store_url, scale=SCALE, workers=1, replica_id="replica-a"
        ) as first, MappingService(
            store=shared_store_url, scale=SCALE, workers=1, replica_id="replica-b"
        ) as second:
            # Both replicas are open *before* the search: the second cannot
            # have indexed the solution at startup, so the hit below must
            # come from consulting the shared backend at submit time.
            job = first.submit(request)
            reference = first.result(job.job_id, timeout=120)
            assert first.stats["searches_run"] == 1

            hit = second.submit(request)
            assert hit.cached and hit.state == "done"
            assert hit.result.to_dict() == reference.to_dict()
            assert second.stats["searches_run"] == 0
            # The consult memoizes: the next identical submit needs no
            # further round trip to the backend and stays identical.
            again = second.submit(request)
            assert again.cached
            assert again.result.to_dict() == reference.to_dict()

    def test_unknown_fingerprint_still_searches_locally(self, shared_store_url):
        with MappingService(store=shared_store_url, scale=SCALE, workers=1) as service:
            job = service.submit(MappingRequest(task="language", setting="S1", seed=5))
            assert service.result(job.job_id, timeout=120) is not None
            assert service.stats["searches_run"] == 1

    def test_replicas_share_one_set_of_records(self, shared_store_url):
        request_a = {"task": "vision", "setting": "S1", "seed": 1}
        request_b = {"task": "mix", "setting": "S1", "seed": 2}
        with MappingService(store=shared_store_url, scale=SCALE, workers=1) as first:
            first.result(first.submit(request_a).job_id, timeout=120)
        with MappingService(store=shared_store_url, scale=SCALE, workers=1) as second:
            second.result(second.submit(request_b).job_id, timeout=120)
            records = second.store.records()
        assert len(records) == 2
        assert len({record["fingerprint"] for record in records}) == 2


class TestHealthz:
    def test_reports_backend_kind_url_and_replica_id(self, tmp_path):
        with MappingService(
            store=f"sqlite:{tmp_path / 'db.sqlite3'}",
            scale=SCALE,
            workers=1,
            replica_id="replica-7",
        ) as service:
            health = service.healthz()
        assert health["replica"] == "replica-7"
        assert health["store_backend"] == "sqlite"
        assert health["store_url"].startswith("sqlite:")

    def test_default_replica_id_identifies_the_process(self, tmp_path):
        import os

        with MappingService(
            store=str(tmp_path / "db.jsonl"), scale=SCALE, workers=1
        ) as service:
            health = service.healthz()
        assert str(os.getpid()) in health["replica"]
        assert health["store_backend"] == "jsonl"


class TestStoreLifecycle:
    def test_service_closes_a_store_it_opened(self, tmp_path):
        service = MappingService(
            store=f"sqlite:{tmp_path / 'db.sqlite3'}", scale=SCALE, workers=1
        )
        assert service._owns_store
        backend = service.store.backend
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.append_record({"fingerprint": "x"})

    def test_service_leaves_a_caller_owned_store_open(self, tmp_path):
        store = SolutionStore(f"sqlite:{tmp_path / 'db.sqlite3'}")
        try:
            service = MappingService(store=store, scale=SCALE, workers=1)
            assert not service._owns_store
            service.close()
            # Still usable: ownership stayed with the caller.
            assert store.records() == []
        finally:
            store.close()

    def test_failed_constructor_closes_the_stores_it_opened(
        self, tmp_path, monkeypatch
    ):
        closed = []
        original_close = SolutionStore.close

        def recording_close(self):
            closed.append(self)
            original_close(self)

        monkeypatch.setattr(SolutionStore, "close", recording_close)
        with pytest.raises(ConfigurationError):
            MappingService(
                store=f"sqlite:{tmp_path / 'db.sqlite3'}",
                warm_store=str(tmp_path / "warm.jsonl"),
                scale=SCALE,
                workers=1,
                eval_backend="not-a-backend",
            )
        assert len(closed) == 1  # the solution store the service had opened

    def test_failed_constructor_leaves_caller_owned_store_open(self, tmp_path):
        store = SolutionStore(str(tmp_path / "db.jsonl"))
        try:
            with pytest.raises(ConfigurationError):
                MappingService(
                    store=store, scale=SCALE, workers=1, eval_backend="not-a-backend"
                )
            assert store.records() == []  # still open: ownership stayed put
        finally:
            store.close()

    def test_mixed_eval_config_styles_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not both"):
            MappingService(
                store=str(tmp_path / "db.jsonl"),
                scale=SCALE,
                workers=1,
                eval_config=EvalConfig(),
                eval_backend="scalar",
            )

    def test_eval_config_accepted(self, tmp_path):
        with MappingService(
            store=str(tmp_path / "db.jsonl"),
            scale=SCALE,
            workers=1,
            eval_config=EvalConfig(backend="scalar"),
        ) as service:
            job = service.submit({"task": "vision", "setting": "S1", "seed": 0})
            assert service.result(job.job_id, timeout=120) is not None
