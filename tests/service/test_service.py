"""End-to-end tests for the mapping service (the PR's acceptance criteria)."""

import threading

import pytest

from repro.exceptions import ServiceError
from repro.experiments.settings import get_scale
from repro.service import MappingRequest, MappingService, SolutionStore, WarmStartLibrary
from repro.utils.serialization import SearchResultSummary


SCALE = "tiny"


@pytest.fixture()
def service(tmp_path):
    svc = MappingService(
        store=str(tmp_path / "solutions.jsonl"),
        warm_store=str(tmp_path / "warm.jsonl"),
        scale=SCALE,
        workers=2,
    )
    yield svc
    svc.close()


class TestRequestValidation:
    def test_unknown_fields_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown request fields"):
            service.submit({"task": "vision", "bogus": 1})

    @pytest.mark.parametrize(
        "request_dict, match",
        [
            ({"setting": "S99"}, "unknown setting"),
            ({"task": "audio"}, "unknown task"),
            ({"objective": "speed"}, "unknown objective"),
            ({"method": "gradient-descent"}, "unknown method"),
            ({"bandwidth_gbps": -1.0}, "bandwidth_gbps"),
            ({"budget": 0}, "budget"),
            ({"setting": "S4", "group_size": 2}, "group_size"),
        ],
    )
    def test_invalid_requests_fail_at_submit(self, service, request_dict, match):
        with pytest.raises(ServiceError, match=match):
            service.submit(request_dict)

    @pytest.mark.parametrize(
        "request_dict",
        [
            {"bandwidth_gbps": "fast"},
            {"seed": "x"},
            {"method": 3},
            {"setting": ["S2"]},
            {"budget": "lots"},
            {"group_size": "big"},
        ],
    )
    def test_wrong_typed_fields_fail_as_service_errors(self, service, request_dict):
        """Type garbage from client JSON must surface as ServiceError (an
        HTTP 400), never as a raw ValueError/AttributeError."""
        with pytest.raises(ServiceError):
            service.submit(request_dict)

    def test_resolution_pins_scale_defaults(self, service):
        payload = MappingRequest(task="vision").resolve(service.scale)
        scale = get_scale(SCALE)
        assert payload["group_size"] == scale.group_size
        assert payload["budget"] == scale.sampling_budget
        assert payload["optimizer_options"] == {"population_size": scale.population_size}


class TestEndToEnd:
    def test_repeat_request_is_bit_identical_store_hit_and_third_warm_starts(
        self, tmp_path, monkeypatch
    ):
        """The acceptance scenario: search, then cache hit, then warm start."""
        import repro.optimizers as optimizers_module

        builds = []
        real_build = optimizers_module.build_optimizer

        def counting_build(name, **kwargs):
            builds.append(name)
            return real_build(name, **kwargs)

        monkeypatch.setattr(optimizers_module, "build_optimizer", counting_build)

        warm_path = str(tmp_path / "warm.jsonl")
        service = MappingService(
            store=str(tmp_path / "solutions.jsonl"),
            warm_store=warm_path,
            scale=SCALE,
            workers=1,
        )
        try:
            request = MappingRequest(task="vision", setting="S2", seed=0)

            # 1) First submission runs a real search.
            first = service.submit(request)
            first_result = service.result(first.job_id, timeout=120)
            assert first.state == "done" and not first.cached
            assert service.stats["searches_run"] == 1
            builds_after_first = len(builds)
            assert builds_after_first >= 1

            # 2) The identical request is a store hit: instant, bit-identical,
            #    and the optimizer is never constructed.
            second = service.submit(request)
            assert second.state == "done" and second.cached
            assert second.result.to_dict() == first_result.to_dict()
            assert service.stats["cache_hits"] == 1
            assert service.stats["searches_run"] == 1
            assert len(builds) == builds_after_first

            # 3) A new same-task-type request (different seed => different
            #    group instance) warm-starts from the stored solution: its
            #    epoch-0 best beats the cold-start epoch-0 best.
            third = service.submit(MappingRequest(task="vision", setting="S2", seed=7))
            warm_result = service.result(third.job_id, timeout=120)
            assert service.stats["searches_run"] == 2
        finally:
            service.close()

        cold_service = MappingService(
            store=str(tmp_path / "cold.jsonl"), warm_store=None, scale=SCALE, workers=1
        )
        try:
            cold = cold_service.submit(MappingRequest(task="vision", setting="S2", seed=7))
            cold_result = cold_service.result(cold.job_id, timeout=120)
        finally:
            cold_service.close()

        population = get_scale(SCALE).population_size
        warm_epoch0 = warm_result.history[population - 1]
        cold_epoch0 = cold_result.history[population - 1]
        assert warm_epoch0 > cold_epoch0

        # The warm start came from the persisted library, and the warm search
        # improved (or matched) the remembered solution in turn.
        library = WarmStartLibrary(warm_path)
        assert "vision/throughput" in library.known_tasks()
        assert library.fitness_of("vision", "throughput") >= first_result.best_fitness

    def test_fresh_service_answers_from_prior_process_store(self, tmp_path):
        store_path = str(tmp_path / "solutions.jsonl")
        request = MappingRequest(task="language", setting="S1", seed=3)
        with MappingService(store=store_path, scale=SCALE, workers=1) as first:
            job = first.submit(request)
            original = first.result(job.job_id, timeout=120)
        with MappingService(store=store_path, scale=SCALE, workers=1) as second:
            hit = second.submit(request)
            assert hit.cached and hit.state == "done"
            assert hit.result.to_dict() == original.to_dict()
            assert second.stats["searches_run"] == 0


class TestEvalBackendParity:
    """The service must be backend-invariant (PR 4 only exercised ``batch``).

    ``repro-magma serve --eval-backend parallel`` (and ``rpc``, covered with
    live workers in ``tests/core/test_rpc_eval.py``) drives the same search
    engine through a worker pool; job results, stored solutions, and repeat
    store hits must be bit-identical to the threaded default.
    """

    def _solve(self, tmp_path, backend, **backend_kwargs):
        service = MappingService(
            store=str(tmp_path / f"solutions-{backend}.jsonl"),
            scale=SCALE,
            eval_backend=backend,
            workers=2,
            **backend_kwargs,
        )
        try:
            request = {"task": "vision", "setting": "S2", "seed": 11}
            job = service.submit(request)
            summary = service.result(job.job_id, timeout=120)
            assert not job.cached
            # The repeat request must be a store hit, bit-identical to the
            # freshly computed summary.
            hit = service.submit(request)
            assert hit.cached and hit.state == "done"
            assert hit.result.to_dict() == summary.to_dict()
            assert service.stats["cache_hits"] == 1
            stored = service.store.records()
        finally:
            service.close()
        assert len(stored) == 1
        return summary, stored[0]

    def test_parallel_backend_results_and_store_bit_identical_to_batch(self, tmp_path):
        batch_summary, batch_record = self._solve(tmp_path, "batch")
        parallel_summary, parallel_record = self._solve(
            tmp_path, "parallel", eval_workers=2
        )
        assert parallel_summary.to_dict() == batch_summary.to_dict()
        # Whole stored records (request payload, task key, result) match too.
        assert parallel_record == batch_record


def _blocking_execute(release: threading.Event, started: threading.Event):
    def execute(self, job):
        started.set()
        release.wait(timeout=30)
        return SearchResultSummary(
            optimizer_name="stub",
            best_fitness=1.0,
            objective_value=1.0,
            throughput_gflops=1.0,
            makespan_cycles=1.0,
            samples_used=1,
            best_encoding=[0.0],
            history=[1.0],
        )

    return execute


class TestQueueSemantics:
    def test_identical_inflight_requests_share_one_job(self, tmp_path, monkeypatch):
        release, started = threading.Event(), threading.Event()
        monkeypatch.setattr(MappingService, "_execute", _blocking_execute(release, started))
        service = MappingService(store=str(tmp_path / "s.jsonl"), scale=SCALE, workers=1)
        try:
            request = MappingRequest(task="vision", seed=0)
            first = service.submit(request)
            assert started.wait(timeout=10)
            second = service.submit(request)
            assert second is first
            assert service.stats["deduped"] == 1
            release.set()
            assert service.wait(first.job_id, timeout=10)
            assert first.state == "done"
            # Solved and recorded once.
            assert len(service.store.records()) == 1
        finally:
            release.set()
            service.close()

    def test_worker_failure_marks_job_failed_not_service_dead(self, tmp_path, monkeypatch):
        def boom(self, job):
            raise RuntimeError("simulated engine failure")

        monkeypatch.setattr(MappingService, "_execute", boom)
        service = MappingService(store=str(tmp_path / "s.jsonl"), scale=SCALE, workers=1)
        try:
            job = service.submit(MappingRequest(task="vision", seed=0))
            assert service.wait(job.job_id, timeout=10)
            assert job.state == "failed"
            assert "simulated engine failure" in job.error
            with pytest.raises(ServiceError, match="failed"):
                service.result(job.job_id, timeout=1)
            # The worker survived and the store holds nothing torn.
            assert service.healthz()["failed"] == 1
            assert service.store.records() == []
        finally:
            service.close()

    def test_unknown_job_id(self, service):
        with pytest.raises(ServiceError, match="unknown job id"):
            service.status("job-999999")

    def test_finished_jobs_are_evicted_past_the_retention_bound(self, tmp_path):
        """A long-running service must not grow its job table with every
        cache hit; only the newest finished jobs stay pollable."""
        service = MappingService(
            store=str(tmp_path / "s.jsonl"), scale=SCALE, workers=1, max_finished_jobs=5
        )
        try:
            request = MappingRequest(task="vision", setting="S1", seed=0)
            first = service.submit(request)
            service.result(first.job_id, timeout=120)
            hits = [service.submit(request) for _ in range(20)]
            assert all(job.cached for job in hits)
            assert len(service._jobs) <= 5
            # The newest hit is still pollable; the oldest were evicted.
            assert service.status(hits[-1].job_id)["state"] == "done"
            with pytest.raises(ServiceError, match="unknown job id"):
                service.status(first.job_id)
        finally:
            service.close()


class TestShutdown:
    def test_graceful_close_drains_queue_and_leaves_store_intact(self, tmp_path):
        service = MappingService(store=str(tmp_path / "s.jsonl"), scale=SCALE, workers=2)
        jobs = [
            service.submit(MappingRequest(task="vision", setting="S1", seed=seed))
            for seed in range(3)
        ]
        service.close(wait=True)
        assert all(job.state == "done" for job in jobs)
        # Every line in the store parses: nothing torn, nothing lost.
        store = SolutionStore(service.store.path)
        assert store.repair() == 3
        assert len(store.records()) == 3

    def test_non_draining_close_cancels_queued_jobs(self, tmp_path, monkeypatch):
        release, started = threading.Event(), threading.Event()
        monkeypatch.setattr(MappingService, "_execute", _blocking_execute(release, started))
        service = MappingService(store=str(tmp_path / "s.jsonl"), scale=SCALE, workers=1)
        running = service.submit(MappingRequest(task="vision", seed=0))
        queued = service.submit(MappingRequest(task="vision", seed=1))
        assert started.wait(timeout=10)

        closer = threading.Thread(target=service.close, kwargs={"wait": False})
        closer.start()
        assert queued.done_event.wait(timeout=10)
        assert queued.state == "failed" and "cancelled" in queued.error
        release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert running.state == "done"

    def test_submit_after_close_rejected(self, tmp_path):
        service = MappingService(store=str(tmp_path / "s.jsonl"), scale=SCALE, workers=1)
        service.close()
        with pytest.raises(ServiceError, match="shut down"):
            service.submit(MappingRequest(task="vision"))
