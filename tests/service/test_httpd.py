"""Tests for the stdlib HTTP JSON frontend."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import MappingService, serve_in_background


@pytest.fixture()
def frontend(tmp_path):
    service = MappingService(
        store=str(tmp_path / "solutions.jsonl"),
        warm_store=str(tmp_path / "warm.jsonl"),
        scale="tiny",
        workers=1,
    )
    server, thread = serve_in_background(service, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    yield service, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def _call(base: str, path: str, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestRoutes:
    def test_healthz(self, frontend):
        _, base = frontend
        code, payload = _call(base, "/healthz")
        assert code == 200
        assert payload["status"] == "ok"
        assert payload["workers"] == 1
        # Load figures are present and registry-sourced (docs/OBSERVABILITY.md).
        assert payload["queue_depth"] == 0
        assert payload["in_flight"] == 0
        assert payload["solutions"] == 0
        assert "warm_tasks" in payload

    def test_metrics_scrape(self, frontend):
        from repro.obs import get_metrics

        service, base = frontend
        # The registry is process-global and other tests submit jobs too, so
        # assert on deltas, not absolute counts.
        registry = get_metrics()
        queued_before = registry.value_of(
            "repro_service_requests_total", {"outcome": "queued"}
        )
        job = service.submit({"task": "vision", "seed": 0})
        assert service.wait(job.job_id, timeout=120)
        assert registry.value_of(
            "repro_service_requests_total", {"outcome": "queued"}
        ) == queued_before + 1

        request = urllib.request.Request(base + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            content_type = response.headers.get("Content-Type", "")
            text = response.read().decode("utf-8")
        # Prometheus text exposition, not JSON.
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        lines = text.splitlines()
        assert "# TYPE repro_service_requests_total counter" in lines
        assert any(
            line.startswith('repro_service_requests_total{outcome="queued"}')
            for line in lines
        )
        assert "# TYPE repro_service_queue_depth gauge" in lines
        assert "# TYPE repro_service_queue_wait_seconds histogram" in lines
        assert any(line.startswith("repro_service_queue_wait_seconds_count") for line in lines)
        # The search the job ran shows up in the engine-level counters.
        assert any(
            line.startswith("repro_evals_total{") and not line.endswith(" 0")
            for line in lines
        )

    def test_submit_status_result_round_trip(self, frontend):
        service, base = frontend
        code, submitted = _call(base, "/submit", {"task": "vision", "seed": 0})
        assert code == 200
        job_id = submitted["id"]
        assert submitted["state"] in ("queued", "running", "done")

        assert service.wait(job_id, timeout=120)
        code, status = _call(base, f"/status/{job_id}")
        assert code == 200 and status["state"] == "done"

        code, result = _call(base, f"/result/{job_id}")
        assert code == 200
        assert result["result"]["best_fitness"] > 0
        assert result["result"]["samples_used"] > 0

        # Second identical submission returns the cached result inline.
        code, again = _call(base, "/submit", {"task": "vision", "seed": 0})
        assert code == 200 and again["cached"] is True
        assert again["result"] == result["result"]

    def test_pending_result_is_202(self, frontend, monkeypatch):
        import threading

        from repro.service.service import MappingService as ServiceClass
        from repro.utils.serialization import SearchResultSummary

        release = threading.Event()

        def slow_execute(self, job):
            release.wait(timeout=30)
            return SearchResultSummary(
                optimizer_name="stub", best_fitness=1.0, objective_value=1.0,
                throughput_gflops=1.0, makespan_cycles=1.0, samples_used=1,
                best_encoding=[0.0], history=[1.0],
            )

        monkeypatch.setattr(ServiceClass, "_execute", slow_execute)
        service, base = frontend
        _, submitted = _call(base, "/submit", {"task": "vision", "seed": 99})
        try:
            code, payload = _call(base, f"/result/{submitted['id']}")
            assert code == 202
            assert payload["state"] in ("queued", "running")
        finally:
            release.set()
            service.wait(submitted["id"], timeout=10)

    def test_bad_request_is_400(self, frontend):
        _, base = frontend
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _call(base, "/submit", {"task": "audio"})
        assert excinfo.value.code == 400
        assert "unknown task" in json.loads(excinfo.value.read().decode())["error"]

    def test_wrong_typed_fields_are_400_not_connection_reset(self, frontend):
        """Regression: a non-numeric bandwidth used to escape the handler as
        a ValueError, killing the connection instead of answering 400."""
        _, base = frontend
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _call(base, "/submit", {"bandwidth_gbps": "fast"})
        assert excinfo.value.code == 400
        assert "bandwidth_gbps" in json.loads(excinfo.value.read().decode())["error"]

    def test_invalid_json_is_400(self, frontend):
        _, base = frontend
        request = urllib.request.Request(
            base + "/submit", data=b"not json", headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_job_and_path_are_404(self, frontend):
        _, base = frontend
        for path in ("/status/job-404404", "/result/job-404404", "/nope"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _call(base, path)
            assert excinfo.value.code == 404
